//! The 12 built-in insight classes (paper §2.2 plus the four
//! "additional insights" it names, fleshed out).

pub mod concentration;
pub mod dependence;
pub mod dispersion;
pub mod heavy_tails;
pub mod hetero_freq;
pub mod linear;
pub mod monotonic;
pub mod multimodality;
pub mod normality;
pub mod outliers;
pub mod segmentation;
pub mod skew;

pub use concentration::Concentration;
pub use dependence::StatisticalDependence;
pub use dispersion::Dispersion;
pub use heavy_tails::HeavyTails;
pub use hetero_freq::HeteroFreq;
pub use linear::LinearRelationship;
pub use monotonic::MonotonicRelationship;
pub use multimodality::Multimodality;
pub use normality::Normality;
pub use outliers::Outliers;
pub use segmentation::Segmentation;
pub use skew::Skew;
