//! The **General Statistical Dependence** insight — named in the paper's
//! "additional insights". Covers all column-type combinations with a
//! normalized dependence strength in [0, 1]:
//!
//! * numeric × numeric — normalized binned mutual information;
//! * categorical × categorical — Cramér's V;
//! * numeric × categorical — the correlation ratio η² (fraction of the
//!   numeric variance explained by the categories).

use crate::class::{column_name, CandidatePruning, InsightClass};
use crate::classes::dispersion::overview_bar;
use crate::types::AttrTuple;
use crate::util::{pairs, scatter_chart};
use foresight_data::{ColumnType, Table};
use foresight_stats::dependence::{binned_mutual_information, ContingencyTable};
use foresight_stats::histogram::BinRule;
use foresight_viz::{ChartKind, ChartSpec, GroupedScatterSpec, ParetoSpec};

/// The statistical-dependence insight class.
#[derive(Debug, Default, Clone, Copy)]
pub struct StatisticalDependence;

/// The correlation ratio η²: between-group variance / total variance of a
/// numeric column grouped by a categorical one.
pub fn correlation_ratio(table: &Table, num_idx: usize, cat_idx: usize) -> Option<f64> {
    let num = table.numeric(num_idx).ok()?;
    let cat = table.categorical(cat_idx).ok()?;
    let k = cat.cardinality();
    // identifier-like columns (average group size below ~3) make η²
    // trivially 1: every value is its own group. Not an insight.
    if k < 2 || 3 * k > cat.len() {
        return None;
    }
    let mut sums = vec![0.0f64; k];
    let mut counts = vec![0u64; k];
    let mut total_sum = 0.0;
    let mut total_n = 0u64;
    for (v, &code) in num.values().iter().zip(cat.codes()) {
        if !v.is_nan() && code != foresight_data::column::NULL_CODE {
            sums[code as usize] += v;
            counts[code as usize] += 1;
            total_sum += v;
            total_n += 1;
        }
    }
    if total_n < 2 {
        return None;
    }
    let grand_mean = total_sum / total_n as f64;
    let mut between = 0.0;
    for (s, &c) in sums.iter().zip(&counts) {
        if c > 0 {
            let mean = s / c as f64;
            between += c as f64 * (mean - grand_mean) * (mean - grand_mean);
        }
    }
    let mut total_var = 0.0;
    for (v, &code) in num.values().iter().zip(cat.codes()) {
        if !v.is_nan() && code != foresight_data::column::NULL_CODE {
            total_var += (v - grand_mean) * (v - grand_mean);
        }
    }
    if total_var <= 0.0 {
        return None;
    }
    Some((between / total_var).clamp(0.0, 1.0))
}

impl InsightClass for StatisticalDependence {
    fn id(&self) -> &'static str {
        "statistical-dependence"
    }

    fn name(&self) -> &'static str {
        "Statistical Dependence"
    }

    fn description(&self) -> &'static str {
        "Two attributes are statistically dependent, linearly or not"
    }

    fn metric(&self) -> &'static str {
        "normalized dependence"
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        let all: Vec<usize> = (0..table.n_cols()).collect();
        pairs(&all)
            .into_iter()
            .map(|(a, b)| AttrTuple::Two(a, b))
            .collect()
    }

    fn pruning(&self) -> CandidatePruning {
        CandidatePruning::AllPairs
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        let ti = table.column(*i).ok()?.column_type();
        let tj = table.column(*j).ok()?.column_type();
        match (ti, tj) {
            (ColumnType::Numeric, ColumnType::Numeric) => {
                let mi = binned_mutual_information(
                    table.numeric(*i).ok()?.values(),
                    table.numeric(*j).ok()?.values(),
                    BinRule::Fixed(16),
                );
                mi.is_finite().then_some(mi)
            }
            (ColumnType::Categorical, ColumnType::Categorical) => {
                let a = table.categorical(*i).ok()?;
                let b = table.categorical(*j).ok()?;
                // identifier-like columns make V trivially 1 (see η² note)
                if 3 * a.cardinality() > a.len() || 3 * b.cardinality() > b.len() {
                    return None;
                }
                let v = ContingencyTable::new(a, b).cramers_v();
                v.is_finite().then_some(v)
            }
            (ColumnType::Numeric, ColumnType::Categorical) => correlation_ratio(table, *i, *j),
            (ColumnType::Categorical, ColumnType::Numeric) => correlation_ratio(table, *j, *i),
        }
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        let score = self.score(table, attrs)?;
        let ti = table.column(*i).ok()?.column_type();
        let tj = table.column(*j).ok()?.column_type();
        let title = format!(
            "{} × {} (dependence {:.2})",
            column_name(table, *i),
            column_name(table, *j),
            score
        );
        match (ti, tj) {
            (ColumnType::Numeric, ColumnType::Numeric) => {
                scatter_chart(table, *i, *j, title, false)
            }
            (ColumnType::Categorical, ColumnType::Categorical) => {
                // Pareto of the most frequent label combinations
                let a = table.categorical(*i).ok()?;
                let b = table.categorical(*j).ok()?;
                let mut counts: std::collections::HashMap<(u32, u32), u64> = Default::default();
                for (&ca, &cb) in a.codes().iter().zip(b.codes()) {
                    if ca != foresight_data::column::NULL_CODE
                        && cb != foresight_data::column::NULL_CODE
                    {
                        *counts.entry((ca, cb)).or_insert(0) += 1;
                    }
                }
                let total: u64 = counts.values().sum();
                let mut bars: Vec<(String, u64)> = counts
                    .into_iter()
                    .map(|((ca, cb), n)| {
                        (
                            format!("{} × {}", a.labels()[ca as usize], b.labels()[cb as usize]),
                            n,
                        )
                    })
                    .collect();
                bars.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
                bars.truncate(12);
                Some(ChartSpec {
                    title,
                    x_label: "combination".to_owned(),
                    y_label: "count".to_owned(),
                    kind: ChartKind::Pareto(ParetoSpec { bars, total }),
                })
            }
            _ => {
                // numeric × categorical: grouped 1-D scatter (value vs group)
                let (num_idx, cat_idx) = if ti == ColumnType::Numeric {
                    (*i, *j)
                } else {
                    (*j, *i)
                };
                let num = table.numeric(num_idx).ok()?;
                let cat = table.categorical(cat_idx).ok()?;
                let mut points = Vec::new();
                let mut group_of = Vec::new();
                for (v, &code) in num.values().iter().zip(cat.codes()) {
                    if !v.is_nan() && code != foresight_data::column::NULL_CODE {
                        points.push([code as f64, *v]);
                        group_of.push(code as usize);
                    }
                    if points.len() >= 500 {
                        break;
                    }
                }
                Some(ChartSpec {
                    title,
                    x_label: column_name(table, cat_idx).to_owned(),
                    y_label: column_name(table, num_idx).to_owned(),
                    kind: ChartKind::GroupedScatter(GroupedScatterSpec {
                        points,
                        group_of,
                        groups: cat.labels().to_vec(),
                    }),
                })
            }
        }
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        overview_bar(self, table, "Dependence strength by attribute pair")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        let x: Vec<f64> = (-150..150).map(|i| i as f64 / 30.0).collect();
        let parabola: Vec<f64> = x.iter().map(|v| v * v).collect();
        let cat_a: Vec<String> = (0..300).map(|i| format!("g{}", i % 3)).collect();
        let cat_b: Vec<String> = (0..300).map(|i| format!("h{}", i % 3)).collect(); // = cat_a relabeled
        let cat_rand: Vec<String> = (0..300).map(|i| format!("r{}", (i * 7) % 5)).collect();
        let grouped: Vec<f64> = (0..300).map(|i| (i % 3) as f64 * 10.0).collect();
        TableBuilder::new("t")
            .numeric("x", x)
            .numeric("parabola", parabola)
            .categorical("cat_a", cat_a.iter().map(String::as_str))
            .categorical("cat_b", cat_b.iter().map(String::as_str))
            .categorical("cat_rand", cat_rand.iter().map(String::as_str))
            .numeric("grouped", grouped)
            .build()
            .unwrap()
    }

    #[test]
    fn nonlinear_dependence_detected() {
        let d = StatisticalDependence;
        let t = table();
        let mi = d.score(&t, &AttrTuple::Two(0, 1)).unwrap();
        assert!(mi > 0.4, "mi {mi}");
        // Pearson would see ~nothing
        let rho = foresight_stats::correlation::pearson(
            t.numeric(0).unwrap().values(),
            t.numeric(1).unwrap().values(),
        );
        assert!(rho.abs() < 0.1);
    }

    #[test]
    fn cat_cat_perfect_dependence() {
        let d = StatisticalDependence;
        let t = table();
        let v = d.score(&t, &AttrTuple::Two(2, 3)).unwrap();
        assert!((v - 1.0).abs() < 1e-9, "v {v}");
        let weak = d.score(&t, &AttrTuple::Two(2, 4)).unwrap();
        assert!(weak < 0.3, "weak {weak}");
    }

    #[test]
    fn correlation_ratio_mixed_pair() {
        let d = StatisticalDependence;
        let t = table();
        // grouped is a deterministic function of cat_a → η² = 1
        let eta = d.score(&t, &AttrTuple::Two(2, 5)).unwrap();
        assert!((eta - 1.0).abs() < 1e-9, "eta {eta}");
        // order independence
        assert_eq!(
            d.score(&t, &AttrTuple::Two(2, 5)),
            Some(correlation_ratio(&t, 5, 2).unwrap())
        );
    }

    #[test]
    fn identifier_columns_rejected() {
        // a column where every row is its own category is not dependence
        let ids: Vec<String> = (0..60).map(|i| format!("id{i}")).collect();
        let t = TableBuilder::new("t")
            .numeric("x", (0..60).map(|i| i as f64).collect())
            .categorical("id", ids.iter().map(String::as_str))
            .categorical("ok", (0..60).map(|i| if i % 2 == 0 { "a" } else { "b" }))
            .build()
            .unwrap();
        let d = StatisticalDependence;
        assert!(d.score(&t, &AttrTuple::Two(0, 1)).is_none());
        assert!(d.score(&t, &AttrTuple::Two(1, 2)).is_none());
    }

    #[test]
    fn candidates_cover_all_type_combinations() {
        let d = StatisticalDependence;
        let t = table();
        let c = d.candidates(&t);
        assert_eq!(c.len(), 6 * 5 / 2);
    }

    #[test]
    fn charts_match_type_combination() {
        let d = StatisticalDependence;
        let t = table();
        assert_eq!(
            d.chart(&t, &AttrTuple::Two(0, 1)).unwrap().kind_name(),
            "scatter"
        );
        assert_eq!(
            d.chart(&t, &AttrTuple::Two(2, 3)).unwrap().kind_name(),
            "pareto"
        );
        assert_eq!(
            d.chart(&t, &AttrTuple::Two(2, 5)).unwrap().kind_name(),
            "grouped-scatter"
        );
    }
}
