//! The **Nonlinear Monotonic Relationship** insight — one of the classes the
//! paper names but suppresses for space. Ranked by Spearman's rank
//! correlation magnitude `|ρ_s|` (with Kendall's τ-b as an alternative
//! metric) and visualized as a scatter plot without a linear fit.
//!
//! The primary metric is plain `|ρ_s|`; the "nonlinearity gap"
//! `max(0, |ρ_s| − |ρ|)` is exposed as an alternative metric for users who
//! want specifically *nonlinear* monotone pairs (pairs a linear fit does not
//! already explain).

use crate::class::{column_name, CandidatePruning, InsightClass};
use crate::classes::linear::center_columns;
use crate::types::AttrTuple;
use crate::util::{pairs, scatter_chart};
use foresight_data::{PresenceMask, Table};
use foresight_sketch::SketchCatalog;
use foresight_stats::correlation::{
    kendall_tau_b, pearson, pearson_centered, spearman, spearman_masked, spearman_with, PairScratch,
};
use foresight_stats::rank::fractional_ranks;
use foresight_viz::ChartSpec;
use std::collections::HashMap;

/// The monotonic-relationship insight class.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonotonicRelationship;

impl MonotonicRelationship {
    fn signed(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        let rho = spearman(
            table.numeric(*i).ok()?.values(),
            table.numeric(*j).ok()?.values(),
        );
        rho.is_finite().then_some(rho)
    }
}

impl InsightClass for MonotonicRelationship {
    fn id(&self) -> &'static str {
        "monotonic-relationship"
    }

    fn name(&self) -> &'static str {
        "Monotonic Relationship"
    }

    fn description(&self) -> &'static str {
        "Two attributes move together monotonically, not necessarily linearly"
    }

    fn metric(&self) -> &'static str {
        "|spearman|"
    }

    fn alternative_metrics(&self) -> Vec<&'static str> {
        vec!["|kendall-tau|", "nonlinearity-gap"]
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        pairs(&table.numeric_indices())
            .into_iter()
            .map(|(a, b)| AttrTuple::Two(a, b))
            .collect()
    }

    fn pruning(&self) -> CandidatePruning {
        CandidatePruning::NumericPairs
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        self.signed(table, attrs).map(f64::abs)
    }

    fn score_batch(&self, table: &Table, attrs: &[AttrTuple]) -> Vec<Option<f64>> {
        // rank and center each distinct column once; Spearman is then one
        // fused Pearson pass over the shared rank vectors. Columns with
        // missing values rank differently per pair (pairwise deletion), so
        // tuples touching them fall back to mask-driven pairwise deletion —
        // one presence mask per column, one shared compaction scratch, no
        // per-pair allocation.
        let cols = center_columns(table, attrs, |v| {
            v.iter().all(|x| !x.is_nan()).then(|| fractional_ranks(v))
        });
        let mut masks: HashMap<usize, PresenceMask> = HashMap::new();
        let mut scratch = PairScratch::new();
        attrs
            .iter()
            .map(|a| {
                let AttrTuple::Two(i, j) = a else {
                    return None;
                };
                match (cols.get(i), cols.get(j)) {
                    (Some(Some(rx)), Some(Some(ry))) => {
                        let rho = pearson_centered(rx, ry);
                        rho.is_finite().then_some(rho.abs())
                    }
                    _ => {
                        let x = table.numeric(*i).ok()?.values();
                        let y = table.numeric(*j).ok()?.values();
                        for (idx, col) in [(*i, x), (*j, y)] {
                            masks
                                .entry(idx)
                                .or_insert_with(|| PresenceMask::from_values(col));
                        }
                        let rho = spearman_masked(x, y, &masks[i], &masks[j], &mut scratch);
                        rho.is_finite().then_some(rho.abs())
                    }
                }
            })
            .collect()
    }

    fn score_metric(&self, table: &Table, attrs: &AttrTuple, metric: &str) -> Option<f64> {
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        match metric {
            "|kendall-tau|" => {
                let tau = kendall_tau_b(
                    table.numeric(*i).ok()?.values(),
                    table.numeric(*j).ok()?.values(),
                );
                tau.is_finite().then_some(tau.abs())
            }
            "nonlinearity-gap" => {
                let s = self.score(table, attrs)?;
                let p = pearson(
                    table.numeric(*i).ok()?.values(),
                    table.numeric(*j).ok()?.values(),
                );
                if !p.is_finite() {
                    return None;
                }
                Some((s - p.abs()).max(0.0))
            }
            _ => self.score(table, attrs),
        }
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        // Spearman = Pearson on ranks, so the rank-transformed hyperplane
        // sketches estimate it directly.
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        catalog.spearman(*i, *j).map(f64::abs)
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, _score: f64) -> String {
        let (i, j) = match attrs {
            AttrTuple::Two(i, j) => (*i, *j),
            _ => return String::new(),
        };
        let rho = self.signed(table, attrs).unwrap_or(f64::NAN);
        let direction = if rho < 0.0 {
            "decreasing"
        } else {
            "increasing"
        };
        format!(
            "{} is monotonically {} in {} (ρₛ = {:.2})",
            column_name(table, j),
            direction,
            column_name(table, i),
            rho
        )
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        let rho = self.signed(table, attrs)?;
        scatter_chart(
            table,
            *i,
            *j,
            format!(
                "{} vs {} (ρₛ = {:.2})",
                column_name(table, *i),
                column_name(table, *j),
                rho
            ),
            false,
        )
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        // a Spearman version of the Figure-2 heatmap; one compaction
        // scratch reused across all O(d²) pairs
        let indices = table.numeric_indices();
        let d = indices.len();
        let mut values = vec![vec![f64::NAN; d]; d];
        let mut scratch = PairScratch::new();
        for a in 0..d {
            values[a][a] = 1.0;
            for b in (a + 1)..d {
                let rho = spearman_with(
                    table.numeric(indices[a]).ok()?.values(),
                    table.numeric(indices[b]).ok()?.values(),
                    &mut scratch,
                );
                values[a][b] = rho;
                values[b][a] = rho;
            }
        }
        Some(ChartSpec {
            title: "Pairwise rank correlations".to_owned(),
            x_label: String::new(),
            y_label: String::new(),
            kind: foresight_viz::ChartKind::CorrelationHeatmap(foresight_viz::HeatmapSpec {
                labels: indices
                    .iter()
                    .map(|&i| column_name(table, i).to_owned())
                    .collect(),
                values,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        let x: Vec<f64> = (1..200).map(|i| i as f64).collect();
        let cubic: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        let noise: Vec<f64> = (1..200).map(|i| ((i * 7919) % 199) as f64).collect();
        TableBuilder::new("t")
            .numeric("x", x)
            .numeric("cubic", cubic)
            .numeric("noise", noise)
            .build()
            .unwrap()
    }

    #[test]
    fn monotone_nonlinear_scores_one() {
        let m = MonotonicRelationship;
        let t = table();
        assert!((m.score(&t, &AttrTuple::Two(0, 1)).unwrap() - 1.0).abs() < 1e-9);
        assert!(m.score(&t, &AttrTuple::Two(0, 2)).unwrap() < 0.3);
    }

    #[test]
    fn batch_scores_bit_identical_to_single() {
        let m = MonotonicRelationship;
        let quad: Vec<f64> = (0..80).map(|i| (i as f64 - 40.0).powi(2)).collect();
        let holes: Vec<f64> = (0..80)
            .map(|i| {
                if i % 11 == 3 {
                    f64::NAN
                } else {
                    (i * i) as f64
                }
            })
            .collect();
        let ascending: Vec<f64> = (0..80).map(|i| i as f64).collect();
        let t = TableBuilder::new("t")
            .numeric("quad", quad)
            .numeric("holes", holes)
            .numeric("ascending", ascending)
            .build()
            .unwrap();
        let cands = m.candidates(&t);
        let batch = m.score_batch(&t, &cands);
        for (a, b) in cands.iter().zip(&batch) {
            assert_eq!(
                m.score(&t, a).map(f64::to_bits),
                b.map(f64::to_bits),
                "batch diverges on {a:?}"
            );
        }
    }

    #[test]
    fn nonlinearity_gap_prefers_curved_relationships() {
        let m = MonotonicRelationship;
        let t = table();
        // cubic: spearman 1, pearson < 1 → positive gap
        let gap_cubic = m
            .score_metric(&t, &AttrTuple::Two(0, 1), "nonlinearity-gap")
            .unwrap();
        assert!(gap_cubic > 0.05, "gap {gap_cubic}");
    }

    #[test]
    fn kendall_metric_available() {
        let m = MonotonicRelationship;
        let t = table();
        let tau = m
            .score_metric(&t, &AttrTuple::Two(0, 1), "|kendall-tau|")
            .unwrap();
        assert!((tau - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chart_has_no_fit_line() {
        let m = MonotonicRelationship;
        let c = m.chart(&table(), &AttrTuple::Two(0, 1)).unwrap();
        match c.kind {
            foresight_viz::ChartKind::Scatter(s) => assert!(s.fit.is_none()),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn describe_mentions_direction() {
        let m = MonotonicRelationship;
        let t = table();
        let d = m.describe(&t, &AttrTuple::Two(0, 1), 1.0);
        assert!(d.contains("increasing"), "{d}");
    }
}
