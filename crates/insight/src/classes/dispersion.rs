//! Insight 1 (paper §2.2): **Dispersion** — very high dispersion of values
//! around the mean, measured by the variance `σ²(b)` and visualized with a
//! histogram.

use crate::class::{column_name, InsightClass};
use crate::types::AttrTuple;
use crate::util::histogram_chart;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_viz::{BarSpec, ChartKind, ChartSpec};

/// The dispersion insight class.
#[derive(Debug, Default, Clone, Copy)]
pub struct Dispersion;

impl InsightClass for Dispersion {
    fn id(&self) -> &'static str {
        "dispersion"
    }

    fn name(&self) -> &'static str {
        "Dispersion"
    }

    fn description(&self) -> &'static str {
        "Values spread unusually widely around the mean"
    }

    fn metric(&self) -> &'static str {
        "variance"
    }

    fn alternative_metrics(&self) -> Vec<&'static str> {
        vec!["coefficient-of-variation"]
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        table
            .numeric_indices()
            .into_iter()
            .map(AttrTuple::One)
            .collect()
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let m = foresight_stats::Moments::from_slice(table.numeric(*idx).ok()?.values());
        let v = m.population_variance();
        v.is_finite().then_some(v)
    }

    fn score_metric(&self, table: &Table, attrs: &AttrTuple, metric: &str) -> Option<f64> {
        if metric != "coefficient-of-variation" {
            return self.score(table, attrs);
        }
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let m = foresight_stats::Moments::from_slice(table.numeric(*idx).ok()?.values());
        let cv = m.coefficient_of_variation();
        cv.is_finite().then_some(cv)
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let v = catalog.numeric(*idx)?.moments.population_variance();
        v.is_finite().then_some(v)
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, score: f64) -> String {
        let name = attrs
            .indices()
            .first()
            .map(|&i| column_name(table, i))
            .unwrap_or("");
        format!(
            "{name} has very high dispersion (σ² = {}, σ = {})",
            crate::util::fmt_compact(score),
            crate::util::fmt_compact(score.sqrt())
        )
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let score = self.score(table, attrs)?;
        histogram_chart(
            table,
            *idx,
            format!(
                "{}: σ² = {}",
                column_name(table, *idx),
                crate::util::fmt_compact(score)
            ),
        )
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        overview_bar(self, table, "Dispersion by attribute (variance)")
    }
}

/// Shared overview builder: one bar per candidate tuple, sorted descending —
/// the paper's "metric over all tuples in the insight class".
pub(crate) fn overview_bar(
    class: &dyn InsightClass,
    table: &Table,
    title: &str,
) -> Option<ChartSpec> {
    let mut items: Vec<(String, f64)> = class
        .candidates(table)
        .iter()
        .filter_map(|attrs| {
            let score = class.score(table, attrs)?;
            let name = attrs
                .indices()
                .iter()
                .map(|&i| column_name(table, i))
                .collect::<Vec<_>>()
                .join(" × ");
            Some((name, score))
        })
        .collect();
    if items.is_empty() {
        return None;
    }
    items.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    items.truncate(30);
    let (labels, values) = items.into_iter().unzip();
    Some(ChartSpec {
        title: title.to_owned(),
        x_label: class.metric().to_owned(),
        y_label: String::new(),
        kind: ChartKind::Bar(BarSpec { labels, values }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        TableBuilder::new("t")
            .numeric("wide", (0..100).map(|i| (i * 100) as f64).collect())
            .numeric("narrow", (0..100).map(|i| (i % 3) as f64).collect())
            .numeric("constant", vec![5.0; 100])
            .categorical("c", (0..100).map(|_| "x"))
            .build()
            .unwrap()
    }

    #[test]
    fn candidates_are_numeric_columns() {
        let d = Dispersion;
        assert_eq!(
            d.candidates(&table()),
            vec![AttrTuple::One(0), AttrTuple::One(1), AttrTuple::One(2)]
        );
    }

    #[test]
    fn wide_beats_narrow() {
        let d = Dispersion;
        let t = table();
        let wide = d.score(&t, &AttrTuple::One(0)).unwrap();
        let narrow = d.score(&t, &AttrTuple::One(1)).unwrap();
        assert!(wide > narrow);
        assert_eq!(d.score(&t, &AttrTuple::One(2)), Some(0.0));
    }

    #[test]
    fn cv_is_scale_free() {
        let d = Dispersion;
        let t = TableBuilder::new("t")
            .numeric("a", (0..50).map(|i| 10.0 + i as f64).collect())
            .numeric(
                "a_scaled",
                (0..50).map(|i| 100.0 + 10.0 * i as f64).collect(),
            )
            .build()
            .unwrap();
        // a_scaled = 10·a exactly, so the CV (scale-free) agrees…
        let cv_a = d
            .score_metric(&t, &AttrTuple::One(0), "coefficient-of-variation")
            .unwrap();
        let cv_b = d
            .score_metric(&t, &AttrTuple::One(1), "coefficient-of-variation")
            .unwrap();
        assert!((cv_a - cv_b).abs() < 1e-9);
        // …while the plain variance differs by 100×
        let va = d.score(&t, &AttrTuple::One(0)).unwrap();
        let vb = d.score(&t, &AttrTuple::One(1)).unwrap();
        assert!((vb / va - 100.0).abs() < 1e-9);
    }

    #[test]
    fn chart_is_histogram_with_metric_title() {
        let d = Dispersion;
        let c = d.chart(&table(), &AttrTuple::One(0)).unwrap();
        assert_eq!(c.kind_name(), "histogram");
        assert!(c.title.contains("σ²"));
    }

    #[test]
    fn overview_sorted_descending() {
        let d = Dispersion;
        let o = d.overview(&table()).unwrap();
        match o.kind {
            ChartKind::Bar(b) => {
                assert_eq!(b.labels[0], "wide");
                assert!(b.values[0] >= b.values[1]);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn wrong_arity_is_none() {
        assert!(Dispersion.score(&table(), &AttrTuple::Two(0, 1)).is_none());
    }
}
