//! The **Concentration** insight: a categorical column whose empirical
//! distribution is far from uniform, measured by `1 − H/ln(card)`
//! (one minus normalized Shannon entropy). Complements
//! [`crate::classes::hetero_freq`]: RelFreq looks only at the top-k head,
//! entropy summarizes the whole distribution.

use crate::class::{column_name, InsightClass};
use crate::classes::dispersion::overview_bar;
use crate::types::AttrTuple;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_stats::FrequencyTable;
use foresight_viz::{ChartKind, ChartSpec, ParetoSpec};

/// The concentration (low-entropy) insight class.
#[derive(Debug, Default, Clone, Copy)]
pub struct Concentration;

impl InsightClass for Concentration {
    fn id(&self) -> &'static str {
        "concentration"
    }

    fn name(&self) -> &'static str {
        "Concentration"
    }

    fn description(&self) -> &'static str {
        "The value distribution is far more concentrated than uniform"
    }

    fn metric(&self) -> &'static str {
        "1 - normalized entropy"
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        table
            .categorical_indices()
            .into_iter()
            .map(AttrTuple::One)
            .collect()
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let ft = FrequencyTable::from_column(table.categorical(*idx).ok()?);
        let ne = ft.normalized_entropy();
        ne.is_finite().then(|| (1.0 - ne).clamp(0.0, 1.0))
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let s = catalog.categorical(*idx)?;
        if s.cardinality < 2 {
            return None;
        }
        let h = s.entropy.estimate();
        if !h.is_finite() {
            return None;
        }
        Some((1.0 - h / (s.cardinality as f64).ln()).clamp(0.0, 1.0))
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, score: f64) -> String {
        let name = attrs
            .indices()
            .first()
            .map(|&i| column_name(table, i))
            .unwrap_or("");
        format!(
            "{name} is {:.0}% more concentrated than a uniform distribution over its values",
            100.0 * score
        )
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let ft = FrequencyTable::from_column(table.categorical(*idx).ok()?);
        let score = self.score(table, attrs)?;
        Some(ChartSpec {
            title: format!(
                "{}: concentration {:.2} over {} values",
                column_name(table, *idx),
                score,
                ft.cardinality()
            ),
            x_label: column_name(table, *idx).to_owned(),
            y_label: "count".to_owned(),
            kind: ChartKind::Pareto(ParetoSpec {
                bars: ft.top_k(12).to_vec(),
                total: ft.total,
            }),
        })
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        overview_bar(self, table, "Concentration by attribute (1 − entropy)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        let concentrated: Vec<String> = (0..400)
            .map(|i| {
                if i % 20 == 0 {
                    format!("tail{}", i / 20)
                } else {
                    "head".to_owned()
                }
            })
            .collect();
        let uniform: Vec<String> = (0..400).map(|i| format!("u{}", i % 20)).collect();
        TableBuilder::new("t")
            .categorical("concentrated", concentrated.iter().map(String::as_str))
            .categorical("uniform", uniform.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn concentrated_outranks_uniform() {
        let c = Concentration;
        let t = table();
        let conc = c.score(&t, &AttrTuple::One(0)).unwrap();
        let unif = c.score(&t, &AttrTuple::One(1)).unwrap();
        assert!(conc > 0.5, "conc {conc}");
        assert!(unif < 0.05, "unif {unif}");
    }

    #[test]
    fn sketch_score_tracks_exact() {
        let t = table();
        let cat = foresight_sketch::SketchCatalog::build(
            &t,
            &foresight_sketch::CatalogConfig {
                entropy_k: 1024,
                ..Default::default()
            },
        );
        let c = Concentration;
        for idx in [0usize, 1] {
            let exact = c.score(&t, &AttrTuple::One(idx)).unwrap();
            let approx = c.score_sketch(&cat, &t, &AttrTuple::One(idx)).unwrap();
            assert!(
                (exact - approx).abs() < 0.12,
                "col {idx}: exact {exact} approx {approx}"
            );
        }
    }

    #[test]
    fn chart_is_pareto() {
        let c = Concentration;
        let spec = c.chart(&table(), &AttrTuple::One(0)).unwrap();
        assert_eq!(spec.kind_name(), "pareto");
        assert!(spec.title.contains("concentration"));
    }
}
