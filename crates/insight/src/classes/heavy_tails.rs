//! Insight 3 (paper §2.2): **Heavy Tails** — propensity toward extreme
//! values, measured by kurtosis `Kurt(b)` and visualized with a histogram.

use crate::class::{column_name, InsightClass};
use crate::classes::dispersion::overview_bar;
use crate::types::AttrTuple;
use crate::util::histogram_chart;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_viz::ChartSpec;

/// The heavy-tails insight class.
#[derive(Debug, Default, Clone, Copy)]
pub struct HeavyTails;

impl InsightClass for HeavyTails {
    fn id(&self) -> &'static str {
        "heavy-tails"
    }

    fn name(&self) -> &'static str {
        "Heavy Tails"
    }

    fn description(&self) -> &'static str {
        "The distribution produces extreme values far more often than a normal one"
    }

    fn metric(&self) -> &'static str {
        "kurtosis"
    }

    fn alternative_metrics(&self) -> Vec<&'static str> {
        vec!["excess-kurtosis"]
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        table
            .numeric_indices()
            .into_iter()
            .map(AttrTuple::One)
            .collect()
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let k = foresight_stats::Moments::from_slice(table.numeric(*idx).ok()?.values()).kurtosis();
        k.is_finite().then_some(k)
    }

    fn score_metric(&self, table: &Table, attrs: &AttrTuple, metric: &str) -> Option<f64> {
        let k = self.score(table, attrs)?;
        Some(if metric == "excess-kurtosis" {
            k - 3.0
        } else {
            k
        })
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let k = catalog.numeric(*idx)?.moments.kurtosis();
        k.is_finite().then_some(k)
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, score: f64) -> String {
        let name = attrs
            .indices()
            .first()
            .map(|&i| column_name(table, i))
            .unwrap_or("");
        let vs_normal = score / 3.0;
        format!(
            "{name} is heavy-tailed (kurtosis {} — {:.1}x the normal distribution's)",
            crate::util::fmt_compact(score),
            vs_normal
        )
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let k = self.score(table, attrs)?;
        histogram_chart(
            table,
            *idx,
            format!("{}: kurtosis = {:.2}", column_name(table, *idx), k),
        )
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        overview_bar(self, table, "Heavy-tailedness by attribute (kurtosis)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::datasets::dist::normal_quantile;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        let normal: Vec<f64> = (1..500)
            .map(|i| normal_quantile(i as f64 / 500.0))
            .collect();
        let heavy: Vec<f64> = normal.iter().map(|z| 0.3 * (z / 0.3).sinh()).collect();
        let light: Vec<f64> = (0..499).map(|i| (i % 100) as f64).collect(); // uniform
        TableBuilder::new("t")
            .numeric("heavy", heavy)
            .numeric("normal", normal)
            .numeric("uniform", light)
            .build()
            .unwrap()
    }

    #[test]
    fn heavy_outranks_normal_outranks_uniform() {
        let h = HeavyTails;
        let t = table();
        let heavy = h.score(&t, &AttrTuple::One(0)).unwrap();
        let normal = h.score(&t, &AttrTuple::One(1)).unwrap();
        let uniform = h.score(&t, &AttrTuple::One(2)).unwrap();
        assert!(
            heavy > normal && normal > uniform,
            "{heavy} {normal} {uniform}"
        );
        assert!((normal - 3.0).abs() < 0.3, "normal kurtosis {normal}");
        assert!((uniform - 1.8).abs() < 0.1, "uniform kurtosis {uniform}");
    }

    #[test]
    fn excess_metric_shifts_by_three() {
        let h = HeavyTails;
        let t = table();
        let k = h.score(&t, &AttrTuple::One(1)).unwrap();
        let e = h
            .score_metric(&t, &AttrTuple::One(1), "excess-kurtosis")
            .unwrap();
        assert!((k - e - 3.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_none() {
        let t = TableBuilder::new("t")
            .numeric("c", vec![1.0; 10])
            .build()
            .unwrap();
        assert!(HeavyTails.score(&t, &AttrTuple::One(0)).is_none());
    }
}
