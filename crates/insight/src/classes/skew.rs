//! Insight 2 (paper §2.2): **Skew** — asymmetry of a univariate
//! distribution, measured by the standardized skewness coefficient `γ₁(b)`
//! and visualized with a histogram. Ranked by `|γ₁|` (either direction of
//! asymmetry is an insight); the sign is reported in the description.

use crate::class::{column_name, InsightClass};
use crate::classes::dispersion::overview_bar;
use crate::types::AttrTuple;
use crate::util::histogram_chart;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_viz::ChartSpec;

/// The skew insight class.
#[derive(Debug, Default, Clone, Copy)]
pub struct Skew;

impl Skew {
    fn signed(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let g1 =
            foresight_stats::Moments::from_slice(table.numeric(*idx).ok()?.values()).skewness();
        g1.is_finite().then_some(g1)
    }
}

impl InsightClass for Skew {
    fn id(&self) -> &'static str {
        "skew"
    }

    fn name(&self) -> &'static str {
        "Skew"
    }

    fn description(&self) -> &'static str {
        "The distribution is strongly asymmetric around its mean"
    }

    fn metric(&self) -> &'static str {
        "|skewness|"
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        table
            .numeric_indices()
            .into_iter()
            .map(AttrTuple::One)
            .collect()
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        self.signed(table, attrs).map(f64::abs)
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let g1 = catalog.numeric(*idx)?.moments.skewness();
        g1.is_finite().then_some(g1.abs())
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, _score: f64) -> String {
        let name = attrs
            .indices()
            .first()
            .map(|&i| column_name(table, i))
            .unwrap_or("");
        match self.signed(table, attrs) {
            Some(g1) if g1 < 0.0 => format!("{name} is left-skewed (γ₁ = {g1:.2})"),
            Some(g1) => format!("{name} is right-skewed (γ₁ = {g1:.2})"),
            None => format!("{name}: skewness undefined"),
        }
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let g1 = self.signed(table, attrs)?;
        histogram_chart(
            table,
            *idx,
            format!("{}: γ₁ = {:.2}", column_name(table, *idx), g1),
        )
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        overview_bar(self, table, "Skewness by attribute (|γ₁|)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        // right-skewed: exp of uniform grid; symmetric: the grid itself
        let grid: Vec<f64> = (0..200).map(|i| (i as f64 - 100.0) / 40.0).collect();
        TableBuilder::new("t")
            .numeric("skewed", grid.iter().map(|z| z.exp()).collect())
            .numeric("symmetric", grid.clone())
            .numeric("left", grid.iter().map(|z| -z.exp()).collect())
            .build()
            .unwrap()
    }

    #[test]
    fn skewed_outranks_symmetric() {
        let s = Skew;
        let t = table();
        let skewed = s.score(&t, &AttrTuple::One(0)).unwrap();
        let symmetric = s.score(&t, &AttrTuple::One(1)).unwrap();
        assert!(skewed > 1.0, "skewed score {skewed}");
        assert!(symmetric < 0.2, "symmetric score {symmetric}");
    }

    #[test]
    fn magnitude_ranks_but_sign_reported() {
        let s = Skew;
        let t = table();
        let right = s.score(&t, &AttrTuple::One(0)).unwrap();
        let left = s.score(&t, &AttrTuple::One(2)).unwrap();
        assert!((right - left).abs() < 1e-9); // mirror images rank equally
        assert!(s
            .describe(&t, &AttrTuple::One(0), right)
            .contains("right-skewed"));
        assert!(s
            .describe(&t, &AttrTuple::One(2), left)
            .contains("left-skewed"));
    }

    #[test]
    fn chart_title_has_gamma() {
        let c = Skew.chart(&table(), &AttrTuple::One(0)).unwrap();
        assert!(c.title.contains("γ₁"));
    }
}
