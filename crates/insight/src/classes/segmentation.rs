//! The **Segmentation** insight — the paper's "strong clustering of
//! (x,y)-values according to z-values". Ranked by the mean silhouette of the
//! standardized (x, y) points labeled by the categorical z, and visualized
//! as a grouped scatter plot.

use crate::class::{column_name, InsightClass};
use crate::types::AttrTuple;
use foresight_data::Table;
use foresight_stats::kmeans::silhouette;
use foresight_stats::Moments;
use foresight_viz::{ChartKind, ChartSpec, GroupedScatterSpec};

/// The segmentation insight class.
#[derive(Debug, Clone, Copy)]
pub struct Segmentation {
    /// Maximum rows scored per tuple (silhouette is O(n²)).
    pub sample_cap: usize,
    /// Maximum distinct z-categories considered (beyond this the grouping
    /// is treated as an identifier, not a segmentation).
    pub max_groups: usize,
}

impl Default for Segmentation {
    fn default() -> Self {
        Self {
            sample_cap: 400,
            max_groups: 8,
        }
    }
}

/// Sampled standardized points, their group labels, and group names.
type LabeledPoints = (Vec<[f64; 2]>, Vec<usize>, Vec<String>);

impl Segmentation {
    /// Standardized, labeled, sampled points for (x, y | z).
    fn points(&self, table: &Table, x: usize, y: usize, z: usize) -> Option<LabeledPoints> {
        let xv = table.numeric(x).ok()?;
        let yv = table.numeric(y).ok()?;
        let zv = table.categorical(z).ok()?;
        if zv.cardinality() < 2 || zv.cardinality() > self.max_groups {
            return None;
        }
        let mx = Moments::from_slice(xv.values());
        let my = Moments::from_slice(yv.values());
        let (sx, sy) = (mx.population_std(), my.population_std());
        if !(sx > 0.0 && sy > 0.0) {
            return None;
        }
        let complete: Vec<([f64; 2], usize)> = xv
            .values()
            .iter()
            .zip(yv.values())
            .zip(zv.codes())
            .filter(|((a, b), &c)| {
                !a.is_nan() && !b.is_nan() && c != foresight_data::column::NULL_CODE
            })
            .map(|((&a, &b), &c)| ([(a - mx.mean()) / sx, (b - my.mean()) / sy], c as usize))
            .collect();
        if complete.len() < 3 * zv.cardinality() {
            return None;
        }
        let step = complete.len().div_ceil(self.sample_cap).max(1);
        let (points, labels): (Vec<[f64; 2]>, Vec<usize>) =
            complete.into_iter().step_by(step).unzip();
        Some((points, labels, zv.labels().to_vec()))
    }
}

impl InsightClass for Segmentation {
    fn id(&self) -> &'static str {
        "segmentation"
    }

    fn name(&self) -> &'static str {
        "Segmentation"
    }

    fn description(&self) -> &'static str {
        "A categorical attribute cleanly separates two numeric attributes into clusters"
    }

    fn metric(&self) -> &'static str {
        "silhouette"
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        // Only categorical columns with a usable number of groups qualify as
        // z, which keeps the O(|B|²·|C|) candidate space in check.
        let usable_z: Vec<usize> = table
            .categorical_indices()
            .into_iter()
            .filter(|&z| {
                table
                    .categorical(z)
                    .map(|c| (2..=self.max_groups).contains(&c.cardinality()))
                    .unwrap_or(false)
            })
            .collect();
        let numeric = table.numeric_indices();
        let mut out = Vec::new();
        for (i, &x) in numeric.iter().enumerate() {
            for &y in &numeric[i + 1..] {
                for &z in &usable_z {
                    out.push(AttrTuple::Three(x, y, z));
                }
            }
        }
        out
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::Three(x, y, z) = attrs else {
            return None;
        };
        let (points, labels, _) = self.points(table, *x, *y, *z)?;
        let s = silhouette(&points, &labels);
        s.is_finite().then_some(s)
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::Three(x, y, z) = attrs else {
            return None;
        };
        let score = self.score(table, attrs)?;
        let (points, group_of, groups) = self.points(table, *x, *y, *z)?;
        Some(ChartSpec {
            title: format!(
                "{} × {} segmented by {} (silhouette {:.2})",
                column_name(table, *x),
                column_name(table, *y),
                column_name(table, *z),
                score
            ),
            x_label: column_name(table, *x).to_owned(),
            y_label: column_name(table, *y).to_owned(),
            kind: ChartKind::GroupedScatter(GroupedScatterSpec {
                points,
                group_of,
                groups,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        // two well-separated blobs labeled by z; plus a useless label
        let n = 200;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    (i % 7) as f64 * 0.1
                } else {
                    10.0 + (i % 7) as f64 * 0.1
                }
            })
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    (i % 5) as f64 * 0.1
                } else {
                    10.0 + (i % 5) as f64 * 0.1
                }
            })
            .collect();
        let z: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "A" } else { "B" }).collect();
        let junk: Vec<String> = (0..n).map(|i| format!("id{i}")).collect();
        TableBuilder::new("t")
            .numeric("x", x)
            .numeric("y", y)
            .categorical("z", z)
            .categorical("id", junk.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn separating_label_scores_high() {
        let s = Segmentation::default();
        let t = table();
        let score = s.score(&t, &AttrTuple::Three(0, 1, 2)).unwrap();
        assert!(score > 0.8, "silhouette {score}");
    }

    #[test]
    fn high_cardinality_z_excluded() {
        let s = Segmentation::default();
        let t = table();
        let cands = s.candidates(&t);
        assert_eq!(cands, vec![AttrTuple::Three(0, 1, 2)]);
        assert!(s.score(&t, &AttrTuple::Three(0, 1, 3)).is_none());
    }

    #[test]
    fn chart_is_grouped_scatter() {
        let s = Segmentation::default();
        let c = s.chart(&table(), &AttrTuple::Three(0, 1, 2)).unwrap();
        match c.kind {
            ChartKind::GroupedScatter(g) => {
                assert_eq!(g.groups, vec!["A", "B"]);
                assert_eq!(g.points.len(), g.group_of.len());
                assert!(!g.points.is_empty());
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn sampling_cap_respected() {
        let s = Segmentation {
            sample_cap: 50,
            max_groups: 8,
        };
        let (points, _, _) = s.points(&table(), 0, 1, 2).unwrap();
        assert!(points.len() <= 50);
    }
}
