//! Insight 4 (paper §2.2): **Outliers** — presence and significance of
//! extreme values. A user-configurable detector flags the outliers and the
//! strength is "the average standardized distance of the outliers from the
//! mean" (in standard deviations). Visualized with a box-and-whisker plot.

use crate::class::{column_name, InsightClass};
use crate::classes::dispersion::overview_bar;
use crate::types::AttrTuple;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_stats::outlier::{outlier_strength, IqrDetector, OutlierDetector};
use foresight_stats::quantile;
use foresight_viz::{BoxPlotSpec, ChartKind, ChartSpec};
use std::sync::Arc;

/// The outliers insight class with its pluggable detector.
#[derive(Clone)]
pub struct Outliers {
    detector: Arc<dyn OutlierDetector>,
}

impl Default for Outliers {
    /// Defaults to Tukey's IQR fences, matching the box-plot visualization.
    fn default() -> Self {
        Self {
            detector: Arc::new(IqrDetector::default()),
        }
    }
}

impl Outliers {
    /// Uses a custom detector — the paper's "user-configurable
    /// outlier-detection algorithm".
    pub fn with_detector(detector: Arc<dyn OutlierDetector>) -> Self {
        Self { detector }
    }

    /// The configured detector.
    pub fn detector(&self) -> &dyn OutlierDetector {
        self.detector.as_ref()
    }
}

impl std::fmt::Debug for Outliers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Outliers")
            .field("detector", &self.detector.name())
            .finish()
    }
}

impl InsightClass for Outliers {
    fn id(&self) -> &'static str {
        "outliers"
    }

    fn name(&self) -> &'static str {
        "Outliers"
    }

    fn description(&self) -> &'static str {
        "A few values sit extremely far from the bulk of the distribution"
    }

    fn metric(&self) -> &'static str {
        "mean standardized outlier distance"
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        table
            .numeric_indices()
            .into_iter()
            .map(AttrTuple::One)
            .collect()
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        Some(outlier_strength(
            table.numeric(*idx).ok()?.values(),
            self.detector.as_ref(),
        ))
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        // Approximate path: run the detector over the reservoir sample.
        // Extreme outliers are rare, so a fixed-size uniform sample may miss
        // them; this is the documented accuracy trade-off of approx mode.
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let sample = catalog.numeric(*idx)?.reservoir.sample();
        Some(outlier_strength(sample, self.detector.as_ref()))
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, score: f64) -> String {
        let AttrTuple::One(idx) = attrs else {
            return String::new();
        };
        let name = column_name(table, *idx);
        let count = table
            .numeric(*idx)
            .map(|col| self.detector.detect(col.values()).len())
            .unwrap_or(0);
        format!(
            "{name} has {count} outliers ({} detector), on average {score:.1}σ from the mean",
            self.detector.name()
        )
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let values = table.numeric(*idx).ok()?.values();
        let qs = quantile::quantiles(values, &[0.25, 0.5, 0.75])?;
        let (q1, median, q3) = (qs[0], qs[1], qs[2]);
        let iqr = q3 - q1;
        let (fence_lo, fence_hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let whisker_lo = present
            .iter()
            .copied()
            .filter(|&v| v >= fence_lo)
            .fold(f64::INFINITY, f64::min);
        let whisker_hi = present
            .iter()
            .copied()
            .filter(|&v| v <= fence_hi)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut outliers: Vec<f64> = self
            .detector
            .detect(values)
            .into_iter()
            .map(|i| values[i])
            .collect();
        outliers.sort_by(|a, b| a.partial_cmp(b).expect("detector skips NaN"));
        outliers.truncate(100);
        let score = self.score(table, attrs)?;
        Some(ChartSpec {
            title: format!(
                "{}: {} outliers, mean distance {:.1}σ",
                column_name(table, *idx),
                outliers.len(),
                score
            ),
            x_label: column_name(table, *idx).to_owned(),
            y_label: String::new(),
            kind: ChartKind::BoxPlot(BoxPlotSpec {
                whisker_lo,
                q1,
                median,
                q3,
                whisker_hi,
                outliers,
            }),
        })
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        overview_bar(self, table, "Outlier strength by attribute")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;
    use foresight_stats::outlier::ZScoreDetector;

    fn table() -> Table {
        let mut with = (0..200).map(|i| (i % 20) as f64).collect::<Vec<_>>();
        with.push(500.0);
        with.push(-400.0);
        let without: Vec<f64> = (0..202).map(|i| (i % 20) as f64).collect();
        TableBuilder::new("t")
            .numeric("dirty", with)
            .numeric("clean", without)
            .build()
            .unwrap()
    }

    #[test]
    fn dirty_outranks_clean() {
        let o = Outliers::default();
        let t = table();
        let dirty = o.score(&t, &AttrTuple::One(0)).unwrap();
        let clean = o.score(&t, &AttrTuple::One(1)).unwrap();
        assert!(dirty > 3.0, "dirty {dirty}");
        assert_eq!(clean, 0.0);
    }

    #[test]
    fn detector_is_pluggable() {
        let o = Outliers::with_detector(Arc::new(ZScoreDetector { threshold: 2.0 }));
        assert_eq!(o.detector().name(), "z-score");
        let t = table();
        assert!(o.score(&t, &AttrTuple::One(0)).unwrap() > 0.0);
    }

    #[test]
    fn chart_is_boxplot_with_outlier_marks() {
        let o = Outliers::default();
        let c = o.chart(&table(), &AttrTuple::One(0)).unwrap();
        match c.kind {
            ChartKind::BoxPlot(b) => {
                assert!(b.outliers.contains(&500.0));
                assert!(b.outliers.contains(&-400.0));
                assert!(b.whisker_lo <= b.q1 && b.q1 <= b.median);
                assert!(b.median <= b.q3 && b.q3 <= b.whisker_hi);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn whiskers_are_data_values_within_fences() {
        let o = Outliers::default();
        let c = o.chart(&table(), &AttrTuple::One(1)).unwrap();
        match c.kind {
            ChartKind::BoxPlot(b) => {
                assert_eq!(b.whisker_lo, 0.0);
                assert_eq!(b.whisker_hi, 19.0);
                assert!(b.outliers.is_empty());
            }
            _ => panic!("wrong kind"),
        }
    }
}
