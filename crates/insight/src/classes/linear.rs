//! Insight 6 (paper §2.2): **Linear Relationship** — strength of a linear
//! relationship between two numeric columns, measured by `|ρ(x, y)|`
//! (Pearson) and visualized as a scatter plot with the best-fit line
//! superimposed. The class overview is the paper's Figure 2: all pairwise
//! correlations as a circle heatmap.

use crate::class::{column_name, CandidatePruning, InsightClass};
use crate::types::AttrTuple;
use crate::util::{pairs, scatter_chart};
use foresight_data::PresenceMask;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_stats::correlation::{
    center, pearson, pearson_centered, pearson_masked, spearman, CenteredColumn, PairScratch,
};
use foresight_viz::{ChartKind, ChartSpec, HeatmapSpec};
use std::collections::HashMap;

/// Centers every distinct column referenced by `attrs` once. `None` entries
/// mark columns that cannot share centering (missing values, too short, not
/// numeric) — pairs touching them take the per-pair fallback path.
pub(crate) fn center_columns(
    table: &Table,
    attrs: &[AttrTuple],
    transform: impl Fn(&[f64]) -> Option<Vec<f64>>,
) -> HashMap<usize, Option<CenteredColumn>> {
    let mut cols: HashMap<usize, Option<CenteredColumn>> = HashMap::new();
    for a in attrs {
        for &i in &a.indices() {
            cols.entry(i).or_insert_with(|| {
                let values = table.numeric(i).ok()?.values().to_vec();
                center(&transform(values.as_slice())?)
            });
        }
    }
    cols
}

/// The linear-relationship insight class.
#[derive(Debug, Default, Clone, Copy)]
pub struct LinearRelationship;

impl LinearRelationship {
    fn signed(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        let rho = pearson(
            table.numeric(*i).ok()?.values(),
            table.numeric(*j).ok()?.values(),
        );
        rho.is_finite().then_some(rho)
    }

    /// The Figure-2 heatmap over an explicit set of numeric columns, using
    /// exact correlations.
    pub fn heatmap_exact(table: &Table, indices: &[usize]) -> Option<ChartSpec> {
        let cols: Vec<&[f64]> = indices
            .iter()
            .map(|&i| table.numeric(i).ok().map(|c| c.values()))
            .collect::<Option<Vec<_>>>()?;
        let matrix = foresight_stats::correlation::pearson_matrix(&cols);
        Some(Self::heatmap_spec(table, indices, matrix))
    }

    /// The Figure-2 heatmap with correlations estimated from the sketch
    /// catalog (`O(|B|²k)` instead of `O(|B|²n)`).
    pub fn heatmap_sketch(
        table: &Table,
        catalog: &SketchCatalog,
        indices: &[usize],
    ) -> Option<ChartSpec> {
        let matrix = catalog.correlation_matrix(indices)?;
        Some(Self::heatmap_spec(table, indices, matrix))
    }

    fn heatmap_spec(table: &Table, indices: &[usize], values: Vec<Vec<f64>>) -> ChartSpec {
        ChartSpec {
            title: "Pairwise correlations".to_owned(),
            x_label: String::new(),
            y_label: String::new(),
            kind: ChartKind::CorrelationHeatmap(HeatmapSpec {
                labels: indices
                    .iter()
                    .map(|&i| column_name(table, i).to_owned())
                    .collect(),
                values,
            }),
        }
    }
}

impl InsightClass for LinearRelationship {
    fn id(&self) -> &'static str {
        "linear-relationship"
    }

    fn name(&self) -> &'static str {
        "Linear Relationship"
    }

    fn description(&self) -> &'static str {
        "Two attributes move together along a line"
    }

    fn metric(&self) -> &'static str {
        "|pearson|"
    }

    fn alternative_metrics(&self) -> Vec<&'static str> {
        vec!["|spearman|"]
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        pairs(&table.numeric_indices())
            .into_iter()
            .map(|(a, b)| AttrTuple::Two(a, b))
            .collect()
    }

    fn pruning(&self) -> CandidatePruning {
        CandidatePruning::NumericPairs
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        self.signed(table, attrs).map(f64::abs)
    }

    fn score_batch(&self, table: &Table, attrs: &[AttrTuple]) -> Vec<Option<f64>> {
        // center each distinct column once, then one fused pass per pair;
        // bit-identical to `score` (see `pearson_centered`). Pairs touching
        // columns with missing values fall back to pairwise deletion driven
        // by per-column presence masks (built once) and one shared
        // compaction scratch — no per-pair allocation on either path.
        let cols = center_columns(table, attrs, |v| Some(v.to_vec()));
        let mut masks: HashMap<usize, PresenceMask> = HashMap::new();
        let mut scratch = PairScratch::new();
        attrs
            .iter()
            .map(|a| {
                let AttrTuple::Two(i, j) = a else {
                    return None;
                };
                match (cols.get(i), cols.get(j)) {
                    (Some(Some(cx)), Some(Some(cy))) => {
                        let rho = pearson_centered(cx, cy);
                        rho.is_finite().then_some(rho.abs())
                    }
                    _ => {
                        let x = table.numeric(*i).ok()?.values();
                        let y = table.numeric(*j).ok()?.values();
                        for (idx, col) in [(*i, x), (*j, y)] {
                            masks
                                .entry(idx)
                                .or_insert_with(|| PresenceMask::from_values(col));
                        }
                        let rho = pearson_masked(x, y, &masks[i], &masks[j], &mut scratch);
                        rho.is_finite().then_some(rho.abs())
                    }
                }
            })
            .collect()
    }

    fn score_metric(&self, table: &Table, attrs: &AttrTuple, metric: &str) -> Option<f64> {
        if metric != "|spearman|" {
            return self.score(table, attrs);
        }
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        let rho = spearman(
            table.numeric(*i).ok()?.values(),
            table.numeric(*j).ok()?.values(),
        );
        rho.is_finite().then_some(rho.abs())
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        catalog.correlation(*i, *j).map(f64::abs)
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, _score: f64) -> String {
        let (i, j) = match attrs {
            AttrTuple::Two(i, j) => (*i, *j),
            _ => return String::new(),
        };
        let rho = self.signed(table, attrs).unwrap_or(f64::NAN);
        let direction = if rho < 0.0 { "negative" } else { "positive" };
        format!(
            "{} and {} have a strong {} linear relationship (ρ = {:.2})",
            column_name(table, i),
            column_name(table, j),
            direction,
            rho
        )
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::Two(i, j) = attrs else {
            return None;
        };
        let rho = self.signed(table, attrs)?;
        scatter_chart(
            table,
            *i,
            *j,
            format!(
                "{} vs {} (ρ = {:.2})",
                column_name(table, *i),
                column_name(table, *j),
                rho
            ),
            true,
        )
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        Self::heatmap_exact(table, &table.numeric_indices())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        let x: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let neg: Vec<f64> = x.iter().map(|v| -2.0 * v + 7.0).collect();
        let noise: Vec<f64> = (0..120).map(|i| ((i * 37) % 120) as f64).collect();
        TableBuilder::new("t")
            .numeric("x", x)
            .numeric("neg", neg)
            .numeric("noise", noise)
            .categorical("c", (0..120).map(|_| "a"))
            .build()
            .unwrap()
    }

    #[test]
    fn candidates_are_numeric_pairs() {
        let l = LinearRelationship;
        let c = l.candidates(&table());
        assert_eq!(c.len(), 3);
        assert!(c.contains(&AttrTuple::Two(0, 1)));
        assert!(!c.iter().any(|a| a.contains(3))); // categorical excluded
    }

    #[test]
    fn perfect_negative_ranks_first() {
        let l = LinearRelationship;
        let t = table();
        let strong = l.score(&t, &AttrTuple::Two(0, 1)).unwrap();
        let weak = l.score(&t, &AttrTuple::Two(0, 2)).unwrap();
        assert!((strong - 1.0).abs() < 1e-9);
        assert!(weak < 0.3);
        assert!(l
            .describe(&t, &AttrTuple::Two(0, 1), strong)
            .contains("negative"));
    }

    #[test]
    fn spearman_alternative_metric() {
        let l = LinearRelationship;
        let t = table();
        let s = l
            .score_metric(&t, &AttrTuple::Two(0, 1), "|spearman|")
            .unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chart_scatter_with_fit() {
        let l = LinearRelationship;
        let c = l.chart(&table(), &AttrTuple::Two(0, 1)).unwrap();
        match c.kind {
            ChartKind::Scatter(s) => {
                let (slope, _) = s.fit.unwrap();
                assert!((slope + 2.0).abs() < 1e-6);
            }
            _ => panic!("wrong kind"),
        }
        assert!(c.title.contains("ρ"));
    }

    #[test]
    fn batch_scores_bit_identical_to_single() {
        let l = LinearRelationship;
        let mut builder = TableBuilder::new("t");
        // mix of clean columns, a missing-value column, and a constant column
        let clean: Vec<f64> = (0..90).map(|i| (i as f64).sin() * 1e5).collect();
        let linear: Vec<f64> = (0..90).map(|i| i as f64 * 0.37 - 5.0).collect();
        let holes: Vec<f64> = (0..90)
            .map(|i| if i % 7 == 0 { f64::NAN } else { i as f64 })
            .collect();
        let flat = vec![4.0; 90];
        builder = builder
            .numeric("clean", clean)
            .numeric("linear", linear)
            .numeric("holes", holes)
            .numeric("flat", flat);
        let t = builder.build().unwrap();
        let cands = l.candidates(&t);
        assert_eq!(cands.len(), 6);
        let batch = l.score_batch(&t, &cands);
        for (a, b) in cands.iter().zip(&batch) {
            let single = l.score(&t, a);
            assert_eq!(
                single.map(f64::to_bits),
                b.map(f64::to_bits),
                "batch diverges on {a:?}"
            );
        }
    }

    #[test]
    fn overview_is_figure_two_heatmap() {
        let l = LinearRelationship;
        let o = l.overview(&table()).unwrap();
        match o.kind {
            ChartKind::CorrelationHeatmap(h) => {
                assert_eq!(h.labels, vec!["x", "neg", "noise"]);
                assert_eq!(h.values[0][0], 1.0);
                assert!((h.values[0][1] + 1.0).abs() < 1e-9);
                assert_eq!(h.values[0][1], h.values[1][0]);
            }
            _ => panic!("wrong kind"),
        }
    }
}
