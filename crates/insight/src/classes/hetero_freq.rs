//! Insight 5 (paper §2.2): **Heterogeneous Frequencies** — a few "heavy
//! hitter" values dominate a categorical column. Measured by `RelFreq(k, c)`,
//! the total relative frequency of the `k` most frequent values, and
//! visualized with a Pareto chart.

use crate::class::{column_name, InsightClass};
use crate::classes::dispersion::overview_bar;
use crate::types::AttrTuple;
use foresight_data::Table;
use foresight_sketch::SketchCatalog;
use foresight_stats::FrequencyTable;
use foresight_viz::{ChartKind, ChartSpec, ParetoSpec};

/// The heterogeneous-frequencies insight class with its configurable `k`.
#[derive(Debug, Clone, Copy)]
pub struct HeteroFreq {
    /// The paper's "configurable parameter k" of `RelFreq(k, c)`.
    pub k: usize,
}

impl Default for HeteroFreq {
    fn default() -> Self {
        Self { k: 3 }
    }
}

impl HeteroFreq {
    fn freq_table(&self, table: &Table, attrs: &AttrTuple) -> Option<FrequencyTable> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        Some(FrequencyTable::from_column(table.categorical(*idx).ok()?))
    }
}

impl InsightClass for HeteroFreq {
    fn id(&self) -> &'static str {
        "heterogeneous-frequencies"
    }

    fn name(&self) -> &'static str {
        "Heterogeneous Frequencies"
    }

    fn description(&self) -> &'static str {
        "A few heavy-hitter values account for most of the column"
    }

    fn metric(&self) -> &'static str {
        "RelFreq(k)"
    }

    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        table
            .categorical_indices()
            .into_iter()
            .map(AttrTuple::One)
            .collect()
    }

    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let ft = self.freq_table(table, attrs)?;
        // a column with ≤ k distinct values trivially has RelFreq = 1;
        // that is not an insight, so such columns score 0
        if ft.cardinality() <= self.k {
            return Some(0.0);
        }
        Some(ft.rel_freq(self.k))
    }

    fn score_sketch(
        &self,
        catalog: &SketchCatalog,
        _table: &Table,
        attrs: &AttrTuple,
    ) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let s = catalog.categorical(*idx)?;
        if s.cardinality <= self.k {
            return Some(0.0);
        }
        Some(s.heavy_hitters.rel_freq(self.k))
    }

    fn describe(&self, table: &Table, attrs: &AttrTuple, score: f64) -> String {
        let AttrTuple::One(idx) = attrs else {
            return String::new();
        };
        let name = column_name(table, *idx);
        match self.freq_table(table, attrs) {
            Some(ft) if !ft.entries.is_empty() => format!(
                "{name}: top {} of {} values hold {:.0}% of rows (most frequent: `{}`)",
                self.k.min(ft.cardinality()),
                ft.cardinality(),
                100.0 * score,
                ft.entries[0].0
            ),
            _ => format!("{name}: RelFreq({}) = {score:.2}", self.k),
        }
    }

    fn chart(&self, table: &Table, attrs: &AttrTuple) -> Option<ChartSpec> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let ft = self.freq_table(table, attrs)?;
        let score = self.score(table, attrs)?;
        let bars: Vec<(String, u64)> = ft.top_k(12).to_vec();
        Some(ChartSpec {
            title: format!(
                "{}: top {} values hold {:.0}% of rows",
                column_name(table, *idx),
                self.k,
                100.0 * score
            ),
            x_label: column_name(table, *idx).to_owned(),
            y_label: "count".to_owned(),
            kind: ChartKind::Pareto(ParetoSpec {
                bars,
                total: ft.total,
            }),
        })
    }

    fn overview(&self, table: &Table) -> Option<ChartSpec> {
        overview_bar(
            self,
            table,
            "Frequency heterogeneity by attribute (RelFreq)",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foresight_data::TableBuilder;

    fn table() -> Table {
        // "hot": one value dominates among many; "flat": uniform over many
        let hot: Vec<String> = (0..300)
            .map(|i| {
                if i % 3 != 0 {
                    "dominant".to_owned()
                } else {
                    format!("rare{}", i % 40)
                }
            })
            .collect();
        let flat: Vec<String> = (0..300).map(|i| format!("v{}", i % 50)).collect();
        let tiny: Vec<&str> = (0..300)
            .map(|i| if i % 2 == 0 { "a" } else { "b" })
            .collect();
        TableBuilder::new("t")
            .categorical("hot", hot.iter().map(String::as_str))
            .categorical("flat", flat.iter().map(String::as_str))
            .categorical("tiny", tiny)
            .numeric("n", vec![1.0; 300])
            .build()
            .unwrap()
    }

    #[test]
    fn candidates_are_categorical() {
        let h = HeteroFreq::default();
        assert_eq!(
            h.candidates(&table()),
            vec![AttrTuple::One(0), AttrTuple::One(1), AttrTuple::One(2)]
        );
    }

    #[test]
    fn hot_outranks_flat() {
        let h = HeteroFreq::default();
        let t = table();
        let hot = h.score(&t, &AttrTuple::One(0)).unwrap();
        let flat = h.score(&t, &AttrTuple::One(1)).unwrap();
        assert!(hot > 0.6, "hot {hot}");
        assert!(hot > flat + 0.3, "hot {hot} flat {flat}");
    }

    #[test]
    fn low_cardinality_not_an_insight() {
        let h = HeteroFreq::default();
        assert_eq!(h.score(&table(), &AttrTuple::One(2)), Some(0.0));
    }

    #[test]
    fn chart_is_pareto() {
        let h = HeteroFreq::default();
        let c = h.chart(&table(), &AttrTuple::One(0)).unwrap();
        match c.kind {
            ChartKind::Pareto(p) => {
                assert_eq!(p.bars[0].0, "dominant");
                assert_eq!(p.total, 300);
                assert!(p.bars.len() <= 12);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn k_is_configurable() {
        let t = table();
        let k1 = HeteroFreq { k: 1 }.score(&t, &AttrTuple::One(0)).unwrap();
        let k5 = HeteroFreq { k: 5 }.score(&t, &AttrTuple::One(0)).unwrap();
        assert!(k5 > k1);
    }
}
