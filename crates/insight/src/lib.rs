//! # foresight-insight
//!
//! The paper's core contribution, part 1: the insight framework. An
//! *insight* is a strong manifestation of a distributional property of 1–3
//! attributes; each insight class carries ranking metric(s), a chart, and
//! an optional class-level overview chart, and new classes plug in through
//! the [`class::InsightClass`] trait (§2.2).
//!
//! Twelve classes ship by default ([`registry::InsightRegistry`]):
//! linear & monotonic relationships, outliers, heavy tails, skew,
//! dispersion, multimodality, normality, heterogeneous frequencies,
//! concentration, statistical dependence, and segmentation.

#![warn(missing_docs)]

pub mod class;
pub mod classes;
pub mod registry;
pub mod types;
pub mod util;

pub use class::{CandidatePruning, InsightClass};
pub use registry::InsightRegistry;
pub use types::{AttrTuple, InsightInstance};
