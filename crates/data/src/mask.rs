//! Packed presence bitmasks for numeric columns.
//!
//! A [`PresenceMask`] records, one bit per row, whether a column's value is
//! present (`1`) or missing/NaN (`0`). Building the mask costs one `is_nan`
//! sweep per column; after that, pairwise-complete operations over any pair
//! of columns reduce to ANDing the two masks word-by-word and visiting only
//! the set bits — no per-row NaN test, no branch per element. The stats and
//! sketch kernels consume these masks to keep their inner loops branch-free
//! over contiguous `f64` slices.

/// One bit per row; bit set ⇔ value present (not NaN). Bits are packed
/// little-endian into `u64` words (row `i` lives in word `i / 64`, bit
/// `i % 64`); trailing bits past `len` are always zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresenceMask {
    words: Vec<u64>,
    len: usize,
    present: usize,
}

impl PresenceMask {
    /// Builds the mask from a raw value slice; `NaN` marks a missing row.
    pub fn from_values(values: &[f64]) -> Self {
        let mut words = vec![0u64; values.len().div_ceil(64)];
        let mut present = 0usize;
        for (i, chunk) in values.chunks(64).enumerate() {
            let mut w = 0u64;
            for (b, v) in chunk.iter().enumerate() {
                // branchless: bool → 0/1 shifted into place
                w |= u64::from(!v.is_nan()) << b;
            }
            present += w.count_ones() as usize;
            words[i] = w;
        }
        Self {
            words,
            len: values.len(),
            present,
        }
    }

    /// Number of rows covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of present (non-missing) rows.
    pub fn count_present(&self) -> usize {
        self.present
    }

    /// `true` when every row is present — the fast path where kernels can
    /// run over the raw slice with no compaction at all.
    pub fn all_present(&self) -> bool {
        self.present == self.len
    }

    /// Whether row `i` is present.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "row {i} out of bounds for mask of len {}",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The packed words, little-endian bit order; trailing bits past
    /// [`len`](Self::len) are zero, so two masks of equal length can be
    /// combined word-by-word without edge handling.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of rows present in *both* masks — the pairwise-complete count,
    /// computed without touching the value arrays.
    ///
    /// # Panics
    /// Panics if the masks cover different numbers of rows.
    pub fn and_count(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "mask length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_tracks_nans() {
        let v = [1.0, f64::NAN, 3.0, f64::NAN, 5.0];
        let m = PresenceMask::from_values(&v);
        assert_eq!(m.len(), 5);
        assert_eq!(m.count_present(), 3);
        assert!(!m.all_present());
        let bits: Vec<bool> = (0..5).map(|i| m.get(i)).collect();
        assert_eq!(bits, [true, false, true, false, true]);
    }

    #[test]
    fn word_boundaries_and_trailing_zeros() {
        // 130 rows = 2 full words + 2 bits; every 64th row missing
        let v: Vec<f64> = (0..130)
            .map(|i| if i % 64 == 0 { f64::NAN } else { i as f64 })
            .collect();
        let m = PresenceMask::from_values(&v);
        assert_eq!(m.words().len(), 3);
        assert_eq!(m.count_present(), 127);
        assert!(!m.get(0));
        assert!(!m.get(64));
        assert!(!m.get(128));
        assert!(m.get(63));
        assert!(m.get(129));
        // trailing bits above len must be zero
        assert_eq!(m.words()[2] >> 2, 0);
    }

    #[test]
    fn and_count_matches_pairwise_complete() {
        let x: Vec<f64> = (0..200)
            .map(|i| if i % 7 == 0 { f64::NAN } else { i as f64 })
            .collect();
        let y: Vec<f64> = (0..200)
            .map(|i| if i % 5 == 1 { f64::NAN } else { i as f64 })
            .collect();
        let expected = x
            .iter()
            .zip(&y)
            .filter(|(a, b)| !a.is_nan() && !b.is_nan())
            .count();
        let mx = PresenceMask::from_values(&x);
        let my = PresenceMask::from_values(&y);
        assert_eq!(mx.and_count(&my), expected);
    }

    #[test]
    fn empty_and_full() {
        let m = PresenceMask::from_values(&[]);
        assert!(m.is_empty());
        assert_eq!(m.count_present(), 0);
        assert!(m.all_present()); // vacuously: 0 of 0 present
        let full = PresenceMask::from_values(&[1.0, 2.0, 3.0]);
        assert!(full.all_present());
        assert_eq!(full.and_count(&full), 3);
    }
}
