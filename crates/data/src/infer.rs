//! Column type inference from string fields.
//!
//! A column is numeric when every non-missing field parses as a float and the
//! column is not "discrete with few distinct values" (configurable): integer
//! columns with very low cardinality are usually codes, and the paper's
//! heterogeneous-frequency insight treats those as categorical.

use crate::column::{CategoricalColumn, NumericColumn};
use crate::error::Result;
use crate::table::{Table, TableBuilder};

/// Options controlling type inference.
#[derive(Debug, Clone)]
pub struct InferOptions {
    /// Strings treated as missing (besides the empty string).
    pub null_tokens: Vec<String>,
    /// An all-integer column with at most this many distinct values is
    /// classified as categorical (0 disables the rule).
    pub max_integer_categories: usize,
}

impl Default for InferOptions {
    fn default() -> Self {
        Self {
            null_tokens: vec!["NA".into(), "N/A".into(), "null".into(), "NaN".into()],
            max_integer_categories: 0,
        }
    }
}

impl InferOptions {
    /// Is `field` a missing-value token?
    pub fn is_null(&self, field: &str) -> bool {
        field.is_empty()
            || self
                .null_tokens
                .iter()
                .any(|t| t.eq_ignore_ascii_case(field))
    }
}

/// Attempts to parse a field as a number, tolerating surrounding whitespace
/// and thousands separators.
fn parse_number(field: &str) -> Option<f64> {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        return None;
    }
    let cleaned: String;
    let candidate = if trimmed.contains(',') {
        cleaned = trimmed.replace(',', "");
        &cleaned
    } else {
        trimmed
    };
    candidate.parse::<f64>().ok().filter(|v| v.is_finite())
}

/// Classifies and materializes the columns of a parsed CSV body.
pub fn infer_columns(
    name: &str,
    header: &[String],
    rows: &[Vec<String>],
    options: &InferOptions,
) -> Result<Table> {
    let mut builder = TableBuilder::new(name);
    for (c, col_name) in header.iter().enumerate() {
        let fields = rows.iter().map(|r| r[c].as_str());
        builder = if let Some(values) = try_numeric(fields.clone(), options) {
            builder.column(col_name, NumericColumn::new(values))
        } else {
            let cells = fields.map(|f| {
                if options.is_null(f) {
                    None
                } else {
                    Some(f.trim())
                }
            });
            builder.column(col_name, CategoricalColumn::from_options(cells))
        };
    }
    builder.build()
}

/// Returns the numeric values when every present field parses as a number and
/// the low-cardinality-integer rule does not reclassify the column.
fn try_numeric<'a>(
    fields: impl Iterator<Item = &'a str> + Clone,
    options: &InferOptions,
) -> Option<Vec<f64>> {
    let mut values = Vec::new();
    let mut any_present = false;
    for f in fields {
        if options.is_null(f) {
            values.push(f64::NAN);
        } else {
            let v = parse_number(f)?;
            any_present = true;
            values.push(v);
        }
    }
    if !any_present {
        return None; // all-missing columns default to categorical
    }
    if options.max_integer_categories > 0 {
        let all_int = values
            .iter()
            .filter(|v| !v.is_nan())
            .all(|v| v.fract() == 0.0);
        if all_int {
            let mut distinct: Vec<i64> = values
                .iter()
                .filter(|v| !v.is_nan())
                .map(|&v| v as i64)
                .collect();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() <= options.max_integer_categories {
                return None;
            }
        }
    }
    Some(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn numeric_detection() {
        let t = infer_columns(
            "t",
            &["a".into()],
            &rows(&[&["1"], &["2.5"], &["-3e2"], &[" 4 "]]),
            &InferOptions::default(),
        )
        .unwrap();
        assert_eq!(
            t.numeric_by_name("a").unwrap().values(),
            &[1.0, 2.5, -300.0, 4.0]
        );
    }

    #[test]
    fn null_tokens_become_missing() {
        let t = infer_columns(
            "t",
            &["a".into()],
            &rows(&[&["1"], &["NA"], &["nan"], &[""]]),
            &InferOptions::default(),
        )
        .unwrap();
        assert_eq!(t.numeric_by_name("a").unwrap().null_count(), 3);
    }

    #[test]
    fn mixed_becomes_categorical() {
        let t = infer_columns(
            "t",
            &["a".into()],
            &rows(&[&["1"], &["two"], &["3"]]),
            &InferOptions::default(),
        )
        .unwrap();
        assert_eq!(t.categorical_by_name("a").unwrap().cardinality(), 3);
    }

    #[test]
    fn thousands_separators() {
        assert_eq!(parse_number("1,234.5"), Some(1234.5));
        assert_eq!(parse_number("inf"), None);
        assert_eq!(parse_number("x"), None);
    }

    #[test]
    fn low_cardinality_integer_rule() {
        let opts = InferOptions {
            max_integer_categories: 3,
            ..Default::default()
        };
        let body = rows(&[&["1"], &["2"], &["1"], &["2"]]);
        let t = infer_columns("t", &["a".into()], &body, &opts).unwrap();
        assert!(t.categorical_by_name("a").is_ok());
        // disabled by default
        let t = infer_columns("t", &["a".into()], &body, &InferOptions::default()).unwrap();
        assert!(t.numeric_by_name("a").is_ok());
    }

    #[test]
    fn all_missing_column_is_categorical() {
        let t = infer_columns(
            "t",
            &["a".into()],
            &rows(&[&[""], &["NA"]]),
            &InferOptions::default(),
        )
        .unwrap();
        assert_eq!(t.categorical_by_name("a").unwrap().null_count(), 2);
    }
}
