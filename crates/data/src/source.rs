//! Where a table's rows live: one resident block, or disjoint row shards.
//!
//! [`TableSource`] is the ingest-side abstraction the partition-native
//! pipeline is built on. A `Materialized` source is the classic case — all
//! rows in one [`Table`]. A `Sharded` source holds disjoint row partitions
//! sharing one schema, in global row order, the shape produced by chunked
//! ingest, partitioned files, or per-node scans; the sketch layer consumes
//! the shards independently (each at its global row offset) and merges the
//! per-shard catalogs, so the engine can answer approximate-mode queries
//! without ever concatenating the shards.
//!
//! A sharded source may also drop its raw rows after sketching
//! ([`TableSource::drop_raw`]), becoming *sketch-only*: approximate queries
//! keep working off the merged catalog, while exact-mode access fails with
//! a typed [`DataError::SketchOnly`] instead of silently recomputing from
//! partial data.
//!
//! A `TableSource` is plain owned data — `Send + Sync` (asserted below),
//! so the engine can hold one inside an `Arc`-shared core snapshot and
//! answer any number of concurrent read-only sessions from it.

use crate::column::ColumnType;
use crate::error::{DataError, Result};
use crate::schema::Schema;
use crate::table::{Table, TableBuilder};
use std::sync::Arc;

/// A table's rows: materialized in one block, or split into disjoint row
/// shards that share one schema. See the module docs.
///
/// Shards are held behind [`Arc`] so cloning a source — which the engine's
/// writer path does on every republish while readers still hold the old
/// snapshot — shares the row data instead of deep-copying it. Appends
/// always add a *new* shard; resident shards are never mutated, so the
/// sharing is safe.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum TableSource {
    /// All rows resident in a single table.
    Materialized(Table),
    /// Disjoint row partitions in global row order.
    Sharded {
        /// Dataset name (from the first shard).
        name: String,
        /// The schema every shard shares.
        schema: Schema,
        /// The resident shards, in global row order after `dropped_rows`.
        shards: Vec<Arc<Table>>,
        /// Total rows across resident *and* dropped shards.
        total_rows: usize,
        /// Rows whose raw shards were dropped after sketching; they precede
        /// every resident shard in the global row order.
        dropped_rows: usize,
    },
}

impl TableSource {
    /// Wraps a fully materialized table.
    pub fn materialized(table: Table) -> Self {
        TableSource::Materialized(table)
    }

    /// Builds a sharded source from disjoint row partitions, in global row
    /// order.
    ///
    /// # Errors
    /// [`DataError::Empty`] for an empty shard list (a source must have a
    /// schema); a schema error when any shard disagrees with the first on
    /// column names, order, or types.
    pub fn sharded(shards: Vec<Table>) -> Result<Self> {
        let first = shards
            .first()
            .ok_or(DataError::Empty("sharded source needs at least one shard"))?;
        let schema = first.schema().clone();
        let name = first.name().to_owned();
        for shard in &shards[1..] {
            check_schema(&schema, shard)?;
        }
        let total_rows = shards.iter().map(Table::n_rows).sum();
        Ok(TableSource::Sharded {
            name,
            schema,
            shards: shards.into_iter().map(Arc::new).collect(),
            total_rows,
            dropped_rows: 0,
        })
    }

    /// A source that never held raw rows: only a schema and a row count.
    /// This is the shape of a *derived* core whose answers come entirely
    /// from a sketch catalog built elsewhere — e.g. a tail-window snapshot
    /// over the last `rows` ingested rows. `rows` must be ≥ 1 (a window
    /// snapshot is only published once it covers data).
    ///
    /// # Panics
    /// When `rows` is zero.
    pub fn sketch_only(name: impl Into<String>, schema: Schema, rows: usize) -> Self {
        assert!(
            rows >= 1,
            "a sketch-only source must cover at least one row"
        );
        TableSource::Sharded {
            name: name.into(),
            schema,
            shards: Vec::new(),
            total_rows: rows,
            dropped_rows: rows,
        }
    }

    /// The dataset name.
    pub fn name(&self) -> &str {
        match self {
            TableSource::Materialized(t) => t.name(),
            TableSource::Sharded { name, .. } => name,
        }
    }

    /// The schema shared by every row of the source.
    pub fn schema(&self) -> &Schema {
        match self {
            TableSource::Materialized(t) => t.schema(),
            TableSource::Sharded { schema, .. } => schema,
        }
    }

    /// Total rows, including rows whose raw shards were dropped.
    pub fn n_rows(&self) -> usize {
        match self {
            TableSource::Materialized(t) => t.n_rows(),
            TableSource::Sharded { total_rows, .. } => *total_rows,
        }
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.schema().len()
    }

    /// Number of resident shards (1 for a materialized source).
    pub fn shard_count(&self) -> usize {
        match self {
            TableSource::Materialized(_) => 1,
            TableSource::Sharded { shards, .. } => shards.len(),
        }
    }

    /// Iterates the resident shards in global row order. A materialized
    /// source yields its single table.
    pub fn shards(&self) -> impl Iterator<Item = &Table> {
        let (single, many): (Option<&Table>, &[Arc<Table>]) = match self {
            TableSource::Materialized(t) => (Some(t), &[]),
            TableSource::Sharded { shards, .. } => (None, shards),
        };
        single.into_iter().chain(many.iter().map(Arc::as_ref))
    }

    /// Global row offset of each resident shard, aligned with
    /// [`TableSource::shards`] (dropped rows shift every offset up).
    pub fn shard_offsets(&self) -> Vec<usize> {
        let mut offset = match self {
            TableSource::Materialized(_) => 0,
            TableSource::Sharded { dropped_rows, .. } => *dropped_rows,
        };
        self.shards()
            .map(|s| {
                let at = offset;
                offset += s.n_rows();
                at
            })
            .collect()
    }

    /// Appends a new shard of rows and returns its global row offset. A
    /// materialized source is promoted to a sharded one in place.
    ///
    /// # Errors
    /// A schema error when the shard disagrees with the source's schema on
    /// column names, order, or types.
    pub fn append_shard(&mut self, shard: Table) -> Result<usize> {
        self.append_shard_arc(Arc::new(shard))
    }

    /// [`TableSource::append_shard`] for a shard already behind an [`Arc`]
    /// — lets a streaming writer share one batch between the source and
    /// e.g. a windowed catalog without copying the rows.
    ///
    /// # Errors
    /// A schema error when the shard disagrees with the source's schema on
    /// column names, order, or types.
    pub fn append_shard_arc(&mut self, shard: Arc<Table>) -> Result<usize> {
        check_schema(self.schema(), &shard)?;
        let offset = self.n_rows();
        match self {
            TableSource::Materialized(t) => {
                let first = std::mem::replace(t, TableBuilder::new("").build()?);
                *self = TableSource::Sharded {
                    name: first.name().to_owned(),
                    schema: first.schema().clone(),
                    total_rows: first.n_rows() + shard.n_rows(),
                    shards: vec![Arc::new(first), shard],
                    dropped_rows: 0,
                };
            }
            TableSource::Sharded {
                shards, total_rows, ..
            } => {
                *total_rows += shard.n_rows();
                shards.push(shard);
            }
        }
        Ok(offset)
    }

    /// The table itself when the source is materialized.
    pub fn as_materialized(&self) -> Option<&Table> {
        match self {
            TableSource::Materialized(t) => Some(t),
            TableSource::Sharded { .. } => None,
        }
    }

    /// Concatenates every resident shard into one table (exact-mode
    /// fallback). For a materialized source this is a cheap clone of the
    /// resident table.
    ///
    /// # Errors
    /// [`DataError::SketchOnly`] when raw shards were dropped — the rows no
    /// longer exist to concatenate.
    pub fn materialize(&self) -> Result<Table> {
        if self.is_sketch_only() {
            return Err(DataError::SketchOnly(
                "raw shards were dropped after sketching; exact rows are gone",
            ));
        }
        match self {
            TableSource::Materialized(t) => Ok(t.clone()),
            TableSource::Sharded { shards, .. } => {
                let mut stacked = Table::clone(&shards[0]);
                for shard in &shards[1..] {
                    stacked = stacked.vstack(shard)?;
                }
                Ok(stacked)
            }
        }
    }

    /// A zero-row table with this source's name, schema, and semantic tags —
    /// enough for schema-driven candidate enumeration without touching rows.
    pub fn schema_table(&self) -> Table {
        let mut builder = TableBuilder::new(self.name());
        for field in self.schema().fields() {
            builder = match field.ty {
                ColumnType::Numeric => builder.numeric(field.name.clone(), Vec::new()),
                ColumnType::Categorical => {
                    builder.categorical(field.name.clone(), std::iter::empty::<&str>())
                }
            };
            if let Some(tag) = &field.semantic {
                builder = builder.semantic(tag.clone());
            }
        }
        builder
            .build()
            .expect("a schema-derived empty table is always valid")
    }

    /// Drops the raw rows of a sharded source, keeping only schema and row
    /// count — the shards live on solely through whatever sketches were
    /// built from them. A no-op on a materialized source.
    pub fn drop_raw(&mut self) {
        if let TableSource::Sharded {
            shards,
            total_rows,
            dropped_rows,
            ..
        } = self
        {
            *dropped_rows = *total_rows;
            shards.clear();
        }
    }

    /// Were raw rows dropped after sketching?
    pub fn is_sketch_only(&self) -> bool {
        match self {
            TableSource::Materialized(_) => false,
            TableSource::Sharded { dropped_rows, .. } => *dropped_rows > 0,
        }
    }
}

impl From<Table> for TableSource {
    fn from(table: Table) -> Self {
        TableSource::Materialized(table)
    }
}

// The engine shares one source across every session thread; keep it plain
// owned data so this holds.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TableSource>();
    assert_send_sync::<Table>();
};

/// Shards must agree with the source schema on names, order, and types
/// (semantic tags follow the source, as in [`Table::vstack`]).
fn check_schema(schema: &Schema, shard: &Table) -> Result<()> {
    if schema.len() != shard.schema().len() {
        return Err(DataError::LengthMismatch {
            name: "<schema>".to_owned(),
            len: shard.schema().len(),
            expected: schema.len(),
        });
    }
    for (a, b) in schema.fields().iter().zip(shard.schema().fields()) {
        if a.name != b.name || a.ty != b.ty {
            return Err(DataError::TypeMismatch {
                name: b.name.clone(),
                actual: b.ty.name(),
                expected: a.ty.name(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(name: &str, xs: Vec<f64>, cs: Vec<&str>) -> Table {
        TableBuilder::new(name)
            .numeric("x", xs)
            .semantic("measure")
            .categorical("c", cs)
            .build()
            .unwrap()
    }

    #[test]
    fn sharded_source_dimensions_and_offsets() {
        let s = TableSource::sharded(vec![
            shard("d", vec![1.0, 2.0], vec!["a", "b"]),
            shard("other", vec![3.0], vec!["a"]),
            shard("d", vec![], vec![]),
        ])
        .unwrap();
        assert_eq!(s.name(), "d");
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.n_cols(), 2);
        assert_eq!(s.shard_count(), 3);
        assert_eq!(s.shard_offsets(), vec![0, 2, 3]);
        assert!(!s.is_sketch_only());
    }

    #[test]
    fn materialized_source_is_one_shard() {
        let s = TableSource::materialized(shard("d", vec![1.0, 2.0], vec!["a", "b"]));
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.shard_offsets(), vec![0]);
        assert_eq!(s.shards().count(), 1);
        assert!(s.as_materialized().is_some());
    }

    #[test]
    fn empty_and_mismatched_shards_rejected() {
        assert!(matches!(
            TableSource::sharded(vec![]),
            Err(DataError::Empty(_))
        ));
        let bad = TableBuilder::new("d")
            .numeric("y", vec![1.0])
            .build()
            .unwrap();
        assert!(TableSource::sharded(vec![shard("d", vec![1.0], vec!["a"]), bad]).is_err());
    }

    #[test]
    fn append_promotes_and_offsets_grow() {
        let mut s = TableSource::materialized(shard("d", vec![1.0, 2.0], vec!["a", "b"]));
        let off = s.append_shard(shard("d", vec![3.0], vec!["c"])).unwrap();
        assert_eq!(off, 2);
        assert_eq!(s.shard_count(), 2);
        assert_eq!(s.n_rows(), 3);
        // semantic tags survive the promotion
        assert_eq!(s.schema().fields()[0].semantic.as_deref(), Some("measure"));
        let off = s
            .append_shard(shard("d", vec![4.0, 5.0], vec!["a", "a"]))
            .unwrap();
        assert_eq!(off, 3);
        assert_eq!(s.n_rows(), 5);
        let bad = TableBuilder::new("d")
            .categorical("x", ["nope"])
            .categorical("c", ["a"])
            .build()
            .unwrap();
        assert!(s.append_shard(bad).is_err());
        assert_eq!(s.n_rows(), 5, "failed append must not change the source");
    }

    #[test]
    fn materialize_restores_row_order() {
        let s = TableSource::sharded(vec![
            shard("d", vec![1.0, 2.0], vec!["a", "b"]),
            shard("d", vec![3.0], vec!["c"]),
        ])
        .unwrap();
        let t = s.materialize().unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.numeric_by_name("x").unwrap().values(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.categorical_by_name("c").unwrap().get(2), Some("c"));
    }

    #[test]
    fn schema_table_is_zero_row_same_shape() {
        let s = TableSource::sharded(vec![shard("d", vec![1.0], vec!["a"])]).unwrap();
        let t = s.schema_table();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.name(), "d");
        assert_eq!(t.numeric_indices(), vec![0]);
        assert_eq!(t.semantic(0), Some("measure"));
    }

    #[test]
    fn clones_share_shard_storage() {
        let mut s = TableSource::sharded(vec![shard("d", vec![1.0, 2.0], vec!["a", "b"])]).unwrap();
        let snapshot = s.clone();
        // republish-style clone: the shard Arc is shared, not deep-copied
        match (&s, &snapshot) {
            (TableSource::Sharded { shards: a, .. }, TableSource::Sharded { shards: b, .. }) => {
                assert!(Arc::ptr_eq(&a[0], &b[0]))
            }
            _ => panic!("both sources are sharded"),
        }
        // appends touch only the clone they run on
        s.append_shard(shard("d", vec![3.0], vec!["c"])).unwrap();
        assert_eq!(s.n_rows(), 3);
        assert_eq!(snapshot.n_rows(), 2);
    }

    #[test]
    fn sketch_only_constructor_never_had_rows() {
        let schema = shard("d", vec![1.0], vec!["a"]).schema().clone();
        let s = TableSource::sketch_only("window", schema, 250);
        assert!(s.is_sketch_only());
        assert_eq!(s.n_rows(), 250);
        assert_eq!(s.n_cols(), 2);
        assert_eq!(s.shard_count(), 0);
        assert!(matches!(s.materialize(), Err(DataError::SketchOnly(_))));
        let t = s.schema_table();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.name(), "window");
    }

    #[test]
    fn sketch_only_sources_refuse_materialization() {
        let mut s = TableSource::sharded(vec![
            shard("d", vec![1.0, 2.0], vec!["a", "b"]),
            shard("d", vec![3.0], vec!["c"]),
        ])
        .unwrap();
        s.drop_raw();
        assert!(s.is_sketch_only());
        assert_eq!(s.n_rows(), 3, "row count survives the drop");
        assert_eq!(s.shard_count(), 0);
        assert!(matches!(s.materialize(), Err(DataError::SketchOnly(_))));
        // appending after a drop lands at the right global offset
        let off = s.append_shard(shard("d", vec![4.0], vec!["d"])).unwrap();
        assert_eq!(off, 3);
        assert_eq!(s.shard_offsets(), vec![3]);
        assert!(
            matches!(s.materialize(), Err(DataError::SketchOnly(_))),
            "still sketch-only: the dropped rows are gone for good"
        );
    }
}
