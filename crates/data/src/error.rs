//! Error types for the data layer.

use thiserror::Error;

/// Errors produced while building, reading, or manipulating tables.
#[derive(Debug, Error)]
pub enum DataError {
    /// A column was referenced by a name that does not exist in the table.
    #[error("unknown column `{0}`")]
    UnknownColumn(String),

    /// A column was referenced by an index past the end of the schema.
    #[error("column index {index} out of bounds for table with {width} columns")]
    ColumnIndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of columns in the table.
        width: usize,
    },

    /// Two columns with the same name were added to one table.
    #[error("duplicate column name `{0}`")]
    DuplicateColumn(String),

    /// Columns of differing lengths were combined into one table.
    #[error("column `{name}` has {len} rows but the table has {expected}")]
    LengthMismatch {
        /// Name of the offending column.
        name: String,
        /// Its length.
        len: usize,
        /// The length every column in the table must have.
        expected: usize,
    },

    /// A column had the wrong type for the requested operation.
    #[error("column `{name}` is {actual}, expected {expected}")]
    TypeMismatch {
        /// Name of the offending column.
        name: String,
        /// The type the column actually has.
        actual: &'static str,
        /// The type the operation required.
        expected: &'static str,
    },

    /// Malformed CSV input.
    #[error("csv parse error at line {line}: {message}")]
    Csv {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable description.
        message: String,
    },

    /// An underlying I/O failure.
    #[error("i/o error: {0}")]
    Io(#[from] std::io::Error),

    /// An empty table or column where data was required.
    #[error("empty input: {0}")]
    Empty(&'static str),

    /// Raw rows were requested from a source that kept only sketches.
    #[error("source is sketch-only: {0}")]
    SketchOnly(&'static str),
}

/// Convenient alias used throughout the data crate.
pub type Result<T> = std::result::Result<T, DataError>;
