//! Scalar cell values.

use std::fmt;

/// A single cell of a table, as seen through the row-oriented accessors.
///
/// Foresight stores data column-wise ([`crate::column::Column`]); `Value` is
/// only materialized at the boundary — CSV parsing, row extraction, display.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A missing cell.
    Null,
    /// A numeric (floating point) cell.
    Number(f64),
    /// A categorical (string) cell.
    Text(String),
}

impl Value {
    /// Returns `true` when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the numeric payload, if any.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the text payload, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Number(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        if x.is_nan() {
            Value::Null
        } else {
            Value::Number(x)
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_becomes_null() {
        assert!(Value::from(f64::NAN).is_null());
        assert_eq!(Value::from(2.5), Value::Number(2.5));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Number(1.0).as_number(), Some(1.0));
        assert_eq!(Value::Number(1.0).as_text(), None);
        assert_eq!(Value::Text("a".into()).as_text(), Some("a"));
        assert_eq!(Value::Null.as_number(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Number(1.5).to_string(), "1.5");
        assert_eq!(Value::Text("x".into()).to_string(), "x");
    }
}
