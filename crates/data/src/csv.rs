//! A small, dependency-free CSV reader/writer (RFC 4180 subset).
//!
//! Handles quoted fields, embedded commas, embedded quotes (`""`), and
//! embedded newlines inside quotes. Type inference is delegated to
//! [`crate::infer`].

use crate::error::{DataError, Result};
use crate::infer::{infer_columns, InferOptions};
use crate::table::Table;
use std::io::{BufReader, Read, Write};
use std::path::Path;

/// Parses one CSV record starting at `pos` in `input`.
///
/// Returns the fields and the byte offset just past the record's terminator.
/// `line` is updated as newlines are consumed (for error messages).
fn parse_record(input: &[u8], mut pos: usize, line: &mut usize) -> Result<(Vec<String>, usize)> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let start_line = *line;

    while pos < input.len() {
        let b = input[pos];
        if in_quotes {
            match b {
                b'"' => {
                    if input.get(pos + 1) == Some(&b'"') {
                        field.push('"');
                        pos += 2;
                    } else {
                        in_quotes = false;
                        pos += 1;
                    }
                }
                b'\n' => {
                    field.push('\n');
                    *line += 1;
                    pos += 1;
                }
                _ => {
                    field.push(b as char);
                    pos += 1;
                }
            }
        } else {
            match b {
                b'"' => {
                    if !field.is_empty() {
                        return Err(DataError::Csv {
                            line: *line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                    pos += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    pos += 1;
                }
                b'\r' => {
                    if input.get(pos + 1) == Some(&b'\n') {
                        pos += 1;
                        continue;
                    }
                    pos += 1; // lone \r: ignore
                }
                b'\n' => {
                    *line += 1;
                    fields.push(field);
                    return Ok((fields, pos + 1));
                }
                _ => {
                    field.push(b as char);
                    pos += 1;
                }
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line: start_line,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok((fields, pos))
}

/// Parses CSV text into raw rows of string fields.
///
/// The first record is NOT treated specially; header handling happens in
/// [`read_csv`]. Trailing blank lines are ignored.
pub fn parse_rows(text: &str) -> Result<Vec<Vec<String>>> {
    let bytes = text.as_bytes();
    let mut rows = Vec::new();
    let mut pos = 0;
    let mut line = 1;
    while pos < bytes.len() {
        let (fields, next) = parse_record(bytes, pos, &mut line)?;
        pos = next;
        if fields.len() == 1 && fields[0].is_empty() {
            continue; // blank line
        }
        rows.push(fields);
    }
    Ok(rows)
}

/// Reads a CSV document (with a header row) from any reader and infers a
/// typed [`Table`].
pub fn read_csv_from(reader: impl Read, name: &str, options: &InferOptions) -> Result<Table> {
    let mut text = String::new();
    BufReader::new(reader).read_to_string(&mut text)?;
    read_csv_str(&text, name, options)
}

/// Reads a CSV document (with a header row) from a string.
///
/// # Examples
/// ```
/// use foresight_data::csv::read_csv_str;
/// use foresight_data::infer::InferOptions;
///
/// let t = read_csv_str("x,label\n1.5,a\n2.5,b\n", "demo", &InferOptions::default()).unwrap();
/// assert_eq!(t.n_rows(), 2);
/// assert!(t.numeric_by_name("x").is_ok());
/// assert!(t.categorical_by_name("label").is_ok());
/// ```
pub fn read_csv_str(text: &str, name: &str, options: &InferOptions) -> Result<Table> {
    let mut rows = parse_rows(text)?;
    if rows.is_empty() {
        return Err(DataError::Empty("csv document has no rows"));
    }
    let header = rows.remove(0);
    let width = header.len();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != width {
            return Err(DataError::Csv {
                line: i + 2,
                message: format!("expected {width} fields, found {}", row.len()),
            });
        }
    }
    infer_columns(name, &header, &rows, options)
}

/// Reads a CSV file from disk.
pub fn read_csv(path: impl AsRef<Path>, options: &InferOptions) -> Result<Table> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "table".to_owned());
    let file = std::fs::File::open(path)?;
    read_csv_from(file, &name, options)
}

/// Escapes one field for CSV output.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Writes a table as CSV (header + rows) to any writer.
pub fn write_csv_to(table: &Table, mut writer: impl Write) -> Result<()> {
    let header: Vec<String> = table.schema().names().map(escape).collect();
    writeln!(writer, "{}", header.join(","))?;
    for r in 0..table.n_rows() {
        let row: Vec<String> = table
            .row(r)
            .iter()
            .map(|v| escape(&v.to_string()))
            .collect();
        writeln!(writer, "{}", row.join(","))?;
    }
    Ok(())
}

/// Serializes a table to a CSV string.
pub fn write_csv_string(table: &Table) -> Result<String> {
    let mut buf = Vec::new();
    write_csv_to(table, &mut buf)?;
    Ok(String::from_utf8(buf).expect("csv output is utf-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_parse() {
        let rows = parse_rows("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["a", "b"]);
        assert_eq!(rows[2], vec!["3", "4"]);
    }

    #[test]
    fn quoted_fields() {
        let rows = parse_rows("\"a,b\",\"he said \"\"hi\"\"\"\n\"multi\nline\",x\n").unwrap();
        assert_eq!(rows[0], vec!["a,b", "he said \"hi\""]);
        assert_eq!(rows[1], vec!["multi\nline", "x"]);
    }

    #[test]
    fn crlf_and_trailing_newline() {
        let rows = parse_rows("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
        // no trailing newline
        let rows = parse_rows("a,b\n1,2").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse_rows("\"unterminated"),
            Err(DataError::Csv { .. })
        ));
        assert!(matches!(parse_rows("ab\"cd,e"), Err(DataError::Csv { .. })));
        assert!(matches!(
            read_csv_str("a,b\n1\n", "t", &InferOptions::default()),
            Err(DataError::Csv { .. })
        ));
        assert!(matches!(
            read_csv_str("", "t", &InferOptions::default()),
            Err(DataError::Empty(_))
        ));
    }

    #[test]
    fn typed_read() {
        let t = read_csv_str(
            "x,cat,y\n1,a,10\n2,b,\n3,a,30\n",
            "t",
            &InferOptions::default(),
        )
        .unwrap();
        assert_eq!(t.n_rows(), 3);
        let y = t.numeric_by_name("y").unwrap();
        assert_eq!(y.null_count(), 1);
        assert_eq!(t.categorical_by_name("cat").unwrap().cardinality(), 2);
    }

    #[test]
    fn round_trip() {
        let src = "x,cat\n1,a\n2,\"b,c\"\n";
        let t = read_csv_str(src, "t", &InferOptions::default()).unwrap();
        let out = write_csv_string(&t).unwrap();
        let t2 = read_csv_str(&out, "t", &InferOptions::default()).unwrap();
        assert_eq!(t, t2);
    }
}
