//! Synthetic stand-in for the paper's Parkinson's Progression Markers
//! Initiative (PPMI) dataset: 2 000 patients × 50 clinical descriptors.
//!
//! The real PPMI data is access-controlled, so we generate a clinically
//! shaped substitute (see `DESIGN.md` §3): a latent *disease severity* factor
//! drives correlated MDS-UPDRS part scores, motor sub-scores, and
//! non-motor scales; durations and dose variables are right-skewed; a small
//! set of planted outlier patients exercises the outlier insight.

use super::dist::{self, GaussianMixture};
use crate::column::CategoricalColumn;
use crate::table::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of rows in the canonical table (matches the paper's "2K rows").
pub const ROWS: usize = 2_000;

/// Generates the Parkinson table with `n` patients.
pub fn parkinson_with(seed: u64, n: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);

    // Latent factors per patient.
    let severity: Vec<f64> = (0..n).map(|_| dist::std_normal(&mut rng)).collect();
    let tremor_latent: Vec<f64> = (0..n).map(|_| dist::std_normal(&mut rng)).collect();
    let cognition: Vec<f64> = (0..n).map(|_| dist::std_normal(&mut rng)).collect();

    // Helper: a score loading on severity with residual noise, clamped ≥ 0.
    let loaded = |latent: &[f64], rng: &mut StdRng, base: f64, load: f64, noise: f64, max: f64| {
        latent
            .iter()
            .map(|&z| (base + load * z + noise * dist::std_normal(rng)).clamp(0.0, max))
            .collect::<Vec<f64>>()
    };

    let updrs1 = loaded(&severity, &mut rng, 8.0, 3.5, 1.6, 52.0);
    let updrs2 = loaded(&severity, &mut rng, 10.0, 4.5, 2.0, 52.0);
    let updrs3 = loaded(&severity, &mut rng, 25.0, 9.0, 3.5, 132.0);
    let updrs4 = loaded(&severity, &mut rng, 3.0, 2.0, 1.2, 24.0);
    let rigidity = loaded(&severity, &mut rng, 6.0, 2.5, 1.5, 20.0);
    let bradykinesia = loaded(&severity, &mut rng, 9.0, 3.4, 1.8, 36.0);
    let gait = loaded(&severity, &mut rng, 2.0, 1.2, 0.7, 4.0);
    let tremor_rest = loaded(&tremor_latent, &mut rng, 4.0, 2.2, 1.0, 16.0);
    let tremor_action = loaded(&tremor_latent, &mut rng, 3.0, 1.8, 1.0, 12.0);
    let moca = loaded(&cognition, &mut rng, 26.0, 2.2, 1.0, 30.0);
    let semantic_fluency = loaded(&cognition, &mut rng, 45.0, 9.0, 5.0, 90.0);
    let benton = loaded(&cognition, &mut rng, 12.5, 1.8, 1.1, 15.0);

    // Demographics & history.
    let age: Vec<f64> = (0..n)
        .map(|_| dist::normal(&mut rng, 62.0, 9.5).clamp(30.0, 90.0))
        .collect();
    let disease_duration: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 1.1, 0.7))
        .collect();
    let levodopa_dose: Vec<f64> = (0..n)
        .map(|_| 100.0 + dist::lognormal(&mut rng, 5.6, 0.6))
        .collect();
    let education_years: Vec<f64> = (0..n)
        .map(|_| dist::normal(&mut rng, 15.0, 3.0).clamp(6.0, 24.0))
        .collect();

    // Non-motor scales: sleep is bimodal (treated vs untreated), depression
    // right-skewed; both exercise the multimodality/skew insights.
    let sleep_mix = GaussianMixture {
        p1: 0.45,
        mean1: 4.0,
        sd1: 1.0,
        mean2: 10.0,
        sd2: 1.3,
    };
    let sleep_score: Vec<f64> = (0..n)
        .map(|_| sleep_mix.sample(&mut rng).max(0.0))
        .collect();
    let gds_depression: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 0.8, 0.75).min(15.0))
        .collect();
    let scopa_aut: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 2.2, 0.5).min(69.0))
        .collect();
    let ess_sleepiness: Vec<f64> = (0..n)
        .map(|_| dist::normal(&mut rng, 7.0, 3.4).clamp(0.0, 24.0))
        .collect();

    // Biospecimen measures with heavy tails.
    let csf_alpha_syn: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 7.3, 0.45))
        .collect();
    let csf_abeta: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 6.7, 0.4))
        .collect();
    let csf_tau: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 3.8, 0.5))
        .collect();
    let serum_urate: Vec<f64> = (0..n)
        .map(|_| dist::normal(&mut rng, 5.2, 1.3).max(0.5))
        .collect();
    let datscan_putamen: Vec<f64> = (0..n)
        .map(|i| (2.1 - 0.35 * severity[i] + 0.25 * dist::std_normal(&mut rng)).max(0.1))
        .collect();
    let datscan_caudate: Vec<f64> = (0..n)
        .map(|i| (2.9 - 0.30 * severity[i] + 0.28 * dist::std_normal(&mut rng)).max(0.1))
        .collect();

    // Vitals / misc quantitative descriptors, mostly benign distributions.
    let plain = |rng: &mut StdRng, loc: f64, scale: f64, lo: f64, hi: f64| {
        (0..n)
            .map(|_| dist::normal(rng, loc, scale).clamp(lo, hi))
            .collect::<Vec<f64>>()
    };
    let bmi = plain(&mut rng, 26.5, 4.2, 15.0, 50.0);
    let systolic_bp = plain(&mut rng, 128.0, 14.0, 85.0, 200.0);
    let diastolic_bp = plain(&mut rng, 78.0, 9.0, 50.0, 120.0);
    let heart_rate = plain(&mut rng, 70.0, 10.0, 40.0, 120.0);
    let weight_kg = plain(&mut rng, 78.0, 14.0, 40.0, 150.0);
    let height_cm = plain(&mut rng, 171.0, 9.5, 140.0, 205.0);
    let quip_score = plain(&mut rng, 1.2, 1.1, 0.0, 13.0);
    let stai_anxiety = plain(&mut rng, 35.0, 9.0, 20.0, 80.0);
    let hvlt_recall = plain(&mut rng, 8.5, 2.4, 0.0, 12.0);
    let lns_score = plain(&mut rng, 10.5, 2.6, 0.0, 21.0);
    let sdm_score = plain(&mut rng, 41.0, 9.5, 0.0, 110.0);
    let upsit_smell = plain(&mut rng, 22.0, 8.0, 0.0, 40.0);
    let rbd_score = plain(&mut rng, 4.1, 2.6, 0.0, 13.0);
    let pase_activity = plain(&mut rng, 150.0, 70.0, 0.0, 500.0);
    let tap_speed = plain(&mut rng, 55.0, 9.0, 10.0, 90.0);
    let walk_time = (0..n)
        .map(|i| (7.0 + 1.4 * severity[i] + 0.8 * dist::std_normal(&mut rng)).max(3.0))
        .collect::<Vec<f64>>();
    let pdq39_quality = (0..n)
        .map(|i| (25.0 + 9.0 * severity[i] + 5.0 * dist::std_normal(&mut rng)).clamp(0.0, 100.0))
        .collect::<Vec<f64>>();
    let followup_months = plain(&mut rng, 24.0, 10.0, 0.0, 60.0);

    // Planted extreme outliers in tau (lab errors) — exercises the outlier
    // insight class strongly on this dataset.
    let mut csf_tau = csf_tau;
    let n_outliers = (n / 200).max(3);
    for _ in 0..n_outliers {
        let i = rng.gen_range(0..n);
        csf_tau[i] = 2_000.0 + rng.gen_range(0.0..500.0);
    }

    // Categorical descriptors.
    let sex = CategoricalColumn::from_strings((0..n).map(|_| {
        if rng.gen::<f64>() < 0.62 {
            "Male"
        } else {
            "Female"
        }
    }));
    let cohort = CategoricalColumn::from_strings((0..n).map(|_| {
        let u = rng.gen::<f64>();
        if u < 0.55 {
            "PD"
        } else if u < 0.85 {
            "Healthy Control"
        } else {
            "SWEDD"
        }
    }));
    let site_zipf = dist::Zipf::new(24, 0.8);
    let site = CategoricalColumn::from_strings(
        (0..n).map(|_| format!("Site-{:02}", site_zipf.sample(&mut rng) + 1)),
    );
    let handedness = CategoricalColumn::from_strings((0..n).map(|_| {
        let u = rng.gen::<f64>();
        if u < 0.88 {
            "Right"
        } else if u < 0.97 {
            "Left"
        } else {
            "Mixed"
        }
    }));
    let hoehn_yahr = CategoricalColumn::from_strings((0..n).map(|i| {
        let stage = (1.0 + (severity[i] + 1.5).max(0.0)).min(5.0) as u32;
        format!("Stage {stage}")
    }));
    let medication = CategoricalColumn::from_strings((0..n).map(|_| {
        let u = rng.gen::<f64>();
        if u < 0.4 {
            "Levodopa"
        } else if u < 0.65 {
            "Dopamine Agonist"
        } else if u < 0.8 {
            "MAO-B Inhibitor"
        } else {
            "Untreated"
        }
    }));
    let family_history = CategoricalColumn::from_strings((0..n).map(|_| {
        if rng.gen::<f64>() < 0.15 {
            "Yes"
        } else {
            "No"
        }
    }));
    let race = CategoricalColumn::from_strings((0..n).map(|_| {
        let u = rng.gen::<f64>();
        if u < 0.82 {
            "White"
        } else if u < 0.9 {
            "Black"
        } else if u < 0.96 {
            "Asian"
        } else {
            "Other"
        }
    }));

    TableBuilder::new("parkinson")
        .numeric("Age", age)
        .numeric("Disease Duration Years", disease_duration)
        .numeric("MDS-UPDRS Part I", updrs1)
        .numeric("MDS-UPDRS Part II", updrs2)
        .numeric("MDS-UPDRS Part III", updrs3)
        .numeric("MDS-UPDRS Part IV", updrs4)
        .numeric("Rigidity Score", rigidity)
        .numeric("Bradykinesia Score", bradykinesia)
        .numeric("Gait Score", gait)
        .numeric("Rest Tremor Score", tremor_rest)
        .numeric("Action Tremor Score", tremor_action)
        .numeric("MoCA Score", moca)
        .numeric("Semantic Fluency", semantic_fluency)
        .numeric("Benton Judgment", benton)
        .numeric("Levodopa Equivalent Dose", levodopa_dose)
        .numeric("Education Years", education_years)
        .numeric("Sleep Score", sleep_score)
        .numeric("GDS Depression", gds_depression)
        .numeric("SCOPA-AUT", scopa_aut)
        .numeric("ESS Sleepiness", ess_sleepiness)
        .numeric("CSF Alpha-Synuclein", csf_alpha_syn)
        .numeric("CSF Abeta-42", csf_abeta)
        .numeric("CSF Total Tau", csf_tau)
        .numeric("Serum Urate", serum_urate)
        .numeric("DaTscan Putamen SBR", datscan_putamen)
        .numeric("DaTscan Caudate SBR", datscan_caudate)
        .numeric("BMI", bmi)
        .numeric("Systolic BP", systolic_bp)
        .numeric("Diastolic BP", diastolic_bp)
        .numeric("Heart Rate", heart_rate)
        .numeric("Weight Kg", weight_kg)
        .numeric("Height Cm", height_cm)
        .numeric("QUIP Score", quip_score)
        .numeric("STAI Anxiety", stai_anxiety)
        .numeric("HVLT Recall", hvlt_recall)
        .numeric("LNS Score", lns_score)
        .numeric("Symbol Digit Modalities", sdm_score)
        .numeric("UPSIT Smell Score", upsit_smell)
        .numeric("RBD Screening Score", rbd_score)
        .numeric("PASE Activity", pase_activity)
        .numeric("Finger Tap Speed", tap_speed)
        .numeric("Timed Walk Seconds", walk_time)
        .numeric("PDQ-39 Quality Of Life", pdq39_quality)
        .numeric("Followup Months", followup_months)
        .column("Sex", sex)
        .column("Cohort", cohort)
        .column("Site", site)
        .column("Handedness", handedness)
        .column("Hoehn-Yahr Stage", hoehn_yahr)
        .column("Medication", medication)
        .column("Family History", family_history)
        .column("Race", race)
        .build()
        .expect("static schema is valid")
}

/// The canonical 2 000-patient Parkinson demo table (deterministic).
pub fn parkinson() -> Table {
    parkinson_with(1967, ROWS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = parkinson();
        assert_eq!(t.n_rows(), 2_000);
        assert_eq!(t.n_cols(), 52);
        assert!(t.numeric_indices().len() >= 40);
        assert!(t.categorical_indices().len() >= 8);
    }

    #[test]
    fn updrs_parts_correlate_via_severity() {
        let t = parkinson();
        let a = t.numeric_by_name("MDS-UPDRS Part II").unwrap().values();
        let b = t.numeric_by_name("MDS-UPDRS Part III").unwrap().values();
        let n = a.len() as f64;
        let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
        let (mut sab, mut saa, mut sbb) = (0.0, 0.0, 0.0);
        for (&x, &y) in a.iter().zip(b) {
            sab += (x - ma) * (y - mb);
            saa += (x - ma) * (x - ma);
            sbb += (y - mb) * (y - mb);
        }
        let rho = sab / (saa * sbb).sqrt();
        assert!(rho > 0.6, "updrs2~updrs3 rho = {rho}");
    }

    #[test]
    fn tau_outliers_planted() {
        let t = parkinson();
        let tau = t.numeric_by_name("CSF Total Tau").unwrap().values();
        let extreme = tau.iter().filter(|&&v| v > 1_500.0).count();
        assert!(extreme >= 3, "only {extreme} extreme tau values");
    }

    #[test]
    fn sleep_is_bimodal() {
        let t = parkinson();
        let sleep = t.numeric_by_name("Sleep Score").unwrap().values();
        let low = sleep.iter().filter(|&&v| (3.0..5.0).contains(&v)).count();
        let high = sleep.iter().filter(|&&v| (9.0..11.0).contains(&v)).count();
        let mid = sleep.iter().filter(|&&v| (6.5..7.5).contains(&v)).count();
        assert!(low > mid && high > mid, "low={low} mid={mid} high={high}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(parkinson_with(5, 100), parkinson_with(5, 100));
    }
}
