//! Configurable large-scale synthetic data — the benchmark workload.
//!
//! The paper targets "data items of the order of 100K and attributes that
//! number in the hundreds" (§4.1). [`SynthConfig`] generates tables at that
//! scale with a controllable amount of planted structure so every insight
//! class has non-trivial instances to find, and so sketch-vs-exact
//! experiments have ground truth:
//!
//! * numeric columns are generated in correlated pairs with known ρ drawn
//!   from a configurable range (plus independent columns);
//! * a configurable fraction of columns get skewed / heavy-tailed /
//!   bimodal marginals;
//! * categorical columns are Zipf-distributed with configurable cardinality;
//! * optional missing values and planted outliers.

use super::dist::{self, GaussianMixture, Zipf};
use crate::column::CategoricalColumn;
use crate::table::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`synth`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of rows `n`.
    pub rows: usize,
    /// Number of numeric columns (the paper's set `B`).
    pub numeric_cols: usize,
    /// Number of categorical columns (the paper's set `C`).
    pub categorical_cols: usize,
    /// Fraction of numeric columns generated in correlated pairs (0..=1).
    pub correlated_fraction: f64,
    /// Range of |ρ| for planted pairs.
    pub rho_range: (f64, f64),
    /// Fraction of numeric columns given a right-skew marginal.
    pub skewed_fraction: f64,
    /// Fraction of numeric columns given a heavy-tail marginal.
    pub heavy_fraction: f64,
    /// Fraction of numeric columns given a bimodal marginal.
    pub bimodal_fraction: f64,
    /// Per-cell missing probability for numeric columns.
    pub missing_rate: f64,
    /// Number of extreme outliers planted per flagged column.
    pub outliers_per_col: usize,
    /// Cardinality of each categorical column.
    pub categorical_cardinality: usize,
    /// Zipf exponent for categorical columns.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            rows: 10_000,
            numeric_cols: 50,
            categorical_cols: 5,
            correlated_fraction: 0.4,
            rho_range: (0.3, 0.95),
            skewed_fraction: 0.2,
            heavy_fraction: 0.1,
            bimodal_fraction: 0.1,
            missing_rate: 0.0,
            outliers_per_col: 0,
            categorical_cardinality: 20,
            zipf_exponent: 1.1,
            seed: 7,
        }
    }
}

impl SynthConfig {
    /// A benchmark-scale config: `rows × (numeric_cols + 4 categorical)`.
    pub fn benchmark(rows: usize, numeric_cols: usize, seed: u64) -> Self {
        Self {
            rows,
            numeric_cols,
            categorical_cols: 4,
            seed,
            ..Default::default()
        }
    }
}

/// Ground truth about a generated table, for accuracy experiments.
#[derive(Debug, Clone, Default)]
pub struct SynthGroundTruth {
    /// Planted correlated pairs `(col_i, col_j, ρ)` (latent, pre-marginal).
    pub correlated_pairs: Vec<(usize, usize, f64)>,
    /// Indices of columns with right-skew marginals.
    pub skewed_cols: Vec<usize>,
    /// Indices of columns with heavy-tail marginals.
    pub heavy_cols: Vec<usize>,
    /// Indices of columns with bimodal marginals.
    pub bimodal_cols: Vec<usize>,
    /// Indices of columns with planted extreme outliers.
    pub outlier_cols: Vec<usize>,
}

/// Generates a synthetic table and its ground truth.
pub fn synth(config: &SynthConfig) -> (Table, SynthGroundTruth) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.rows;
    let d = config.numeric_cols;
    let mut truth = SynthGroundTruth::default();
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(d);

    // Correlated pairs first: generate (z, ρz + √(1-ρ²)·ε).
    let n_pairs = ((d as f64 * config.correlated_fraction) as usize) / 2;
    for _ in 0..n_pairs {
        let rho_abs = rng.gen_range(config.rho_range.0..=config.rho_range.1);
        let rho = if rng.gen::<bool>() { rho_abs } else { -rho_abs };
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        let resid = (1.0 - rho * rho).sqrt();
        for i in 0..n {
            let z = dist::std_normal(&mut rng);
            a[i] = z;
            b[i] = rho * z + resid * dist::std_normal(&mut rng);
        }
        truth
            .correlated_pairs
            .push((cols.len(), cols.len() + 1, rho));
        cols.push(a);
        cols.push(b);
    }
    // Independent columns for the remainder.
    while cols.len() < d {
        cols.push((0..n).map(|_| dist::std_normal(&mut rng)).collect());
    }

    // Apply special marginals to disjoint column ranges chosen from the
    // *independent* tail, so planted correlations stay intact.
    let first_free = 2 * n_pairs;
    let mut cursor = first_free;
    let take = |fraction: f64, cursor: &mut usize| -> Vec<usize> {
        let count = (d as f64 * fraction) as usize;
        let end = (*cursor + count).min(d);
        let picked: Vec<usize> = (*cursor..end).collect();
        *cursor = end;
        picked
    };

    truth.skewed_cols = take(config.skewed_fraction, &mut cursor);
    for &c in &truth.skewed_cols {
        for v in &mut cols[c] {
            *v = (0.9 * *v).exp();
        }
    }
    truth.heavy_cols = take(config.heavy_fraction, &mut cursor);
    for &c in &truth.heavy_cols {
        for v in &mut cols[c] {
            *v = 0.35 * (*v / 0.35).sinh();
        }
    }
    truth.bimodal_cols = take(config.bimodal_fraction, &mut cursor);
    let mix = GaussianMixture::bimodal(5.0);
    for &c in &truth.bimodal_cols {
        for v in &mut cols[c] {
            *v = mix.sample(&mut rng);
        }
    }

    // Outliers & missingness.
    if config.outliers_per_col > 0 {
        for (ci, col) in cols.iter_mut().enumerate().take(d) {
            if ci % 5 == 0 {
                truth.outlier_cols.push(ci);
                for _ in 0..config.outliers_per_col {
                    let i = rng.gen_range(0..n);
                    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    col[i] = sign * rng.gen_range(12.0..20.0);
                }
            }
        }
    }
    if config.missing_rate > 0.0 {
        for col in &mut cols {
            for v in col.iter_mut() {
                if rng.gen::<f64>() < config.missing_rate {
                    *v = f64::NAN;
                }
            }
        }
    }

    let mut builder = TableBuilder::new("synth");
    for (i, col) in cols.into_iter().enumerate() {
        builder = builder.numeric(format!("num_{i:03}"), col);
    }
    for c in 0..config.categorical_cols {
        let z = Zipf::new(config.categorical_cardinality.max(1), config.zipf_exponent);
        let col =
            CategoricalColumn::from_strings((0..n).map(|_| format!("v{}", z.sample(&mut rng))));
        builder = builder.column(format!("cat_{c:02}"), col);
    }
    (builder.build().expect("generated schema is valid"), truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for (&a, &b) in x.iter().zip(y) {
            sxy += (a - mx) * (b - my);
            sxx += (a - mx) * (a - mx);
            syy += (b - my) * (b - my);
        }
        sxy / (sxx * syy).sqrt()
    }

    #[test]
    fn dimensions() {
        let cfg = SynthConfig {
            rows: 500,
            numeric_cols: 20,
            categorical_cols: 3,
            ..Default::default()
        };
        let (t, _) = synth(&cfg);
        assert_eq!(t.n_rows(), 500);
        assert_eq!(t.n_cols(), 23);
        assert_eq!(t.numeric_indices().len(), 20);
    }

    #[test]
    fn planted_correlations_recoverable() {
        let cfg = SynthConfig {
            rows: 5_000,
            numeric_cols: 10,
            correlated_fraction: 0.6,
            ..Default::default()
        };
        let (t, truth) = synth(&cfg);
        assert!(!truth.correlated_pairs.is_empty());
        for &(i, j, rho) in &truth.correlated_pairs {
            let a = t.numeric(i).unwrap().values();
            let b = t.numeric(j).unwrap().values();
            assert!(
                (pearson(a, b) - rho).abs() < 0.06,
                "pair ({i},{j}): wanted {rho}, got {}",
                pearson(a, b)
            );
        }
    }

    #[test]
    fn special_marginals_disjoint_from_pairs() {
        let cfg = SynthConfig {
            rows: 200,
            numeric_cols: 30,
            ..Default::default()
        };
        let (_, truth) = synth(&cfg);
        let paired: Vec<usize> = truth
            .correlated_pairs
            .iter()
            .flat_map(|&(i, j, _)| [i, j])
            .collect();
        for &c in truth
            .skewed_cols
            .iter()
            .chain(&truth.heavy_cols)
            .chain(&truth.bimodal_cols)
        {
            assert!(!paired.contains(&c));
        }
    }

    #[test]
    fn missing_and_outliers() {
        let cfg = SynthConfig {
            rows: 2_000,
            numeric_cols: 10,
            missing_rate: 0.05,
            outliers_per_col: 5,
            correlated_fraction: 0.0,
            skewed_fraction: 0.0,
            heavy_fraction: 0.0,
            bimodal_fraction: 0.0,
            ..Default::default()
        };
        let (t, truth) = synth(&cfg);
        assert!(!truth.outlier_cols.is_empty());
        let c0 = t.numeric(0).unwrap();
        assert!(c0.null_count() > 30, "missing = {}", c0.null_count());
        let max = c0.present().fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(max > 10.0, "no outlier planted? max |v| = {max}");
    }

    #[test]
    fn deterministic() {
        let cfg = SynthConfig::benchmark(300, 10, 11);
        assert_eq!(synth(&cfg).0, synth(&cfg).0);
    }
}
