//! Gaussian-copula machinery for planting correlation structure.
//!
//! Generators describe a block-diagonal latent correlation matrix; we sample
//! multivariate normal rows via a Cholesky factor and then push each latent
//! column through a monotone marginal transform. Monotone transforms preserve
//! rank (Spearman) correlation exactly and Pearson correlation approximately,
//! which is all the planted "insights" need.

use super::dist::std_normal;
use rand::Rng;

/// A dense, symmetric correlation matrix under construction.
#[derive(Debug, Clone)]
pub struct CorrelationMatrix {
    d: usize,
    data: Vec<f64>,
}

impl CorrelationMatrix {
    /// The identity correlation (all variables independent).
    pub fn identity(d: usize) -> Self {
        let mut data = vec![0.0; d * d];
        for i in 0..d {
            data[i * d + i] = 1.0;
        }
        Self { d, data }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.d + j]
    }

    /// Sets `ρ(i, j) = ρ(j, i) = rho`.
    pub fn set(&mut self, i: usize, j: usize, rho: f64) {
        assert!(i != j, "diagonal is fixed at 1");
        assert!((-1.0..=1.0).contains(&rho), "correlation out of range");
        self.data[i * self.d + j] = rho;
        self.data[j * self.d + i] = rho;
    }

    /// Cholesky factorization `R = L·Lᵀ`. Returns `None` when the matrix is
    /// not positive definite (i.e. the requested correlations are mutually
    /// inconsistent).
    pub fn cholesky(&self) -> Option<Cholesky> {
        let d = self.d;
        let mut l = vec![0.0; d * d];
        for i in 0..d {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l[i * d + k] * l[j * d + k];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return None;
                    }
                    l[i * d + i] = sum.sqrt();
                } else {
                    l[i * d + j] = sum / l[j * d + j];
                }
            }
        }
        Some(Cholesky { d, l })
    }
}

/// A lower-triangular Cholesky factor of a correlation matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    d: usize,
    l: Vec<f64>,
}

impl Cholesky {
    /// Samples one latent row `z ~ N(0, R)` into `out` (length `d`),
    /// consuming `d` independent standard normals from `rng`.
    pub fn sample_row(&self, rng: &mut impl Rng, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.d);
        let mut eps = vec![0.0; self.d];
        for e in &mut eps {
            *e = std_normal(rng);
        }
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.l[i * self.d..i * self.d + i + 1];
            *o = row.iter().zip(&eps).map(|(l, e)| l * e).sum();
        }
    }

    /// Samples `n` latent rows, returned column-major (`d` columns of
    /// length `n`) ready to become table columns.
    pub fn sample_columns(&self, rng: &mut impl Rng, n: usize) -> Vec<Vec<f64>> {
        let mut cols = vec![vec![0.0; n]; self.d];
        let mut row = vec![0.0; self.d];
        for r in 0..n {
            self.sample_row(rng, &mut row);
            for (c, col) in cols.iter_mut().enumerate() {
                col[r] = row[c];
            }
        }
        cols
    }
}

/// Monotone marginal transforms applied to a latent standard-normal column.
#[derive(Debug, Clone, Copy)]
pub enum Marginal {
    /// `loc + scale·z` — stays exactly normal.
    Normal {
        /// Location.
        loc: f64,
        /// Scale (> 0).
        scale: f64,
    },
    /// `loc + scale·exp(shape·z)` — right-skewed (lognormal shape).
    RightSkew {
        /// Location.
        loc: f64,
        /// Scale (> 0).
        scale: f64,
        /// Skew intensity (> 0); larger = more skew.
        shape: f64,
    },
    /// `loc − scale·exp(−shape·z)` — left-skewed (mirror lognormal).
    LeftSkew {
        /// Location (upper anchor).
        loc: f64,
        /// Scale (> 0).
        scale: f64,
        /// Skew intensity (> 0).
        shape: f64,
    },
    /// `loc + scale·sinh(z/shape)·shape` — symmetric heavy tails
    /// (inverse of an asinh compression; shape < 1 fattens tails).
    HeavyTail {
        /// Location.
        loc: f64,
        /// Scale (> 0).
        scale: f64,
        /// Tail parameter in (0, 1]; smaller = heavier.
        shape: f64,
    },
    /// Clamp of a normal into `[lo, hi]` (min/max saturation) — e.g.
    /// percentage indicators.
    Bounded {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Location.
        loc: f64,
        /// Scale.
        scale: f64,
    },
}

impl Marginal {
    /// Applies the transform to one latent value.
    pub fn apply(&self, z: f64) -> f64 {
        match *self {
            Marginal::Normal { loc, scale } => loc + scale * z,
            Marginal::RightSkew { loc, scale, shape } => loc + scale * (shape * z).exp(),
            Marginal::LeftSkew { loc, scale, shape } => loc - scale * (-shape * z).exp(),
            Marginal::HeavyTail { loc, scale, shape } => loc + scale * shape * (z / shape).sinh(),
            Marginal::Bounded { lo, hi, loc, scale } => (loc + scale * z).clamp(lo, hi),
        }
    }

    /// Applies the transform to a whole latent column in place.
    pub fn apply_column(&self, col: &mut [f64]) {
        for v in col {
            *v = self.apply(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (&a, &b) in x.iter().zip(y) {
            sxy += (a - mx) * (b - my);
            sxx += (a - mx) * (a - mx);
            syy += (b - my) * (b - my);
        }
        sxy / (sxx * syy).sqrt()
    }

    #[test]
    fn planted_correlation_is_recovered() {
        let mut r = CorrelationMatrix::identity(4);
        r.set(0, 1, -0.9);
        r.set(2, 3, 0.7);
        let chol = r.cholesky().expect("pd");
        let mut rng = StdRng::seed_from_u64(7);
        let cols = chol.sample_columns(&mut rng, 20_000);
        assert!((pearson(&cols[0], &cols[1]) + 0.9).abs() < 0.02);
        assert!((pearson(&cols[2], &cols[3]) - 0.7).abs() < 0.02);
        assert!(pearson(&cols[0], &cols[2]).abs() < 0.03);
    }

    #[test]
    fn non_pd_matrix_rejected() {
        // rho(0,1)=rho(1,2)=0.9 with rho(0,2)=-0.9 is infeasible.
        let mut r = CorrelationMatrix::identity(3);
        r.set(0, 1, 0.9);
        r.set(1, 2, 0.9);
        r.set(0, 2, -0.9);
        assert!(r.cholesky().is_none());
    }

    #[test]
    fn marginals_shape_the_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let z: Vec<f64> = (0..30_000)
            .map(|_| super::super::dist::std_normal(&mut rng))
            .collect();
        let skewness = |xs: &[f64]| {
            let n = xs.len() as f64;
            let m = xs.iter().sum::<f64>() / n;
            let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
            xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n / v.powf(1.5)
        };

        let mut right = z.clone();
        Marginal::RightSkew {
            loc: 0.0,
            scale: 1.0,
            shape: 0.8,
        }
        .apply_column(&mut right);
        assert!(skewness(&right) > 1.0);

        let mut left = z.clone();
        Marginal::LeftSkew {
            loc: 100.0,
            scale: 10.0,
            shape: 0.6,
        }
        .apply_column(&mut left);
        assert!(skewness(&left) < -1.0);
        assert!(left.iter().all(|&x| x < 100.0));

        let mut norm = z.clone();
        Marginal::Normal {
            loc: 5.0,
            scale: 2.0,
        }
        .apply_column(&mut norm);
        assert!(skewness(&norm).abs() < 0.1);

        let mut bounded = z;
        Marginal::Bounded {
            lo: 0.0,
            hi: 100.0,
            loc: 50.0,
            scale: 40.0,
        }
        .apply_column(&mut bounded);
        assert!(bounded.iter().all(|&x| (0.0..=100.0).contains(&x)));
    }

    #[test]
    fn heavy_tail_marginal_has_excess_kurtosis() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut z: Vec<f64> = (0..30_000)
            .map(|_| super::super::dist::std_normal(&mut rng))
            .collect();
        Marginal::HeavyTail {
            loc: 0.0,
            scale: 1.0,
            shape: 0.4,
        }
        .apply_column(&mut z);
        let n = z.len() as f64;
        let m = z.iter().sum::<f64>() / n;
        let v = z.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        let kurt = z.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n / (v * v);
        assert!(kurt > 5.0, "kurtosis {kurt}");
    }
}
