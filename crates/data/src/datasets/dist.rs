//! Random distributions used by the synthetic dataset generators.
//!
//! Implemented from scratch on top of [`rand::Rng`] so that the data crate
//! has no dependency on external distribution crates. All samplers are
//! deterministic given a seeded RNG.

use rand::Rng;

/// Samples a standard normal variate via the Marsaglia polar method.
pub fn std_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u = rng.gen_range(-1.0f64..1.0);
        let v = rng.gen_range(-1.0f64..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `N(mean, sd²)`.
pub fn normal(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    mean + sd * std_normal(rng)
}

/// Samples an exponential variate with rate `lambda` (mean `1/lambda`).
pub fn exponential(rng: &mut impl Rng, lambda: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / lambda
}

/// Samples a lognormal variate: `exp(N(mu, sigma²))`.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples a Pareto variate with scale `x_min > 0` and shape `alpha > 0`.
///
/// Heavy-tailed: the k-th moment exists only when `alpha > k`.
pub fn pareto(rng: &mut impl Rng, x_min: f64, alpha: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// Samples a Student-t variate with `nu` degrees of freedom (Bailey's polar
/// method). Heavy tails for small `nu`; kurtosis exists when `nu > 4`.
pub fn student_t(rng: &mut impl Rng, nu: f64) -> f64 {
    loop {
        let u = rng.gen_range(-1.0f64..1.0);
        let v = rng.gen_range(-1.0f64..1.0);
        let w = u * u + v * v;
        if w > 0.0 && w < 1.0 {
            let c2 = u * u / w;
            let r2 = nu * (w.powf(-2.0 / nu) - 1.0);
            let t = (r2 * c2).sqrt();
            return if rng.gen::<bool>() { t } else { -t };
        }
    }
}

/// A two-component Gaussian mixture: with probability `p1` draw from
/// `N(mean1, sd1²)`, otherwise from `N(mean2, sd2²)`. Used to plant
/// multimodality.
#[derive(Debug, Clone, Copy)]
pub struct GaussianMixture {
    /// Probability of the first component.
    pub p1: f64,
    /// First component mean.
    pub mean1: f64,
    /// First component standard deviation.
    pub sd1: f64,
    /// Second component mean.
    pub mean2: f64,
    /// Second component standard deviation.
    pub sd2: f64,
}

impl GaussianMixture {
    /// A symmetric, well-separated bimodal mixture.
    pub fn bimodal(separation: f64) -> Self {
        Self {
            p1: 0.5,
            mean1: -separation / 2.0,
            sd1: 1.0,
            mean2: separation / 2.0,
            sd2: 1.0,
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if rng.gen::<f64>() < self.p1 {
            normal(rng, self.mean1, self.sd1)
        } else {
            normal(rng, self.mean2, self.sd2)
        }
    }
}

/// A Zipf sampler over `{0, 1, …, n-1}` with exponent `s`, built from the
/// inverse of the precomputed CDF. Rank 0 is the most frequent element.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n` must be ≥ 1.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of distinct values.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..n` (0 = most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// The standard normal quantile function (inverse CDF), via the
/// Acklam/Beasley-Springer-Moro rational approximation (|ε| < 1.15e-9).
///
/// Used both by generators (exact plotting positions) and by tests.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 style approximation, |ε| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.231_641_9 * x.abs());
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    let tail = (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn mean_sd(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        (m, v.sqrt())
    }

    #[test]
    fn std_normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| std_normal(&mut r)).collect();
        let (m, sd) = mean_sd(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((sd - 1.0).abs() < 0.02, "sd {sd}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| exponential(&mut r, 2.0)).collect();
        let (m, _) = mean_sd(&xs);
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_is_heavy_tailed_and_positive() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| pareto(&mut r, 1.0, 2.0)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        // mean of Pareto(1, 2) is alpha/(alpha-1) = 2
        let (m, _) = mean_sd(&xs);
        assert!((m - 2.0).abs() < 0.2, "mean {m}");
    }

    #[test]
    fn student_t_symmetric() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| student_t(&mut r, 5.0)).collect();
        let (m, sd) = mean_sd(&xs);
        assert!(m.abs() < 0.05, "mean {m}");
        // var of t(5) = 5/3
        assert!((sd * sd - 5.0 / 3.0).abs() < 0.2, "var {}", sd * sd);
    }

    #[test]
    fn zipf_rank_ordering() {
        let mut r = rng();
        let z = Zipf::new(10, 1.2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[3]);
        assert!(counts[1] > counts[7]);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn mixture_is_bimodal() {
        let mut r = rng();
        let m = GaussianMixture::bimodal(6.0);
        let xs: Vec<f64> = (0..20_000).map(|_| m.sample(&mut r)).collect();
        let near_left = xs.iter().filter(|&&x| (x + 3.0).abs() < 1.0).count();
        let near_right = xs.iter().filter(|&&x| (x - 3.0).abs() < 1.0).count();
        let near_zero = xs.iter().filter(|&&x| x.abs() < 1.0).count();
        assert!(near_left > near_zero * 3);
        assert!(near_right > near_zero * 3);
    }

    #[test]
    fn quantile_and_cdf_inverse() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            let back = normal_cdf(x);
            assert!((back - p).abs() < 1e-5, "p={p} x={x} back={back}");
        }
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
    }
}
