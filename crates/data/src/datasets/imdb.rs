//! Synthetic stand-in for the paper's IMDB movie dataset
//! (5 000 movies × 28 features).
//!
//! The demo's motivating questions — *what correlates with profitability?*
//! *how are critical response and commercial success interrelated?* — are
//! planted as distributional facts: gross loads on budget, score, and
//! audience-engagement latents; budgets and grosses are heavy-tailed;
//! director/actor name columns follow Zipf popularity.

use super::dist::{self, Zipf};
use crate::column::CategoricalColumn;
use crate::table::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of rows in the canonical table (matches the paper's "5000 movies").
pub const ROWS: usize = 5_000;

const GENRES: [&str; 12] = [
    "Drama",
    "Comedy",
    "Action",
    "Thriller",
    "Adventure",
    "Romance",
    "Crime",
    "Horror",
    "Sci-Fi",
    "Fantasy",
    "Animation",
    "Documentary",
];
const RATINGS: [&str; 5] = ["R", "PG-13", "PG", "G", "Not Rated"];
const COUNTRIES: [&str; 10] = [
    "USA",
    "UK",
    "France",
    "Germany",
    "Canada",
    "India",
    "Australia",
    "Japan",
    "Spain",
    "Italy",
];
const LANGUAGES: [&str; 8] = [
    "English", "French", "Spanish", "Hindi", "Mandarin", "German", "Japanese", "Italian",
];

/// Generates the IMDB table with `n` movies.
pub fn imdb_with(seed: u64, n: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);

    // Latent quality and hype factors per movie.
    let quality: Vec<f64> = (0..n).map(|_| dist::std_normal(&mut rng)).collect();
    let hype: Vec<f64> = (0..n).map(|_| dist::std_normal(&mut rng)).collect();

    // Budget: heavy-tailed lognormal, in dollars.
    let budget: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 16.6, 1.1).min(4.0e8))
        .collect();

    // IMDB score: quality + a little hype, clamped to [1, 10].
    let imdb_score: Vec<f64> = (0..n)
        .map(|i| {
            (6.4 + 1.0 * quality[i] + 0.15 * hype[i] + 0.3 * dist::std_normal(&mut rng))
                .clamp(1.0, 10.0)
        })
        .collect();

    // Gross: multiplicative in budget, quality and hype — the planted
    // profitability structure. log(gross) = a·log(budget) + b·quality + ...
    let gross: Vec<f64> = (0..n)
        .map(|i| {
            let log_gross = 0.85 * budget[i].ln()
                + 0.55 * quality[i]
                + 0.75 * hype[i]
                + 2.3
                + 0.5 * dist::std_normal(&mut rng);
            log_gross.exp().min(3.0e9)
        })
        .collect();
    let profit: Vec<f64> = gross.iter().zip(&budget).map(|(g, b)| g - b).collect();

    // Engagement counts: heavy-tailed, loading on hype and quality.
    let num_voted: Vec<f64> = (0..n)
        .map(|i| (9.5 + 1.1 * hype[i] + 0.6 * quality[i] + 0.8 * dist::std_normal(&mut rng)).exp())
        .collect();
    let num_reviews: Vec<f64> = num_voted
        .iter()
        .map(|&v| (v / 40.0 * dist::lognormal(&mut rng, 0.0, 0.4)).max(1.0))
        .collect();
    let num_critics: Vec<f64> = (0..n)
        .map(|i| {
            (4.5 + 0.7 * hype[i] + 0.5 * dist::std_normal(&mut rng))
                .exp()
                .min(900.0)
        })
        .collect();
    let movie_fb_likes: Vec<f64> = (0..n)
        .map(|i| (7.0 + 1.2 * hype[i] + 0.9 * dist::std_normal(&mut rng)).exp())
        .collect();
    let cast_fb_likes: Vec<f64> = (0..n)
        .map(|i| (8.0 + 0.8 * hype[i] + 0.9 * dist::std_normal(&mut rng)).exp())
        .collect();
    let director_fb_likes: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 5.5, 1.6))
        .collect();
    let actor1_fb_likes: Vec<f64> = (0..n)
        .map(|i| (7.2 + 0.6 * hype[i] + 1.0 * dist::std_normal(&mut rng)).exp())
        .collect();
    let actor2_fb_likes: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 6.2, 1.3))
        .collect();
    let actor3_fb_likes: Vec<f64> = (0..n)
        .map(|_| dist::lognormal(&mut rng, 5.4, 1.3))
        .collect();

    // Misc numeric features.
    let title_year: Vec<f64> = (0..n)
        .map(|_| {
            (2016.0 - dist::exponential(&mut rng, 0.09))
                .clamp(1920.0, 2016.0)
                .round()
        })
        .collect();
    let duration: Vec<f64> = (0..n)
        .map(|_| {
            dist::normal(&mut rng, 108.0, 20.0)
                .clamp(45.0, 330.0)
                .round()
        })
        .collect();
    let aspect_ratio: Vec<f64> = (0..n)
        .map(|_| if rng.gen::<f64>() < 0.7 { 2.35 } else { 1.85 })
        .collect();
    let face_number: Vec<f64> = (0..n)
        .map(|_| dist::exponential(&mut rng, 0.6).floor().min(40.0))
        .collect();

    // Categorical features.
    let director_zipf = Zipf::new(1_800, 1.05);
    let director = CategoricalColumn::from_strings(
        (0..n).map(|_| format!("Director {:04}", director_zipf.sample(&mut rng))),
    );
    let actor_zipf = Zipf::new(2_500, 1.0);
    let actor1 = CategoricalColumn::from_strings(
        (0..n).map(|_| format!("Actor {:04}", actor_zipf.sample(&mut rng))),
    );
    let actor2 = CategoricalColumn::from_strings(
        (0..n).map(|_| format!("Actor {:04}", actor_zipf.sample(&mut rng))),
    );
    let actor3 = CategoricalColumn::from_strings(
        (0..n).map(|_| format!("Actor {:04}", actor_zipf.sample(&mut rng))),
    );
    let genre_zipf = Zipf::new(GENRES.len(), 0.9);
    let genre =
        CategoricalColumn::from_strings((0..n).map(|_| GENRES[genre_zipf.sample(&mut rng)]));
    let rating_zipf = Zipf::new(RATINGS.len(), 0.7);
    let content_rating =
        CategoricalColumn::from_strings((0..n).map(|_| RATINGS[rating_zipf.sample(&mut rng)]));
    let country_zipf = Zipf::new(COUNTRIES.len(), 1.4);
    let country =
        CategoricalColumn::from_strings((0..n).map(|_| COUNTRIES[country_zipf.sample(&mut rng)]));
    let language_zipf = Zipf::new(LANGUAGES.len(), 1.8);
    let language =
        CategoricalColumn::from_strings((0..n).map(|_| LANGUAGES[language_zipf.sample(&mut rng)]));
    let color = CategoricalColumn::from_strings((0..n).map(|_| {
        if rng.gen::<f64>() < 0.93 {
            "Color"
        } else {
            "Black and White"
        }
    }));
    let title = CategoricalColumn::from_strings((0..n).map(|i| format!("Movie #{i:04}")));

    let followup_gross_ratio: Vec<f64> = {
        let mut rng2 = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
        gross
            .iter()
            .map(|&g| g.ln() / 20.0 + 0.05 * dist::std_normal(&mut rng2))
            .collect()
    };

    TableBuilder::new("imdb")
        .column("Movie Title", title)
        .column("Director Name", director)
        .column("Actor 1 Name", actor1)
        .column("Actor 2 Name", actor2)
        .column("Actor 3 Name", actor3)
        .column("Genre", genre)
        .column("Content Rating", content_rating)
        .column("Country", country)
        .column("Language", language)
        .column("Color", color)
        .numeric("Budget", budget)
        .semantic("currency")
        .numeric("Gross", gross)
        .semantic("currency")
        .numeric("Profit", profit)
        .semantic("currency")
        .numeric("IMDB Score", imdb_score)
        .numeric("Num Voted Users", num_voted)
        .numeric("Num User Reviews", num_reviews)
        .numeric("Num Critic Reviews", num_critics)
        .numeric("Movie Facebook Likes", movie_fb_likes)
        .numeric("Cast Total Facebook Likes", cast_fb_likes)
        .numeric("Director Facebook Likes", director_fb_likes)
        .numeric("Actor 1 Facebook Likes", actor1_fb_likes)
        .numeric("Actor 2 Facebook Likes", actor2_fb_likes)
        .numeric("Actor 3 Facebook Likes", actor3_fb_likes)
        .numeric("Title Year", title_year)
        .semantic("year")
        .numeric("Duration", duration)
        .numeric("Aspect Ratio", aspect_ratio)
        .numeric("Facenumber In Poster", face_number)
        .numeric("Followup Gross Ratio", followup_gross_ratio)
        .build()
        .expect("static schema is valid")
}

/// The canonical 5 000-movie IMDB demo table (deterministic).
pub fn imdb() -> Table {
    imdb_with(5000, ROWS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for (&a, &b) in x.iter().zip(y) {
            sxy += (a - mx) * (b - my);
            sxx += (a - mx) * (a - mx);
            syy += (b - my) * (b - my);
        }
        sxy / (sxx * syy).sqrt()
    }

    #[test]
    fn shape_matches_paper() {
        let t = imdb();
        assert_eq!(t.n_rows(), 5_000);
        assert_eq!(t.n_cols(), 28);
    }

    #[test]
    fn budget_is_heavy_tailed() {
        let t = imdb();
        let b = t.numeric_by_name("Budget").unwrap().values();
        let n = b.len() as f64;
        let m = b.iter().sum::<f64>() / n;
        let v = b.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        let skew = b.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n / v.powf(1.5);
        assert!(skew > 2.0, "budget skew {skew}");
    }

    #[test]
    fn profitability_correlates_with_engagement() {
        let t = imdb();
        // log-gross vs log-votes is a strong planted relationship
        let g: Vec<f64> = t
            .numeric_by_name("Gross")
            .unwrap()
            .values()
            .iter()
            .map(|v| v.ln())
            .collect();
        let v: Vec<f64> = t
            .numeric_by_name("Num Voted Users")
            .unwrap()
            .values()
            .iter()
            .map(|v| v.ln())
            .collect();
        assert!(pearson(&g, &v) > 0.35, "rho = {}", pearson(&g, &v));
        let s = t.numeric_by_name("IMDB Score").unwrap().values();
        assert!(pearson(s, &v) > 0.25);
    }

    #[test]
    fn director_popularity_is_zipfian() {
        let t = imdb();
        let d = t.categorical_by_name("Director Name").unwrap();
        let mut counts = vec![0usize; d.cardinality()];
        for c in d.present_codes() {
            counts[c as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // top director directs far more movies than the median one
        assert!(counts[0] >= 10 * counts[counts.len() / 2].max(1));
    }

    #[test]
    fn currency_columns_tagged() {
        let t = imdb_with(1, 50);
        assert_eq!(t.schema().indices_with_semantic("currency").len(), 3);
        assert_eq!(t.semantic(t.index_of("Budget").unwrap()), Some("currency"));
        assert_eq!(t.semantic(t.index_of("Title Year").unwrap()), Some("year"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(imdb_with(9, 200), imdb_with(9, 200));
    }
}
