//! Synthetic stand-in for the paper's OECD Better-Life dataset
//! (35 countries × 25 indicators).
//!
//! The paper's §4.1 scenario depends on specific distributional facts, all of
//! which are planted here (see `DESIGN.md` §3):
//!
//! * `Employees Working Very Long Hours` ↔ `Time Devoted To Leisure` is the
//!   strongest (negative) correlation in the dataset;
//! * `Time Devoted To Leisure` is uncorrelated with `Self Reported Health`;
//! * `Time Devoted To Leisure` is normally distributed;
//! * `Self Reported Health` is left-skewed;
//! * `Life Satisfaction` ↔ `Self Reported Health` is highly correlated.
//!
//! The indicator roster matches the 24 abbreviations in the paper's Figure 2
//! plus the country name column.

use super::copula::{CorrelationMatrix, Marginal};
use crate::column::CategoricalColumn;
use crate::table::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The 24 numeric OECD indicators, in Figure-2 order, with the marginal
/// transform each one receives.
const INDICATORS: [(&str, Marginal); 24] = [
    (
        "Consultation On Rule-Making",
        Marginal::Bounded {
            lo: 0.0,
            hi: 10.0,
            loc: 6.5,
            scale: 2.0,
        },
    ),
    (
        "Educational Attainment",
        Marginal::Bounded {
            lo: 0.0,
            hi: 100.0,
            loc: 76.0,
            scale: 12.0,
        },
    ),
    (
        "Student Skills",
        Marginal::Normal {
            loc: 490.0,
            scale: 28.0,
        },
    ),
    (
        "Quality Of Support Network",
        Marginal::LeftSkew {
            loc: 98.0,
            scale: 6.0,
            shape: 0.5,
        },
    ),
    (
        "Self Reported Health",
        Marginal::LeftSkew {
            loc: 92.0,
            scale: 14.0,
            shape: 0.55,
        },
    ),
    (
        "Life Satisfaction",
        Marginal::Normal {
            loc: 6.5,
            scale: 0.8,
        },
    ),
    (
        "Employment Rate",
        Marginal::Bounded {
            lo: 0.0,
            hi: 100.0,
            loc: 66.0,
            scale: 8.0,
        },
    ),
    (
        "Water Quality",
        Marginal::LeftSkew {
            loc: 97.0,
            scale: 8.0,
            shape: 0.5,
        },
    ),
    (
        "Life Expectancy",
        Marginal::Normal {
            loc: 80.0,
            scale: 2.4,
        },
    ),
    (
        "Household Net Financial Wealth",
        Marginal::RightSkew {
            loc: 5_000.0,
            scale: 30_000.0,
            shape: 0.7,
        },
    ),
    (
        "Rooms Per Person",
        Marginal::Normal {
            loc: 1.7,
            scale: 0.4,
        },
    ),
    (
        "Household Net Adjusted Disposable Income",
        Marginal::RightSkew {
            loc: 12_000.0,
            scale: 14_000.0,
            shape: 0.45,
        },
    ),
    (
        "Personal Earnings",
        Marginal::RightSkew {
            loc: 18_000.0,
            scale: 18_000.0,
            shape: 0.4,
        },
    ),
    (
        "Voter Turnout",
        Marginal::Bounded {
            lo: 0.0,
            hi: 100.0,
            loc: 69.0,
            scale: 12.0,
        },
    ),
    (
        "Years In Education",
        Marginal::Normal {
            loc: 17.5,
            scale: 1.5,
        },
    ),
    (
        "Time Devoted To Leisure",
        Marginal::Normal {
            loc: 14.9,
            scale: 0.55,
        },
    ),
    (
        "Housing Expenditure",
        Marginal::Normal {
            loc: 21.0,
            scale: 2.5,
        },
    ),
    (
        "Job Security",
        Marginal::RightSkew {
            loc: 2.0,
            scale: 3.5,
            shape: 0.5,
        },
    ),
    (
        "Long-Term Unemployment Rate",
        Marginal::RightSkew {
            loc: 0.2,
            scale: 2.2,
            shape: 0.8,
        },
    ),
    (
        "Assault Rate",
        Marginal::RightSkew {
            loc: 1.0,
            scale: 2.5,
            shape: 0.55,
        },
    ),
    (
        "Homicide Rate",
        Marginal::RightSkew {
            loc: 0.1,
            scale: 1.1,
            shape: 0.9,
        },
    ),
    (
        "Dwellings Without Basic Facilities",
        Marginal::RightSkew {
            loc: 0.0,
            scale: 2.0,
            shape: 0.9,
        },
    ),
    (
        "Air Pollution",
        Marginal::RightSkew {
            loc: 4.0,
            scale: 9.0,
            shape: 0.45,
        },
    ),
    (
        "Employees Working Very Long Hours",
        Marginal::RightSkew {
            loc: 1.0,
            scale: 7.0,
            shape: 0.5,
        },
    ),
];

/// The 35 OECD member countries (2017 roster).
pub const COUNTRIES: [&str; 35] = [
    "Australia",
    "Austria",
    "Belgium",
    "Canada",
    "Chile",
    "Czech Republic",
    "Denmark",
    "Estonia",
    "Finland",
    "France",
    "Germany",
    "Greece",
    "Hungary",
    "Iceland",
    "Ireland",
    "Israel",
    "Italy",
    "Japan",
    "Korea",
    "Latvia",
    "Luxembourg",
    "Mexico",
    "Netherlands",
    "New Zealand",
    "Norway",
    "Poland",
    "Portugal",
    "Slovak Republic",
    "Slovenia",
    "Spain",
    "Sweden",
    "Switzerland",
    "Turkey",
    "United Kingdom",
    "United States",
];

fn index_of(name: &str) -> usize {
    INDICATORS
        .iter()
        .position(|(n, _)| *n == name)
        .expect("known indicator")
}

/// Builds the latent correlation structure. Blocks are disjoint so the
/// matrix is positive definite by construction, and `Self Reported Health`
/// and `Time Devoted To Leisure` fall in different blocks, making them
/// independent — the scenario's "surprising" discovery.
fn correlation() -> CorrelationMatrix {
    let mut r = CorrelationMatrix::identity(INDICATORS.len());
    let s = |a: &str, b: &str, rho: f64, r: &mut CorrelationMatrix| {
        r.set(index_of(a), index_of(b), rho);
    };
    // Block 1: the headline negative correlation.
    s(
        "Employees Working Very Long Hours",
        "Time Devoted To Leisure",
        -0.93,
        &mut r,
    );
    // Block 2: health & satisfaction cluster.
    s("Life Satisfaction", "Self Reported Health", 0.86, &mut r);
    s("Life Satisfaction", "Life Expectancy", 0.55, &mut r);
    s("Self Reported Health", "Life Expectancy", 0.50, &mut r);
    // Block 3: income cluster.
    s(
        "Household Net Adjusted Disposable Income",
        "Personal Earnings",
        0.88,
        &mut r,
    );
    s(
        "Household Net Adjusted Disposable Income",
        "Household Net Financial Wealth",
        0.72,
        &mut r,
    );
    s(
        "Personal Earnings",
        "Household Net Financial Wealth",
        0.70,
        &mut r,
    );
    // Block 4: education cluster.
    s("Educational Attainment", "Student Skills", 0.68, &mut r);
    s("Educational Attainment", "Years In Education", 0.45, &mut r);
    s("Student Skills", "Years In Education", 0.40, &mut r);
    // Block 5: labor market.
    s(
        "Long-Term Unemployment Rate",
        "Employment Rate",
        -0.74,
        &mut r,
    );
    s("Long-Term Unemployment Rate", "Job Security", 0.66, &mut r);
    s("Employment Rate", "Job Security", -0.52, &mut r);
    // Block 6: safety.
    s("Homicide Rate", "Assault Rate", 0.60, &mut r);
    // Block 7: environment.
    s("Air Pollution", "Water Quality", -0.48, &mut r);
    r
}

/// Generates the OECD table with `n` rows (countries cycle when `n > 35`).
///
/// `seed` makes the dataset reproducible; the library's scenario tests use
/// [`oecd`] (seed 2017, n = 35).
pub fn oecd_with(seed: u64, n: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let chol = correlation().cholesky().expect("block matrix is pd");
    let mut cols = chol.sample_columns(&mut rng, n);
    for ((_, marginal), col) in INDICATORS.iter().zip(&mut cols) {
        marginal.apply_column(col);
    }

    let countries = CategoricalColumn::from_strings((0..n).map(|i| COUNTRIES[i % COUNTRIES.len()]));
    let mut builder = TableBuilder::new("oecd").column("Country", countries);
    for ((name, _), col) in INDICATORS.iter().zip(cols) {
        builder = builder.numeric(*name, col);
        if matches!(
            *name,
            "Household Net Financial Wealth"
                | "Household Net Adjusted Disposable Income"
                | "Personal Earnings"
        ) {
            builder = builder.semantic("currency");
        }
    }
    builder.build().expect("static schema is valid")
}

/// The canonical 35-country OECD demo table (deterministic).
pub fn oecd() -> Table {
    oecd_with(2017, COUNTRIES.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for (&a, &b) in x.iter().zip(y) {
            sxy += (a - mx) * (b - my);
            sxx += (a - mx) * (a - mx);
            syy += (b - my) * (b - my);
        }
        sxy / (sxx * syy).sqrt()
    }

    fn col<'t>(t: &'t Table, name: &str) -> &'t [f64] {
        t.numeric_by_name(name).unwrap().values()
    }

    #[test]
    fn shape_matches_paper() {
        let t = oecd();
        assert_eq!(t.n_rows(), 35);
        assert_eq!(t.n_cols(), 25);
        assert_eq!(t.numeric_indices().len(), 24);
        assert_eq!(t.categorical_indices().len(), 1);
    }

    #[test]
    fn scenario_facts_hold() {
        let t = oecd();
        let leisure = col(&t, "Time Devoted To Leisure");
        let long_hours = col(&t, "Employees Working Very Long Hours");
        let health = col(&t, "Self Reported Health");
        let satisfaction = col(&t, "Life Satisfaction");

        // Strong negative correlation (the scenario's first discovery).
        assert!(
            pearson(long_hours, leisure) < -0.75,
            "long-hours vs leisure = {}",
            pearson(long_hours, leisure)
        );
        // Leisure ⟂ health (the surprise).
        assert!(pearson(leisure, health).abs() < 0.3);
        // Satisfaction ↔ health strongly positive.
        assert!(pearson(satisfaction, health) > 0.6);

        // Health left-skewed.
        let n = health.len() as f64;
        let m = health.iter().sum::<f64>() / n;
        let v = health.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        let skew = health.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n / v.powf(1.5);
        assert!(skew < -0.4, "health skew {skew}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(oecd(), oecd());
        assert_ne!(oecd_with(1, 35), oecd_with(2, 35));
    }

    #[test]
    fn scales_beyond_country_count() {
        let t = oecd_with(5, 100);
        assert_eq!(t.n_rows(), 100);
        // countries cycle
        assert_eq!(
            t.categorical_by_name("Country").unwrap().get(35),
            Some("Australia")
        );
    }
}
