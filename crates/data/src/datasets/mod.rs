//! Synthetic dataset generators standing in for the paper's demo data.
//!
//! The VLDB'17 demo used three datasets: OECD wellbeing indicators,
//! Parkinson's PPMI clinical descriptors, and IMDB movies. None of these are
//! redistributable, so this module generates statistically equivalent
//! substitutes with the distributional facts the paper's scenarios rely on
//! planted deterministically (see `DESIGN.md` §3), plus a configurable
//! generator for benchmark-scale workloads.

pub mod copula;
pub mod dist;
pub mod imdb;
pub mod oecd;
pub mod parkinson;
pub mod synth;

pub use imdb::{imdb, imdb_with};
pub use oecd::{oecd, oecd_with};
pub use parkinson::{parkinson, parkinson_with};
pub use synth::{synth, SynthConfig, SynthGroundTruth};
