//! The in-memory, column-oriented table — the paper's input matrix `A(n×d)`.

use crate::column::{CategoricalColumn, Column, ColumnType, NumericColumn};
use crate::error::{DataError, Result};
use crate::schema::{Field, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A column-oriented table with a fixed schema.
///
/// This is Foresight's input: `n` data items (rows) by `d` attributes
/// (columns), where every column is numeric (set `B`) or categorical
/// (set `C`). Build one with [`TableBuilder`] or load one with
/// [`crate::csv::read_csv`].
///
/// # Examples
/// ```
/// use foresight_data::table::TableBuilder;
///
/// let table = TableBuilder::new("demo")
///     .numeric("x", vec![1.0, 2.0, 3.0])
///     .categorical("label", ["a", "b", "a"])
///     .build()
///     .unwrap();
/// assert_eq!(table.n_rows(), 3);
/// assert_eq!(table.n_cols(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// The table's name (dataset identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows `n`.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns `d`.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at `index`.
    pub fn column(&self, index: usize) -> Result<&Column> {
        self.columns
            .get(index)
            .ok_or(DataError::ColumnIndexOutOfBounds {
                index,
                width: self.columns.len(),
            })
    }

    /// Column named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_owned()))?;
        Ok(&self.columns[idx])
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.schema
            .index_of(name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_owned()))
    }

    /// The numeric column at `index`, or a type error.
    pub fn numeric(&self, index: usize) -> Result<&NumericColumn> {
        let col = self.column(index)?;
        col.as_numeric().ok_or_else(|| DataError::TypeMismatch {
            name: self
                .schema
                .field(index)
                .map(|f| f.name.clone())
                .unwrap_or_default(),
            actual: col.column_type().name(),
            expected: "numeric",
        })
    }

    /// The categorical column at `index`, or a type error.
    pub fn categorical(&self, index: usize) -> Result<&CategoricalColumn> {
        let col = self.column(index)?;
        col.as_categorical().ok_or_else(|| DataError::TypeMismatch {
            name: self
                .schema
                .field(index)
                .map(|f| f.name.clone())
                .unwrap_or_default(),
            actual: col.column_type().name(),
            expected: "categorical",
        })
    }

    /// The numeric column named `name`.
    pub fn numeric_by_name(&self, name: &str) -> Result<&NumericColumn> {
        self.numeric(self.index_of(name)?)
    }

    /// The categorical column named `name`.
    pub fn categorical_by_name(&self, name: &str) -> Result<&CategoricalColumn> {
        self.categorical(self.index_of(name)?)
    }

    /// Indices of the numeric columns — the paper's set `B`.
    pub fn numeric_indices(&self) -> Vec<usize> {
        self.schema.indices_of_type(ColumnType::Numeric)
    }

    /// Indices of the categorical columns — the paper's set `C`.
    pub fn categorical_indices(&self) -> Vec<usize> {
        self.schema.indices_of_type(ColumnType::Categorical)
    }

    /// The semantic tag of column `index`, if any.
    pub fn semantic(&self, index: usize) -> Option<&str> {
        self.schema.field(index).and_then(|f| f.semantic.as_deref())
    }

    /// One row materialized as boundary values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// A new table with only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let mut builder = TableBuilder::new(self.name.clone());
        for &name in names {
            let idx = self.index_of(name)?;
            builder = builder.column(name, self.columns[idx].clone());
        }
        builder.build()
    }

    /// Concatenates another table's rows below this one's. Schemas must
    /// match exactly (names, order, types); semantic tags follow `self`.
    pub fn vstack(&self, other: &Table) -> Result<Table> {
        if self.schema.len() != other.schema.len() {
            return Err(DataError::LengthMismatch {
                name: "<schema>".to_owned(),
                len: other.schema.len(),
                expected: self.schema.len(),
            });
        }
        for (a, b) in self.schema.fields().iter().zip(other.schema.fields()) {
            if a.name != b.name || a.ty != b.ty {
                return Err(DataError::TypeMismatch {
                    name: b.name.clone(),
                    actual: b.ty.name(),
                    expected: a.ty.name(),
                });
            }
        }
        let columns: Vec<Column> = self
            .columns
            .iter()
            .zip(&other.columns)
            .map(|(a, b)| match (a, b) {
                (Column::Numeric(x), Column::Numeric(y)) => {
                    let mut v = x.values().to_vec();
                    v.extend_from_slice(y.values());
                    Column::Numeric(NumericColumn::new(v))
                }
                (Column::Categorical(x), Column::Categorical(y)) => {
                    let mut c = x.clone();
                    for r in 0..y.len() {
                        match y.get(r) {
                            Some(label) => c.push(label),
                            None => c.push_null(),
                        }
                    }
                    Column::Categorical(c)
                }
                _ => unreachable!("schema types checked above"),
            })
            .collect();
        Ok(Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            n_rows: self.n_rows + other.n_rows,
        })
    }

    /// A new table containing the rows for which `keep` returns `true`.
    pub fn filter_rows(&self, keep: impl Fn(usize) -> bool) -> Table {
        let rows: Vec<usize> = (0..self.n_rows).filter(|&r| keep(r)).collect();
        let columns = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Numeric(c) => Column::Numeric(NumericColumn::new(
                    rows.iter().map(|&r| c.get(r).unwrap_or(f64::NAN)).collect(),
                )),
                Column::Categorical(c) => Column::Categorical(CategoricalColumn::from_options(
                    rows.iter().map(|&r| c.get(r)),
                )),
            })
            .collect();
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            n_rows: rows.len(),
        }
    }
}

/// Incremental builder for [`Table`].
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Starts a builder for a table named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a column of either type.
    pub fn column(mut self, name: impl Into<String>, column: impl Into<Column>) -> Self {
        let column = column.into();
        self.schema.push(Field::new(name, column.column_type()));
        self.columns.push(column);
        self
    }

    /// Adds a numeric column (`NaN` = missing).
    pub fn numeric(self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.column(name, NumericColumn::new(values))
    }

    /// Adds a categorical column (empty string = missing).
    pub fn categorical<S: AsRef<str>>(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        self.column(name, CategoricalColumn::from_strings(values))
    }

    /// Tags the most recently added column with a semantic label (e.g.
    /// "currency", "date"), enabling metadata-constrained insight queries.
    ///
    /// # Panics
    /// Panics when called before any column is added.
    pub fn semantic(mut self, tag: impl Into<String>) -> Self {
        let last = self.schema.len().checked_sub(1).expect("no column to tag");
        self.schema.set_semantic(last, Some(tag.into()));
        self
    }

    /// Validates lengths and name uniqueness and produces the table.
    pub fn build(self) -> Result<Table> {
        let n_rows = self.columns.first().map(Column::len).unwrap_or(0);
        for (field, column) in self.schema.fields().iter().zip(&self.columns) {
            if column.len() != n_rows {
                return Err(DataError::LengthMismatch {
                    name: field.name.clone(),
                    len: column.len(),
                    expected: n_rows,
                });
            }
        }
        for (i, f) in self.schema.fields().iter().enumerate() {
            if self.schema.fields()[..i].iter().any(|g| g.name == f.name) {
                return Err(DataError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Table {
            name: self.name,
            schema: self.schema,
            columns: self.columns,
            n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Table {
        TableBuilder::new("t")
            .numeric("x", vec![1.0, 2.0, f64::NAN, 4.0])
            .numeric("y", vec![4.0, 3.0, 2.0, 1.0])
            .categorical("c", ["a", "b", "a", ""])
            .build()
            .unwrap()
    }

    #[test]
    fn dimensions_and_access() {
        let t = demo();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.numeric_by_name("x").unwrap().get(0), Some(1.0));
        assert_eq!(t.categorical_by_name("c").unwrap().get(1), Some("b"));
        assert_eq!(t.numeric_indices(), vec![0, 1]);
        assert_eq!(t.categorical_indices(), vec![2]);
    }

    #[test]
    fn type_mismatch_errors() {
        let t = demo();
        assert!(matches!(
            t.numeric_by_name("c"),
            Err(DataError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.categorical_by_name("x"),
            Err(DataError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.column_by_name("nope"),
            Err(DataError::UnknownColumn(_))
        ));
        assert!(matches!(
            t.column(99),
            Err(DataError::ColumnIndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = TableBuilder::new("t")
            .numeric("a", vec![1.0])
            .numeric("b", vec![1.0, 2.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn duplicate_name_rejected() {
        let err = TableBuilder::new("t")
            .numeric("a", vec![1.0])
            .numeric("a", vec![2.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::DuplicateColumn(_)));
    }

    #[test]
    fn projection() {
        let t = demo();
        let p = t.project(&["y", "c"]).unwrap();
        assert_eq!(p.n_cols(), 2);
        assert_eq!(p.schema().names().collect::<Vec<_>>(), vec!["y", "c"]);
        assert!(t.project(&["missing"]).is_err());
    }

    #[test]
    fn row_materialization() {
        let t = demo();
        let r = t.row(2);
        assert!(r[0].is_null());
        assert_eq!(r[1], Value::Number(2.0));
        assert_eq!(r[2], Value::Text("a".into()));
    }

    #[test]
    fn filter_rows_keeps_schema_and_selects() {
        let t = demo();
        let f = t.filter_rows(|r| r % 2 == 0);
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.numeric_by_name("y").unwrap().values(), &[4.0, 2.0]);
        // missing propagates
        assert!(f.numeric_by_name("x").unwrap().values()[1].is_nan());
        assert_eq!(f.categorical_by_name("c").unwrap().get(0), Some("a"));
    }

    #[test]
    fn semantic_tagging() {
        let t = TableBuilder::new("t")
            .numeric("price", vec![1.0, 2.0])
            .semantic("currency")
            .numeric("qty", vec![3.0, 4.0])
            .build()
            .unwrap();
        assert_eq!(t.semantic(0), Some("currency"));
        assert_eq!(t.semantic(1), None);
        assert_eq!(t.schema().indices_with_semantic("currency"), vec![0]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = TableBuilder::new("a")
            .numeric("x", vec![1.0, 2.0])
            .categorical("c", ["p", "q"])
            .build()
            .unwrap();
        let b = TableBuilder::new("b")
            .numeric("x", vec![3.0, f64::NAN])
            .categorical("c", ["q", ""])
            .build()
            .unwrap();
        let stacked = a.vstack(&b).unwrap();
        assert_eq!(stacked.n_rows(), 4);
        assert_eq!(stacked.numeric_by_name("x").unwrap().get(2), Some(3.0));
        assert_eq!(stacked.numeric_by_name("x").unwrap().get(3), None);
        let c = stacked.categorical_by_name("c").unwrap();
        assert_eq!(c.get(2), Some("q"));
        assert_eq!(c.get(3), None);
        // dictionary stays deduplicated
        assert_eq!(c.cardinality(), 2);
    }

    #[test]
    fn vstack_rejects_schema_mismatch() {
        let a = TableBuilder::new("a")
            .numeric("x", vec![1.0])
            .build()
            .unwrap();
        let b = TableBuilder::new("b")
            .numeric("y", vec![1.0])
            .build()
            .unwrap();
        assert!(a.vstack(&b).is_err());
        let c = TableBuilder::new("c")
            .categorical("x", ["v"])
            .build()
            .unwrap();
        assert!(a.vstack(&c).is_err());
        let d = TableBuilder::new("d")
            .numeric("x", vec![1.0])
            .numeric("extra", vec![2.0])
            .build()
            .unwrap();
        assert!(a.vstack(&d).is_err());
    }

    #[test]
    fn empty_table() {
        let t = TableBuilder::new("e").build().unwrap();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.n_cols(), 0);
    }
}
