//! Table schema: ordered, named, typed fields.

use crate::column::ColumnType;
use serde::{Deserialize, Serialize};

/// One named, typed field of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (unique within a table).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// Optional semantic tag ("currency", "date", "percentage", …) used by
    /// metadata-constrained insight queries.
    #[serde(default)]
    pub semantic: Option<String>,
}

impl Field {
    /// Creates an untagged field.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
            semantic: None,
        }
    }

    /// Creates a field with a semantic tag.
    pub fn with_semantic(name: impl Into<String>, ty: ColumnType, tag: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ty,
            semantic: Some(tag.into()),
        }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// The fields in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field at `index`.
    pub fn field(&self, index: usize) -> Option<&Field> {
        self.fields.get(index)
    }

    /// Names of all columns, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }

    /// Indices of all columns of type `ty`, in order.
    pub fn indices_of_type(&self, ty: ColumnType) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.ty == ty)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all columns tagged with semantic `tag`.
    pub fn indices_with_semantic(&self, tag: &str) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.semantic.as_deref() == Some(tag))
            .map(|(i, _)| i)
            .collect()
    }

    pub(crate) fn push(&mut self, field: Field) {
        self.fields.push(field);
    }

    pub(crate) fn set_semantic(&mut self, index: usize, tag: Option<String>) {
        if let Some(f) = self.fields.get_mut(index) {
            f.semantic = tag;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", ColumnType::Numeric),
            Field::new("b", ColumnType::Categorical),
            Field::new("c", ColumnType::Numeric),
        ])
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zzz"), None);
        assert_eq!(s.field(2).unwrap().name, "c");
        assert!(s.field(3).is_none());
    }

    #[test]
    fn type_partition() {
        let s = schema();
        assert_eq!(s.indices_of_type(ColumnType::Numeric), vec![0, 2]);
        assert_eq!(s.indices_of_type(ColumnType::Categorical), vec![1]);
    }

    #[test]
    fn semantic_tags() {
        let mut s = schema();
        assert!(s.indices_with_semantic("currency").is_empty());
        s.set_semantic(0, Some("currency".into()));
        s.set_semantic(2, Some("currency".into()));
        assert_eq!(s.indices_with_semantic("currency"), vec![0, 2]);
        assert_eq!(
            Field::with_semantic("x", ColumnType::Numeric, "date")
                .semantic
                .as_deref(),
            Some("date")
        );
    }

    #[test]
    fn names_in_order() {
        let s = schema();
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }
}
