//! Column storage: numeric columns as `f64` vectors (NaN encodes missing),
//! categorical columns dictionary-encoded as `u32` codes into a label table.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Sentinel code for a missing categorical value.
pub const NULL_CODE: u32 = u32::MAX;

/// The type of a column, as used by insight-class applicability rules
/// (the paper's sets *B* — numeric — and *C* — categorical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// Real-valued attribute (the paper's set `B`).
    Numeric,
    /// Categorical attribute (the paper's set `C`).
    Categorical,
}

impl ColumnType {
    /// Static name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Numeric => "numeric",
            ColumnType::Categorical => "categorical",
        }
    }
}

/// A numeric column. Missing values are stored as `NaN`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NumericColumn {
    values: Vec<f64>,
}

impl NumericColumn {
    /// Creates a column from raw values; `NaN` entries are treated as missing.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Creates a column from optional values.
    pub fn from_options(values: impl IntoIterator<Item = Option<f64>>) -> Self {
        Self {
            values: values.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect(),
        }
    }

    /// Number of rows (including missing).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values; missing entries are `NaN`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over the present (non-missing) values.
    pub fn present(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied().filter(|v| !v.is_nan())
    }

    /// The present values collected into a vector. Many statistics routines
    /// want a contiguous, NaN-free slice.
    pub fn present_vec(&self) -> Vec<f64> {
        self.present().collect()
    }

    /// Number of missing entries.
    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_nan()).count()
    }

    /// Packed presence bitmask (bit set ⇔ row present). One `is_nan` sweep
    /// here lets pairwise-complete kernels AND two masks per pair instead of
    /// re-testing every row — see [`crate::mask::PresenceMask`].
    pub fn presence(&self) -> crate::mask::PresenceMask {
        crate::mask::PresenceMask::from_values(&self.values)
    }

    /// Value at `row` (`None` when missing or out of range).
    pub fn get(&self, row: usize) -> Option<f64> {
        self.values.get(row).copied().filter(|v| !v.is_nan())
    }

    /// Appends a value (use `NaN` for missing).
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }
}

/// A categorical column, dictionary encoded. Each distinct label is assigned
/// a dense `u32` code; rows store codes. [`NULL_CODE`] marks a missing cell.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CategoricalColumn {
    codes: Vec<u32>,
    labels: Vec<String>,
}

impl CategoricalColumn {
    /// Builds a column from string-ish values, constructing the dictionary in
    /// first-appearance order. Empty strings become missing.
    pub fn from_strings<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Self {
        let mut col = Self::default();
        for v in values {
            let s = v.as_ref();
            if s.is_empty() {
                col.push_null();
            } else {
                col.push(s);
            }
        }
        col
    }

    /// Builds a column from optional string values.
    pub fn from_options<S: AsRef<str>>(values: impl IntoIterator<Item = Option<S>>) -> Self {
        let mut col = Self::default();
        for v in values {
            match v {
                Some(s) => col.push(s.as_ref()),
                None => col.push_null(),
            }
        }
        col
    }

    /// Number of rows (including missing).
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The dictionary of labels, indexed by code.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The per-row codes; [`NULL_CODE`] marks missing cells.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of distinct labels observed (missing excluded).
    pub fn cardinality(&self) -> usize {
        self.labels.len()
    }

    /// Number of missing entries.
    pub fn null_count(&self) -> usize {
        self.codes.iter().filter(|&&c| c == NULL_CODE).count()
    }

    /// Label at `row` (`None` when missing or out of range).
    pub fn get(&self, row: usize) -> Option<&str> {
        match self.codes.get(row) {
            Some(&c) if c != NULL_CODE => Some(&self.labels[c as usize]),
            _ => None,
        }
    }

    /// Appends a label, interning it if new.
    pub fn push(&mut self, label: &str) {
        // Linear scan is fine for the typical dictionary sizes here; switch to
        // a side HashMap if a dataset ever has very high cardinality.
        let code = match self.labels.iter().position(|l| l == label) {
            Some(i) => i as u32,
            None => {
                self.labels.push(label.to_owned());
                (self.labels.len() - 1) as u32
            }
        };
        self.codes.push(code);
    }

    /// Appends a missing cell.
    pub fn push_null(&mut self) {
        self.codes.push(NULL_CODE);
    }

    /// Iterator over present codes (missing skipped).
    pub fn present_codes(&self) -> impl Iterator<Item = u32> + '_ {
        self.codes.iter().copied().filter(|&c| c != NULL_CODE)
    }
}

/// A column of either type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Numeric storage.
    Numeric(NumericColumn),
    /// Categorical storage.
    Categorical(CategoricalColumn),
}

impl Column {
    /// The column's type tag.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::Numeric(_) => ColumnType::Numeric,
            Column::Categorical(_) => ColumnType::Categorical,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(c) => c.len(),
            Column::Categorical(c) => c.len(),
        }
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of missing entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Numeric(c) => c.null_count(),
            Column::Categorical(c) => c.null_count(),
        }
    }

    /// The numeric view, if this is a numeric column.
    pub fn as_numeric(&self) -> Option<&NumericColumn> {
        match self {
            Column::Numeric(c) => Some(c),
            _ => None,
        }
    }

    /// The categorical view, if this is a categorical column.
    pub fn as_categorical(&self) -> Option<&CategoricalColumn> {
        match self {
            Column::Categorical(c) => Some(c),
            _ => None,
        }
    }

    /// Cell at `row` as a boundary [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Numeric(c) => c.get(row).map(Value::Number).unwrap_or(Value::Null),
            Column::Categorical(c) => c
                .get(row)
                .map(|s| Value::Text(s.to_owned()))
                .unwrap_or(Value::Null),
        }
    }
}

impl From<NumericColumn> for Column {
    fn from(c: NumericColumn) -> Self {
        Column::Numeric(c)
    }
}

impl From<CategoricalColumn> for Column {
    fn from(c: CategoricalColumn) -> Self {
        Column::Categorical(c)
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::Numeric(NumericColumn::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_missing_handling() {
        let c = NumericColumn::new(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.present_vec(), vec![1.0, 3.0]);
        assert_eq!(c.get(0), Some(1.0));
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(9), None);
    }

    #[test]
    fn numeric_from_options() {
        let c = NumericColumn::from_options([Some(1.0), None, Some(2.0)]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.present_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn categorical_dictionary_encoding() {
        let c = CategoricalColumn::from_strings(["a", "b", "a", "", "c", "b"]);
        assert_eq!(c.len(), 6);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0), Some("a"));
        assert_eq!(c.get(2), Some("a"));
        assert_eq!(c.get(3), None);
        assert_eq!(c.codes()[0], c.codes()[2]);
        assert_eq!(c.labels(), &["a", "b", "c"]);
    }

    #[test]
    fn column_values_at_boundary() {
        let n: Column = vec![1.0, f64::NAN].into();
        assert_eq!(n.value(0), Value::Number(1.0));
        assert_eq!(n.value(1), Value::Null);
        let c: Column = CategoricalColumn::from_strings(["x"]).into();
        assert_eq!(c.value(0), Value::Text("x".into()));
        assert_eq!(c.value(7), Value::Null);
    }

    #[test]
    fn column_type_tags() {
        let n: Column = vec![1.0].into();
        assert_eq!(n.column_type(), ColumnType::Numeric);
        assert!(n.as_numeric().is_some());
        assert!(n.as_categorical().is_none());
        assert_eq!(ColumnType::Numeric.name(), "numeric");
        assert_eq!(ColumnType::Categorical.name(), "categorical");
    }
}
