//! # foresight-data
//!
//! Column-oriented in-memory tables for the Foresight insight-recommendation
//! system — the paper's input matrix `A(n×d)` with numeric (`B`) and
//! categorical (`C`) attribute sets — plus CSV I/O, type inference, and
//! synthetic generators for the three demo datasets (OECD, Parkinson, IMDB)
//! and for benchmark-scale workloads.
//!
//! ## Quick start
//! ```
//! use foresight_data::prelude::*;
//!
//! let table = datasets::oecd();
//! assert_eq!(table.n_rows(), 35);
//! let leisure = table.numeric_by_name("Time Devoted To Leisure").unwrap();
//! assert_eq!(leisure.len(), 35);
//! ```

#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod datasets;
pub mod error;
pub mod infer;
pub mod mask;
pub mod schema;
pub mod source;
pub mod table;
pub mod value;

pub use column::{CategoricalColumn, Column, ColumnType, NumericColumn};
pub use error::{DataError, Result};
pub use mask::PresenceMask;
pub use schema::{Field, Schema};
pub use source::TableSource;
pub use table::{Table, TableBuilder};
pub use value::Value;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::column::{CategoricalColumn, Column, ColumnType, NumericColumn};
    pub use crate::datasets;
    pub use crate::error::{DataError, Result};
    pub use crate::mask::PresenceMask;
    pub use crate::schema::{Field, Schema};
    pub use crate::source::TableSource;
    pub use crate::table::{Table, TableBuilder};
    pub use crate::value::Value;
}
