//! Property-based tests for the data layer.

use foresight_data::csv::{parse_rows, read_csv_str, write_csv_string};
use foresight_data::infer::InferOptions;
use foresight_data::{CategoricalColumn, NumericColumn, TableBuilder};
use proptest::prelude::*;

/// Arbitrary field content, including CSV-hostile characters.
fn field() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 ,\"\n_.-]{0,12}").expect("valid regex")
}

proptest! {
    #[test]
    fn csv_field_round_trip(rows in proptest::collection::vec(
        proptest::collection::vec(field(), 3), 1..20)
    ) {
        // write a table of categorical columns and re-parse it
        let cols = 3;
        let mut builder = TableBuilder::new("t");
        for c in 0..cols {
            let col = CategoricalColumn::from_strings(rows.iter().map(|r| r[c].as_str()));
            builder = builder.column(format!("col{c}"), col);
        }
        let table = builder.build().expect("uniform lengths");
        let csv = write_csv_string(&table).expect("serialize");
        let parsed = parse_rows(&csv).expect("own output parses");
        prop_assert_eq!(parsed.len(), rows.len() + 1);
        for (orig, back) in rows.iter().zip(parsed.iter().skip(1)) {
            for c in 0..cols {
                // categorical storage trims nothing; empty = missing = empty
                prop_assert_eq!(&orig[c], &back[c]);
            }
        }
    }

    #[test]
    fn inferred_numeric_columns_round_trip(values in proptest::collection::vec(-1e9f64..1e9, 1..60)) {
        let mut csv = String::from("x\n");
        for v in &values {
            csv.push_str(&format!("{v}\n"));
        }
        let table = read_csv_str(&csv, "t", &InferOptions::default()).expect("parse");
        let col = table.numeric_by_name("x").expect("inferred numeric");
        for (a, b) in values.iter().zip(col.values()) {
            prop_assert!((a - b).abs() <= a.abs() * 1e-12 + 1e-12);
        }
    }

    #[test]
    fn numeric_column_present_count_invariant(values in proptest::collection::vec(
        prop_oneof![Just(f64::NAN), -1e6f64..1e6], 0..100)
    ) {
        let col = NumericColumn::new(values.clone());
        prop_assert_eq!(col.len(), values.len());
        prop_assert_eq!(col.present().count() + col.null_count(), values.len());
        prop_assert!(col.present().all(|v| !v.is_nan()));
    }

    #[test]
    fn dictionary_encoding_is_lossless(labels in proptest::collection::vec("[a-z]{1,5}", 0..80)) {
        let col = CategoricalColumn::from_strings(labels.iter().map(String::as_str));
        prop_assert_eq!(col.len(), labels.len());
        for (i, l) in labels.iter().enumerate() {
            prop_assert_eq!(col.get(i), Some(l.as_str()));
        }
        // cardinality equals distinct count
        let mut distinct = labels.clone();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(col.cardinality(), distinct.len());
    }

    #[test]
    fn filter_rows_preserves_schema_and_counts(n in 1usize..60, modulo in 1usize..5) {
        let table = TableBuilder::new("t")
            .numeric("a", (0..n).map(|i| i as f64).collect())
            .categorical("b", (0..n).map(|i| if i % 2 == 0 { "x" } else { "y" }))
            .build()
            .expect("valid");
        let kept = table.filter_rows(|r| r % modulo == 0);
        prop_assert_eq!(kept.n_cols(), 2);
        prop_assert_eq!(kept.n_rows(), n.div_ceil(modulo));
    }
}
