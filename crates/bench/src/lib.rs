//! Shared machinery for the Foresight experiments: the exact-preprocessing
//! baseline, workload construction, and table-formatted reporting.
//!
//! Experiment index (see `DESIGN.md` §2): `exp_fig1` and `exp_fig2`
//! regenerate the paper's two figures; `exp_accuracy` (T1), `exp_speedup`
//! (T2), `exp_latency` (T3), and `exp_scaling` (T4) regenerate its
//! quantitative claims.

use foresight_data::datasets::{synth, SynthConfig, SynthGroundTruth};
use foresight_data::Table;
use foresight_stats::correlation::pearson_complete;
use foresight_stats::moments::Moments;
use foresight_stats::rank::fractional_ranks;
use std::time::{Duration, Instant};

/// The exact counterpart of the sketch catalog: everything the engine would
/// need precomputed to answer the same insight queries with exact values —
/// per-column moments and sorted copies, plus the full pairwise Pearson
/// *and* Spearman matrices (`O(|B|²·n)`).
pub struct ExactPreprocess {
    /// Per-column moments.
    pub moments: Vec<Moments>,
    /// Per-column sorted values (exact quantiles).
    pub sorted: Vec<Vec<f64>>,
    /// Pairwise Pearson matrix over numeric columns.
    pub pearson: Vec<Vec<f64>>,
    /// Pairwise Spearman matrix over numeric columns.
    pub spearman: Vec<Vec<f64>>,
}

/// Runs the exact preprocessing baseline.
pub fn exact_preprocess(table: &Table) -> ExactPreprocess {
    let indices = table.numeric_indices();
    let cols: Vec<&[f64]> = indices
        .iter()
        .map(|&i| table.numeric(i).expect("schema index").values())
        .collect();
    let moments: Vec<Moments> = cols.iter().map(|c| Moments::from_slice(c)).collect();
    let sorted: Vec<Vec<f64>> = cols
        .iter()
        .map(|c| {
            let mut v: Vec<f64> = c.iter().copied().filter(|x| !x.is_nan()).collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("nan filtered"));
            v
        })
        .collect();
    let ranks: Vec<Vec<f64>> = cols.iter().map(|c| fractional_ranks(c)).collect();

    let d = cols.len();
    let mut pearson = vec![vec![1.0; d]; d];
    let mut spearman = vec![vec![1.0; d]; d];
    for i in 0..d {
        for j in (i + 1)..d {
            let p = pearson_complete(cols[i], cols[j]);
            pearson[i][j] = p;
            pearson[j][i] = p;
            let s = pearson_complete(&ranks[i], &ranks[j]);
            spearman[i][j] = s;
            spearman[j][i] = s;
        }
    }
    ExactPreprocess {
        moments,
        sorted,
        pearson,
        spearman,
    }
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Configures the rayon pool for a benchmark run and returns the effective
/// worker-thread count — the number every `BENCH_*.json` should record.
///
/// Honors `FORESIGHT_BENCH_THREADS` (explicit pool size for this run) by
/// pinning the pool via `rayon::set_num_threads`; otherwise leaves the pool
/// on its automatic size (`RAYON_NUM_THREADS` or machine parallelism).
/// Benchmarks previously recorded `rayon::current_num_threads()` without
/// ever configuring the pool, so "parallel" datapoints on a 1-CPU container
/// silently reported (and used) a single thread.
pub fn configure_threads() -> usize {
    if let Some(n) = std::env::var("FORESIGHT_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        rayon::set_num_threads(n);
    }
    rayon::current_num_threads()
}

/// Builds the standard benchmark workload.
pub fn workload(rows: usize, numeric_cols: usize, seed: u64) -> (Table, SynthGroundTruth) {
    synth(&SynthConfig::benchmark(rows, numeric_cols, seed))
}

/// Prints a row-aligned experiment table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!(" {c:>w$} |"));
        }
        s
    };
    println!(
        "{}",
        line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "|{}",
        widths
            .iter()
            .map(|w| format!("{:-<1$}-|", "-", w + 1))
            .collect::<String>()
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_preprocess_covers_all_columns() {
        let (t, truth) = workload(500, 8, 3);
        let ex = exact_preprocess(&t);
        assert_eq!(ex.moments.len(), 8);
        assert_eq!(ex.sorted.len(), 8);
        assert_eq!(ex.pearson.len(), 8);
        for &(i, j, rho) in &truth.correlated_pairs {
            assert!((ex.pearson[i][j] - rho).abs() < 0.15);
            assert_eq!(ex.pearson[i][j], ex.pearson[j][i]);
        }
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7 µs");
    }
}
