//! **Memory footprint.** The paper's §3 space claim: the hyperplane sketch
//! stores `|B|·k` **bits** for the whole dataset. This experiment reports
//! the byte sizes of every sketch family in the catalog against the raw
//! column data, across scales.

use foresight_bench::{print_table, workload};
use foresight_sketch::{CatalogConfig, SketchCatalog};

fn main() {
    println!("# Sketch memory footprint vs raw data");
    let mut rows = Vec::new();
    for &(n, d) in &[(10_000usize, 50usize), (100_000, 50), (100_000, 200)] {
        let (table, _) = workload(n, d, 5);
        let catalog = SketchCatalog::build(&table, &CatalogConfig::default());
        let raw_bytes = n * d * 8;
        let hp_bytes = catalog.hyperplane_bytes() * 2; // value + rank families
        let k = catalog.hyperplane_config().k;
        // KLL ~ retained × 8B; reservoir = 1000 × 8B per column
        let kll_bytes: usize = table
            .numeric_indices()
            .iter()
            .filter_map(|&i| catalog.numeric(i))
            .map(|s| s.quantiles.retained() * 8)
            .sum();
        let reservoir_bytes = d * 1_000 * 8;
        let total = hp_bytes + kll_bytes + reservoir_bytes + d * 7 * 8; // + moments
        rows.push(vec![
            format!("{n} × {d}"),
            format!("{:.1} MB", raw_bytes as f64 / 1e6),
            format!("{k}"),
            format!("{:.1} KB", hp_bytes as f64 / 1e3),
            format!("{:.1} KB", kll_bytes as f64 / 1e3),
            format!("{:.1} KB", reservoir_bytes as f64 / 1e3),
            format!("{:.2}%", 100.0 * total as f64 / raw_bytes as f64),
        ]);
    }
    print_table(
        "catalog memory by component",
        &[
            "table",
            "raw data",
            "k",
            "hyperplane (2 fams)",
            "KLL",
            "reservoirs",
            "catalog/raw",
        ],
        &rows,
    );
    println!("\n(the hyperplane share is |B|·k bits per family — kilobytes against megabytes of raw data;\n reservoirs dominate the catalog and are capped, so the ratio falls as n grows)");
}
