//! **Experiment T3 — interactive query latency.** The paper claims
//! "interactive speeds during exploration" (§3). We measure wall-clock
//! latency of representative insight queries at the paper's target scale
//! (100K rows, attributes in the hundreds), in sketch-backed approximate
//! mode vs exact mode.

use foresight_bench::{fmt_duration, time, workload};
use foresight_engine::{Executor, InsightIndex, InsightQuery};
use foresight_insight::InsightRegistry;
use foresight_sketch::{CatalogConfig, SketchCatalog};

fn main() {
    println!("# Experiment T3: insight-query latency (paper claim: interactive)\n");

    for &(rows, cols) in &[(100_000usize, 50usize), (100_000, 100), (100_000, 200)] {
        let (table, _) = workload(rows, cols, 33);
        let registry = InsightRegistry::default();
        let catalog = SketchCatalog::build(&table, &CatalogConfig::default());
        let approx = Executor::approximate(&table, &registry, &catalog);
        let exact = Executor::exact(&table, &registry);
        let (index, t_index_build) =
            time(|| InsightIndex::build(&table, &registry, Some(&catalog)));
        println!("### {rows} rows × {cols} numeric columns\n");
        println!(
            "insight index materialized in {}\n",
            fmt_duration(t_index_build)
        );
        println!(
            "| {:<46} | {:>10} | {:>10} | {:>10} |",
            "query", "indexed", "sketch", "exact"
        );
        println!(
            "|{}|------------|------------|------------|",
            "-".repeat(48)
        );

        let queries: Vec<(&str, InsightQuery)> = vec![
            (
                "top-5 correlations (all pairs)",
                InsightQuery::class("linear-relationship").top_k(5),
            ),
            (
                "correlations with col 0, rho in [0.3, 0.9]",
                InsightQuery::class("linear-relationship")
                    .top_k(5)
                    .fix_attr(0)
                    .score_range(0.3, 0.9),
            ),
            (
                "top-5 monotonic (Spearman, all pairs)",
                InsightQuery::class("monotonic-relationship").top_k(5),
            ),
            (
                "top-5 dispersion",
                InsightQuery::class("dispersion").top_k(5),
            ),
            ("top-5 skew", InsightQuery::class("skew").top_k(5)),
            (
                "top-5 heavy tails",
                InsightQuery::class("heavy-tails").top_k(5),
            ),
            ("top-5 normality", InsightQuery::class("normality").top_k(5)),
            (
                "top-5 multimodality",
                InsightQuery::class("multimodality").top_k(5),
            ),
            ("top-5 outliers", InsightQuery::class("outliers").top_k(5)),
            (
                "top-3 heterogeneous frequencies",
                InsightQuery::class("heterogeneous-frequencies").top_k(3),
            ),
        ];

        for (name, q) in queries {
            let (idx_out, t_index) = time(|| index.query(&table, &registry, &q));
            let (a, t_approx) = time(|| approx.execute(&q).expect("valid query"));
            // exact correlation scans at this scale are the slow path the
            // paper's sketches exist to avoid; run them once for contrast
            let (e, t_exact) = time(|| exact.execute(&q).expect("valid query"));
            assert!(a.len() <= 5 && e.len() <= 5);
            let idx_cell = match idx_out {
                Some(out) => {
                    assert_eq!(out, a, "{name}: index disagrees with executor");
                    fmt_duration(t_index)
                }
                None => "—".to_owned(),
            };
            println!(
                "| {name:<46} | {idx_cell:>10} | {:>10} | {:>10} |",
                fmt_duration(t_approx),
                fmt_duration(t_exact)
            );
        }
        println!();
    }
    println!("(sketch column = what the interactive UI experiences after preprocessing)");
}
