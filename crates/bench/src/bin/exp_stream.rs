//! **Experiment T8 — streaming ingest under concurrent query load.**
//! Four measurements over the incremental write path:
//!
//! 1. *Republish cost*: wall-clock to absorb one append batch and publish
//!    a fresh snapshot, incrementally (`CoreBuilder::from_arc` +
//!    `append_shard`: merge the batch's shard catalog, rescore only dirty
//!    columns, migrate clean cache entries) versus a full cold rebuild
//!    over all accumulated shards. The speedup is the point of the
//!    incremental path and is gated under `FORESIGHT_BENCH_GATE=1`.
//! 2. *Sustained ingest rate*: rows/sec a `StreamWriter` absorbs while
//!    reader threads query continuously.
//! 3. *Read latency under churn*: per-query p50/p99 on reader threads
//!    while the writer republishes, against the same workload on a
//!    static core.
//! 4. *Snapshot staleness*: worst rows-behind any reader observed.
//!
//! Emits `BENCH_stream.json` into the working directory.

use foresight_bench::workload;
use foresight_data::{Table, TableSource};
use foresight_engine::stream::{RepublishPolicy, StreamConfig, StreamWriter};
use foresight_engine::{AdoptPolicy, CoreBuilder, EngineCore, InsightQuery};
use foresight_sketch::CatalogConfig;
use serde_json::json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED_ROWS: usize = 20_000;
const BATCH_ROWS: usize = 1_000;
const REPUBLISH_BATCHES: usize = 6;
const STREAM_BATCHES: usize = 24;
const COLS: usize = 12;
const READERS: usize = 4;
const REPS: usize = 5;

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn percentile(xs: &mut [Duration], p: f64) -> Duration {
    xs.sort();
    xs[((xs.len() - 1) as f64 * p) as usize]
}

/// Slices `table` into `[0, seed)` plus `BATCH_ROWS`-sized append batches.
fn slices(table: &Table, seed: usize, batches: usize) -> (Table, Vec<Table>) {
    let head = table.filter_rows(|r| r < seed);
    let tail: Vec<Table> = (0..batches)
        .map(|b| {
            let lo = seed + b * BATCH_ROWS;
            let hi = lo + BATCH_ROWS;
            table.filter_rows(|r| (lo..hi).contains(&r))
        })
        .collect();
    (head, tail)
}

fn indexed_core(shards: Vec<Table>, config: &CatalogConfig) -> Arc<EngineCore> {
    let mut builder = CoreBuilder::new(TableSource::sharded(shards).expect("shards"));
    builder.preprocess(config).expect("sketch");
    builder.build_index().expect("index");
    builder.freeze()
}

/// Median wall-clock to append one batch and republish, per path.
fn republish_cost(seed: &Table, batches: &[Table], config: &CatalogConfig) -> (f64, f64) {
    let mut incremental = Vec::with_capacity(REPS);
    let mut full = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        // incremental: carry the previous snapshot forward batch by batch
        let mut core = indexed_core(vec![seed.clone()], config);
        let t0 = Instant::now();
        for b in batches {
            let mut writer = CoreBuilder::from_arc(core);
            writer.append_shard(b.clone()).expect("append");
            core = writer.freeze();
        }
        incremental.push(t0.elapsed() / batches.len() as u32);
        std::hint::black_box(core.snapshot_rows());

        // full: cold rebuild over all accumulated shards at every publish
        let mut shards = vec![seed.clone()];
        let t0 = Instant::now();
        for b in batches {
            shards.push(b.clone());
            let core = indexed_core(shards.clone(), config);
            std::hint::black_box(core.snapshot_rows());
        }
        full.push(t0.elapsed() / batches.len() as u32);
    }
    (
        median(incremental).as_secs_f64() * 1e3,
        median(full).as_secs_f64() * 1e3,
    )
}

struct ChurnStats {
    queries: u64,
    p50_us: f64,
    p99_us: f64,
    max_rows_behind: u64,
}

/// Readers hammer the published slot until `stop`; returns pooled latency
/// percentiles and the worst staleness any query observed.
fn read_under(
    published: Option<Arc<foresight_engine::PublishedCore>>,
    core: Arc<EngineCore>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<(Vec<Duration>, u64)> {
    std::thread::spawn(move || {
        let mut handle = core.handle();
        if let Some(published) = published {
            handle.bind_stream(published);
            handle.set_adopt_policy(AdoptPolicy::EveryQuery);
        }
        handle.set_parallel(false);
        let classes = ["linear-relationship", "skew", "outliers", "dispersion"];
        let mut lat = Vec::with_capacity(1 << 14);
        let mut max_behind = 0u64;
        let mut i = 0usize;
        while !stop.load(Ordering::Relaxed) {
            let q = InsightQuery::class(classes[i % classes.len()]).top_k(3);
            let t0 = Instant::now();
            handle.query(&q).expect("query under churn");
            lat.push(t0.elapsed());
            max_behind = max_behind.max(handle.staleness().rows_behind);
            i += 1;
        }
        (lat, max_behind)
    })
}

/// Runs readers for the duration of an ingest run (or a fixed quantum on
/// the static baseline) and pools their latencies.
fn churn(core: Arc<EngineCore>, batches: &[Table], stream: bool) -> (ChurnStats, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let (published, writer) = if stream {
        let writer = StreamWriter::spawn(
            core.clone(),
            StreamConfig {
                policy: RepublishPolicy {
                    max_rows: 2_000,
                    max_interval: Duration::from_millis(25),
                    ..RepublishPolicy::default()
                },
                ..StreamConfig::default()
            },
        );
        (Some(writer.published()), Some(writer))
    } else {
        (None, None)
    };
    let readers: Vec<_> = (0..READERS)
        .map(|_| read_under(published.clone(), Arc::clone(&core), Arc::clone(&stop)))
        .collect();

    let ingested = batches.iter().map(Table::n_rows).sum::<usize>();
    let t0 = Instant::now();
    if let Some(writer) = &writer {
        for b in batches {
            writer.send(b.clone()).expect("writer alive");
        }
        writer.flush().expect("drain");
    } else {
        std::thread::sleep(Duration::from_millis(400));
    }
    let ingest_wall = t0.elapsed();
    stop.store(true, Ordering::Relaxed);

    let mut lat = Vec::new();
    let mut max_behind = 0u64;
    for r in readers {
        let (l, behind) = r.join().expect("reader");
        lat.extend(l);
        max_behind = max_behind.max(behind);
    }
    if let Some(writer) = writer {
        let last = writer.finish().expect("drained");
        assert_eq!(last.rows_behind(), 0);
        std::hint::black_box(last.snapshot_rows());
    }
    let rows_per_sec = if stream {
        ingested as f64 / ingest_wall.as_secs_f64().max(1e-9)
    } else {
        0.0
    };
    let queries = lat.len() as u64;
    (
        ChurnStats {
            queries,
            p50_us: percentile(&mut lat, 0.50).as_secs_f64() * 1e6,
            p99_us: percentile(&mut lat, 0.99).as_secs_f64() * 1e6,
            max_rows_behind: max_behind,
        },
        rows_per_sec,
    )
}

fn main() {
    let gate = std::env::var("FORESIGHT_BENCH_GATE").is_ok_and(|v| v == "1");
    println!("# Experiment T8: streaming ingest — republish cost, sustained rate, read latency under churn");

    let (table, _) = workload(
        SEED_ROWS + STREAM_BATCHES.max(REPUBLISH_BATCHES) * BATCH_ROWS,
        COLS,
        11,
    );
    let config = CatalogConfig::default();

    // 1. incremental vs full republish cost
    let (seed, batches) = slices(&table, SEED_ROWS, REPUBLISH_BATCHES);
    let (inc_ms, full_ms) = republish_cost(&seed, &batches, &config);
    let speedup = full_ms / inc_ms.max(1e-9);
    println!(
        "republish one {BATCH_ROWS}-row batch over {SEED_ROWS}+ rows: \
         incremental {inc_ms:.1} ms vs full rebuild {full_ms:.1} ms ({speedup:.1}x)"
    );

    // 2-4. sustained ingest + read latency + staleness under churn
    let (seed, stream_batches) = slices(&table, SEED_ROWS, STREAM_BATCHES);
    let static_core = indexed_core(vec![seed.clone()], &config);
    let (baseline, _) = churn(Arc::clone(&static_core), &[], false);
    let (under_churn, rows_per_sec) =
        churn(indexed_core(vec![seed], &config), &stream_batches, true);
    println!(
        "static core: {} queries, p50 {:.0} us, p99 {:.0} us",
        baseline.queries, baseline.p50_us, baseline.p99_us
    );
    println!(
        "under churn: {} queries, p50 {:.0} us, p99 {:.0} us; \
         ingest sustained {:.0} rows/s; worst staleness {} rows",
        under_churn.queries,
        under_churn.p50_us,
        under_churn.p99_us,
        rows_per_sec,
        under_churn.max_rows_behind
    );

    let report = json!({
        "experiment": "stream",
        "description": "streaming ingest: incremental vs full republish cost, sustained rows/sec under reader load, read latency and staleness under churn",
        "reps": REPS,
        "statistic": "median",
        "host_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "seed_rows": SEED_ROWS,
        "batch_rows": BATCH_ROWS,
        "republish": {
            "batches": REPUBLISH_BATCHES,
            "incremental_ms_per_batch": inc_ms,
            "full_rebuild_ms_per_batch": full_ms,
            "speedup": speedup,
        },
        "ingest": {
            "batches": STREAM_BATCHES,
            "rows_per_sec_under_query_load": rows_per_sec,
            "reader_threads": READERS,
        },
        "read_latency_us": {
            "static_p50": baseline.p50_us,
            "static_p99": baseline.p99_us,
            "churn_p50": under_churn.p50_us,
            "churn_p99": under_churn.p99_us,
            "churn_queries": under_churn.queries,
        },
        "staleness": {
            "max_rows_behind": under_churn.max_rows_behind,
            "republish_every_rows": 2_000,
        },
    });
    let path = "BENCH_stream.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_stream.json");
    println!("\nwrote {path}");

    if gate {
        // the incremental path must beat republish-by-rebuild decisively;
        // anything close to parity means the dirty-column reuse regressed
        let floor = 1.5;
        assert!(
            speedup >= floor,
            "GATE: incremental republish only {speedup:.2}x faster than a full rebuild \
             (floor {floor}x)"
        );
        assert!(
            under_churn.queries > 0 && under_churn.max_rows_behind <= 50_000,
            "GATE: readers starved or staleness unbounded under churn"
        );
        println!("gate passed: incremental republish {speedup:.2}x >= {floor}x");
    }
}
