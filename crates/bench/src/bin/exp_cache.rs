//! **Experiment T5 — cross-query score cache and parallel carousel
//! assembly.** Measures the exploration engine's repeated-workload
//! performance: assembling all 12 class carousels cold (empty cache),
//! cold with the parallel/batch path, and warm (every score cached) —
//! the situation after any focus change, filter tweak, or session replay.
//!
//! Emits `BENCH_query_cache.json` into the working directory (run from the
//! repository root) alongside a human-readable table on stdout.

use foresight_bench::{fmt_duration, workload};
use foresight_data::datasets::{oecd, oecd_with};
use foresight_data::Table;
use foresight_engine::Foresight;
use serde_json::{json, Value};
use std::time::{Duration, Instant};

const PER_CLASS: usize = 5;
const REPS: usize = 5;

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// Median wall-clock of `f` over [`REPS`] runs; `reset` runs before each
/// timed run (outside the clock) to restore the starting state.
fn bench(mut reset: impl FnMut(&mut Foresight), fs: &mut Foresight) -> Duration {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        reset(fs);
        let t0 = Instant::now();
        let out = fs.carousels(PER_CLASS).expect("carousels");
        times.push(t0.elapsed());
        assert_eq!(out.len(), fs.registry().len());
        std::hint::black_box(out);
    }
    median(times)
}

fn measure(name: &str, table: Table) -> Value {
    let rows = table.n_rows();
    let numeric_cols = table.numeric_indices().len();

    // serial: batch scoring and parallel assembly off
    let mut serial = Foresight::new(table.clone());
    let n_classes = serial.registry().len();
    serial.set_parallel(false);
    let cold_serial = bench(|fs| fs.clear_score_cache(), &mut serial);

    // parallel: batch scoring + parallel carousel assembly
    let mut parallel = Foresight::new(table);
    parallel.set_parallel(true);
    let cold_parallel = bench(|fs| fs.clear_score_cache(), &mut parallel);

    // both paths must agree exactly before any number is worth reporting
    assert_eq!(
        serial.carousels(PER_CLASS).expect("serial"),
        parallel.carousels(PER_CLASS).expect("parallel"),
        "parallel carousels diverged from serial on {name}"
    );

    // warm: same workload, every score already cached
    let warm = bench(|_| {}, &mut parallel);
    let stats = parallel.cache_stats();

    let ratio = |a: Duration, b: Duration| a.as_secs_f64() / b.as_secs_f64().max(1e-9);
    let warm_speedup = ratio(cold_parallel, warm);
    let parallel_speedup = ratio(cold_serial, cold_parallel);

    println!(
        "| {name:<12} | {rows:>7} | {:>12} | {:>12} | {:>12} | {warm_speedup:>7.1}x | {parallel_speedup:>7.2}x |",
        fmt_duration(cold_serial),
        fmt_duration(cold_parallel),
        fmt_duration(warm),
    );

    json!({
        "dataset": name,
        "rows": rows,
        "numeric_cols": numeric_cols,
        "per_class": PER_CLASS,
        "classes": n_classes,
        "cold_serial_ms": cold_serial.as_secs_f64() * 1e3,
        "cold_parallel_ms": cold_parallel.as_secs_f64() * 1e3,
        "warm_ms": warm.as_secs_f64() * 1e3,
        "warm_speedup_vs_cold": warm_speedup,
        "parallel_speedup_vs_serial": parallel_speedup,
        "cache_entries": stats.entries,
        "cache_hit_rate": stats.hit_rate(),
    })
}

fn main() {
    let threads = rayon::current_num_threads();
    println!("# Experiment T5: score cache + parallel carousel assembly");
    println!("# rayon threads: {threads} (on 1 thread the parallel column measures batch scoring alone)\n");
    println!(
        "| {:<12} | {:>7} | {:>12} | {:>12} | {:>12} | {:>8} | {:>8} |",
        "dataset", "rows", "cold serial", "cold parallel", "warm", "warm spd", "par spd"
    );
    println!("|{}|", "-".repeat(94));

    let datasets = vec![
        ("oecd", oecd()),
        ("oecd-10k", oecd_with(2017, 10_000)),
        ("synth-20kx16", workload(20_000, 16, 7).0),
    ];
    let results: Vec<Value> = datasets
        .into_iter()
        .map(|(name, table)| measure(name, table))
        .collect();

    let report = json!({
        "experiment": "query_cache",
        "description": "full carousel assembly (12 classes x top-5): cold vs warm vs parallel",
        "reps": REPS,
        "statistic": "median",
        "rayon_threads": threads,
        "datasets": results,
    });
    let path = "BENCH_query_cache.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_query_cache.json");
    println!("\nwrote {path}");
}
