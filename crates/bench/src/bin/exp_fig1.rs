//! **Experiment F1 — Figure 1.** Regenerates the paper's carousel view:
//! ranked insight strips for every class on the OECD dataset, rendered as
//! terminal carousels, plus SVGs under `target/figures/fig1/`.
//!
//! The paper's screenshot shows 3 of 12 classes (correlations, outliers,
//! heavy tails); we render all 12.

use foresight_data::datasets;
use foresight_engine::Foresight;
use foresight_sketch::CatalogConfig;
use foresight_viz::{carousel, render_svg, render_text, SvgOptions};
use std::fs;
use std::path::Path;

fn main() {
    let out_dir = Path::new("target/figures/fig1");
    fs::create_dir_all(out_dir).expect("create output dir");

    let mut engine = Foresight::new(datasets::oecd());
    engine
        .preprocess(&CatalogConfig::default())
        .expect("raw table present");
    let carousels = engine.carousels(3).expect("default classes");

    println!("# Figure 1: insight carousels (OECD, top 3 per class)\n");
    let mut written = 0;
    for c in &carousels {
        if c.instances.is_empty() {
            continue;
        }
        println!("── {} — ranked by {} ──", c.class_name, c.metric);
        let mut blocks = Vec::new();
        for (rank, inst) in c.instances.iter().enumerate() {
            if let Ok(Some(spec)) = engine.chart(inst) {
                blocks.push(render_text(&spec, 34));
                let svg = render_svg(&spec, SvgOptions::default());
                let path = out_dir.join(format!("{}_{rank}.svg", c.class_id));
                fs::write(&path, svg).expect("write svg");
                written += 1;
            }
        }
        print!("{}", carousel(&blocks, 1));
        println!();
    }
    println!("wrote {written} SVG charts to {}", out_dir.display());

    // the closest artifact to the paper's actual screenshot: the full
    // carousel page as one self-contained HTML document
    let report = engine.report(3).expect("default classes");
    let path = out_dir.join("fig1.html");
    fs::write(&path, report.to_html()).expect("write report");
    println!("wrote {}", path.display());
}
