//! **Experiment T6 — partition-native ingest.** Measures the sharded
//! pipeline end to end: per-shard catalog builds as the shard count grows
//! 1→8 (rayon fan-out), the cost of merging the per-shard catalogs, and
//! whether a merged catalog answers approximate queries as fast as one
//! built in a single pass over the concatenated rows.
//!
//! Emits `BENCH_partition.json` into the working directory (run from the
//! repository root) alongside a human-readable table on stdout.

use foresight_bench::{fmt_duration, workload};
use foresight_data::{Table, TableSource};
use foresight_engine::{Foresight, InsightQuery};
use foresight_sketch::{CatalogConfig, Mergeable, SketchCatalog};
use serde_json::{json, Value};
use std::time::{Duration, Instant};

const ROWS: usize = 100_000;
const COLS: usize = 12;
const REPS: usize = 5;
const PER_CLASS: usize = 3;

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn bench<T>(mut f: impl FnMut() -> T) -> Duration {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    median(times)
}

fn split(table: &Table, parts: usize) -> Vec<Table> {
    let per = table.n_rows().div_ceil(parts);
    (0..parts)
        .map(|p| table.filter_rows(|r| r / per == p))
        .collect()
}

/// Build the sharded catalog for `parts` shards: total build wall-clock
/// (fan-out included) and the merge-only cost of folding prebuilt
/// per-shard catalogs.
fn measure_build(table: &Table, config: &CatalogConfig, parts: usize) -> Value {
    let shards = split(table, parts);
    let refs: Vec<&Table> = shards.iter().collect();

    let build = bench(|| SketchCatalog::build_sharded(&refs, config).expect("one config"));

    // merge cost alone: per-shard catalogs are prebuilt outside the clock
    let resolved = config.resolved_for_rows(table.n_rows());
    let mut offset = 0u64;
    let catalogs: Vec<SketchCatalog> = shards
        .iter()
        .map(|s| {
            let c = SketchCatalog::build_shard(s, &resolved, offset);
            offset += s.n_rows() as u64;
            c
        })
        .collect();
    let merge = bench(|| {
        let mut iter = catalogs.iter();
        let mut merged = iter.next().expect("at least one shard").clone();
        for c in iter {
            merged.merge(c).expect("same config");
        }
        merged
    });

    println!(
        "| {parts:>6} | {:>12} | {:>12} |",
        fmt_duration(build),
        fmt_duration(merge)
    );
    json!({
        "shards": parts,
        "build_ms": build.as_secs_f64() * 1e3,
        "merge_ms": merge.as_secs_f64() * 1e3,
    })
}

/// Approximate-mode query + carousel latency off a merged catalog vs a
/// single-pass one, with a result-agreement check before any timing.
fn measure_queries(table: &Table, config: &CatalogConfig, parts: usize) -> Value {
    let mut single = Foresight::new(table.clone());
    single.preprocess(config).expect("materialized build");

    let mut merged =
        Foresight::from_source(TableSource::sharded(split(table, parts)).expect("one schema"));
    merged.preprocess(config).expect("sharded build");

    let query = InsightQuery::class("linear-relationship").top_k(5);
    let a = single.query(&query).expect("single-pass query");
    let b = merged.query(&query).expect("merged query");
    assert_eq!(
        a.iter().map(|i| &i.attrs).collect::<Vec<_>>(),
        b.iter().map(|i| &i.attrs).collect::<Vec<_>>(),
        "merged catalog ranked differently from the single-pass build"
    );

    let single_query = bench(|| single.query(&query).expect("query"));
    let merged_query = bench(|| merged.query(&query).expect("query"));
    let single_carousels = bench(|| single.carousels(PER_CLASS).expect("carousels"));
    let merged_carousels = bench(|| merged.carousels(PER_CLASS).expect("carousels"));

    println!(
        "| {:<22} | {:>12} | {:>12} |",
        "top-5 linear query",
        fmt_duration(single_query),
        fmt_duration(merged_query)
    );
    println!(
        "| {:<22} | {:>12} | {:>12} |",
        "carousels (12 x top-3)",
        fmt_duration(single_carousels),
        fmt_duration(merged_carousels)
    );
    json!({
        "query_shards": parts,
        "single_pass_query_ms": single_query.as_secs_f64() * 1e3,
        "merged_query_ms": merged_query.as_secs_f64() * 1e3,
        "single_pass_carousels_ms": single_carousels.as_secs_f64() * 1e3,
        "merged_carousels_ms": merged_carousels.as_secs_f64() * 1e3,
    })
}

/// Cold sharded builds on a forced multi-worker pool with a parallel
/// config — the datapoint the sequential rows above can't show. The pool
/// is pinned explicitly (a 1-CPU container would otherwise fan out to a
/// single thread while claiming parallelism) and restored afterwards.
fn measure_parallel_build(table: &Table, config: &CatalogConfig) -> Value {
    const FORCED_THREADS: usize = 4;
    rayon::set_num_threads(FORCED_THREADS);
    let threads = rayon::current_num_threads();
    let par_config = CatalogConfig {
        parallel: true,
        ..config.clone()
    };
    let single = bench(|| SketchCatalog::build(table, &par_config));
    let shards = split(table, FORCED_THREADS);
    let refs: Vec<&Table> = shards.iter().collect();
    let sharded = bench(|| SketchCatalog::build_sharded(&refs, &par_config).expect("one config"));
    rayon::set_num_threads(0);

    println!(
        "| {:<22} | {:>12} | {:>12} |",
        format!("parallel build ({threads} thr)"),
        fmt_duration(single),
        fmt_duration(sharded)
    );
    json!({
        "threads": threads,
        "single_pass_build_ms": single.as_secs_f64() * 1e3,
        "sharded_build_ms": sharded.as_secs_f64() * 1e3,
    })
}

fn main() {
    let threads = foresight_bench::configure_threads();
    let (table, _) = workload(ROWS, COLS, 7);
    let config = CatalogConfig {
        hyperplane_k: Some(1024),
        ..Default::default()
    };

    println!("# Experiment T6: partition-native ingest");
    println!("# workload: {ROWS} rows x {COLS} numeric cols, rayon threads: {threads}\n");
    println!("| {:>6} | {:>12} | {:>12} |", "shards", "build", "merge");
    println!("|{}|", "-".repeat(38));
    let scaling: Vec<Value> = [1usize, 2, 4, 8]
        .iter()
        .map(|&parts| measure_build(&table, &config, parts))
        .collect();

    println!(
        "\n| {:<22} | {:>12} | {:>12} |",
        "workload", "single-pass", "merged"
    );
    println!("|{}|", "-".repeat(54));
    let queries = measure_queries(&table, &config, 4);

    println!(
        "\n| {:<22} | {:>12} | {:>12} |",
        "cold build", "single-pass", "4-shard"
    );
    println!("|{}|", "-".repeat(54));
    let parallel_build = measure_parallel_build(&table, &config);

    let report = json!({
        "experiment": "partition",
        "description": "sharded catalog build scaling, merge cost, and merged-vs-single-pass query latency",
        "rows": ROWS,
        "numeric_cols": COLS,
        "reps": REPS,
        "statistic": "median",
        "rayon_threads": threads,
        "build_scaling": scaling,
        "query_latency": queries,
        "parallel_build": parallel_build,
    });
    let path = "BENCH_partition.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_partition.json");
    println!("\nwrote {path}");
}
