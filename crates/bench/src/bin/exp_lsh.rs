//! **Experiment T10 — LSH-indexed candidate generation for wide tables.**
//! Measures the crossover where drawing pairwise candidates from LSH
//! bucket collisions beats the class's own O(d²) scan, on synthetic wide
//! tables (d ∈ {128, 512, 2048} numeric columns) with planted high-|ρ|
//! pairs.
//!
//! Per width, the same `linear-relationship` top-k query runs twice over
//! one preprocessed engine — once with the candidate strategy pinned to
//! [`CandidateStrategy::Exhaustive`] (recall 1.0, the d² scan), once under
//! the default knob (Auto resolves to LSH at these widths) — with the
//! score cache cleared before every timed repetition, so each measurement
//! is a cold generate → score → rank pass. Recall is reported two ways:
//! the fraction of the exhaustive run's top-k that the indexed run also
//! returned, and the fraction of *planted* |ρ| ≥ 0.9 pairs present in the
//! raw collision candidate set. Top-k is kept at 10 so the exhaustive
//! top-k is dominated by planted strong pairs — a deeper k bottoms out in
//! noise pairs (|ρ| ≈ 0.1) that banding is *designed* not to collide, and
//! would measure the workload's plant count, not the index's recall.
//!
//! Emits `BENCH_lsh.json` into the working directory (run from the
//! repository root). With `FORESIGHT_BENCH_GATE=1` the run enforces the
//! regression gates — indexed generation ≥ [`MIN_SPEEDUP_AT_2048`]× over
//! the exhaustive scan at d = 2048, top-k recall ≥ [`MIN_RECALL`] at the
//! default knob on every width — and exits non-zero on failure (the CI
//! hook).

use foresight_bench::{fmt_duration, time};
use foresight_data::datasets::{synth, SynthConfig};
use foresight_engine::{CandidateStrategy, Foresight, InsightQuery};
use foresight_insight::InsightInstance;
use foresight_sketch::CatalogConfig;
use serde_json::{json, Value};
use std::collections::BTreeSet;
use std::time::Duration;

const ROWS: usize = 1_024;
const WIDTHS: [usize; 3] = [128, 512, 2_048];
const TOP_K: usize = 10;
/// Planted pairs at or above this latent |ρ| count toward candidate-level
/// recall (weaker plants are not reliably in the exact top-k either).
const PLANT_FLOOR: f64 = 0.9;

/// Gate: required speedup (exhaustive / indexed) at the widest table.
const MIN_SPEEDUP_AT_2048: f64 = 2.0;
/// Gate: top-k recall floor for the default knob, every width.
const MIN_RECALL: f64 = 0.9;

fn reps_for(d: usize) -> usize {
    if d >= 2_048 {
        3
    } else {
        5
    }
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// Runs `query` under `strategy`, clearing the score cache before every
/// repetition so each timing is a cold generate → score → rank pass.
fn timed_query(
    engine: &mut Foresight,
    strategy: CandidateStrategy,
    query: &InsightQuery,
    reps: usize,
) -> (Vec<InsightInstance>, Duration) {
    engine.set_candidate_strategy(strategy);
    let mut times = Vec::with_capacity(reps);
    let mut out = Vec::new();
    for _ in 0..reps {
        engine.clear_score_cache();
        let (results, elapsed) = time(|| engine.query(query).expect("query"));
        times.push(elapsed);
        out = results;
    }
    (out, median(times))
}

/// Attribute-tuple key set of a result list, for overlap recall.
fn result_keys(results: &[InsightInstance]) -> BTreeSet<Vec<usize>> {
    results.iter().map(|r| r.attrs.indices()).collect()
}

fn main() {
    let threads = foresight_bench::configure_threads();
    println!("# Experiment T10: LSH candidate generation vs the d\u{b2} scan");
    println!("# workload: {ROWS} rows, d in {WIDTHS:?} numeric cols, planted |rho| pairs, top-{TOP_K}, rayon threads: {threads}\n");
    println!(
        "| {:>5} | {:>12} | {:>12} | {:>8} | {:>14} | {:>7} | {:>7} |",
        "d", "exhaustive", "lsh (auto)", "speedup", "collisions", "recall", "planted"
    );
    println!("|{}|", "-".repeat(86));

    let mut rows = Vec::new();
    let mut gate_speedup_2048 = 0.0f64;
    let mut min_topk_recall = 1.0f64;

    for (i, &d) in WIDTHS.iter().enumerate() {
        let (table, truth) = synth(&SynthConfig {
            rows: ROWS,
            numeric_cols: d,
            categorical_cols: 0,
            correlated_fraction: 0.25,
            rho_range: (0.92, 0.99),
            seed: 40 + i as u64,
            ..Default::default()
        });
        let mut engine = Foresight::new(table);
        engine
            .preprocess(&CatalogConfig::default())
            .expect("preprocess");

        let index = engine.core().lsh_index().expect("catalog built");
        let tables = index.config().tables;
        let (collision_pairs, tables_probed) = {
            let (pairs, probed) = index.candidate_pairs(usize::MAX);
            (pairs.len(), probed)
        };
        // candidate-level recall of planted strong pairs: every (i, j)
        // planted at |rho| >= PLANT_FLOOR should collide in some table
        let collision_set: BTreeSet<(usize, usize)> =
            index.candidate_pairs(usize::MAX).0.into_iter().collect();
        let strong: Vec<(usize, usize)> = truth
            .correlated_pairs
            .iter()
            .filter(|&&(_, _, rho)| rho.abs() >= PLANT_FLOOR)
            .map(|&(a, b, _)| (a.min(b), a.max(b)))
            .collect();
        let planted_hit = strong
            .iter()
            .filter(|pair| collision_set.contains(pair))
            .count();
        let planted_recall = if strong.is_empty() {
            1.0
        } else {
            planted_hit as f64 / strong.len() as f64
        };

        let query = InsightQuery::class("linear-relationship").top_k(TOP_K);
        let reps = reps_for(d);
        let (exact_results, exhaustive_t) =
            timed_query(&mut engine, CandidateStrategy::Exhaustive, &query, reps);
        let (lsh_results, lsh_t) = timed_query(&mut engine, CandidateStrategy::Auto, &query, reps);

        let exact_keys = result_keys(&exact_results);
        let lsh_keys = result_keys(&lsh_results);
        let overlap = exact_keys.intersection(&lsh_keys).count();
        let topk_recall = if exact_keys.is_empty() {
            1.0
        } else {
            overlap as f64 / exact_keys.len() as f64
        };
        min_topk_recall = min_topk_recall.min(topk_recall);

        let speedup = exhaustive_t.as_secs_f64() / lsh_t.as_secs_f64();
        if d == 2_048 {
            gate_speedup_2048 = speedup;
        }
        let total_pairs = d * (d - 1) / 2;
        println!(
            "| {d:>5} | {:>12} | {:>12} | {speedup:>7.2}x | {:>6} of {:>5}\u{b2} | {topk_recall:>7.3} | {planted_recall:>7.3} |",
            fmt_duration(exhaustive_t),
            fmt_duration(lsh_t),
            collision_pairs,
            d,
        );

        rows.push(json!({
            "numeric_cols": d,
            "rows": ROWS,
            "reps": reps,
            "lsh_tables": tables,
            "tables_probed": tables_probed,
            "collision_pairs": collision_pairs,
            "total_pairs": total_pairs,
            "candidate_fraction": collision_pairs as f64 / total_pairs as f64,
            "exhaustive_ms": exhaustive_t.as_secs_f64() * 1e3,
            "lsh_ms": lsh_t.as_secs_f64() * 1e3,
            "speedup": speedup,
            "topk_recall": topk_recall,
            "planted_strong_pairs": strong.len(),
            "planted_recall": planted_recall,
        }));
    }

    let gate_enforced = std::env::var("FORESIGHT_BENCH_GATE").is_ok_and(|v| v == "1");
    let speedup_pass = gate_speedup_2048 >= MIN_SPEEDUP_AT_2048;
    let recall_pass = min_topk_recall >= MIN_RECALL;
    let pass = speedup_pass && recall_pass;

    let crossover = rows
        .iter()
        .find(|r| r["speedup"].as_f64().unwrap_or(0.0) >= 1.0)
        .and_then(|r| r["numeric_cols"].as_u64());

    let report = json!({
        "experiment": "lsh",
        "description": "LSH bucket-collision candidate generation vs the exhaustive d\u{b2} scan on wide tables, top-k recall at the default knob",
        "rows": ROWS,
        "top_k": TOP_K,
        "statistic": "median",
        "rayon_threads": threads,
        "widths": Value::Array(rows),
        "crossover_cols": crossover,
        "gates": {
            "min_speedup_at_2048": MIN_SPEEDUP_AT_2048,
            "min_topk_recall": MIN_RECALL,
            "speedup_at_2048": gate_speedup_2048,
            "min_observed_topk_recall": min_topk_recall,
            "enforced": gate_enforced,
            "pass": pass,
        },
    });
    let path = "BENCH_lsh.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_lsh.json");
    match crossover {
        Some(d) => println!("\nwrote {path} (crossover at d = {d})"),
        None => println!("\nwrote {path} (no crossover observed)"),
    }

    if !pass {
        let msg = format!(
            "regression gate: speedup at d=2048 {gate_speedup_2048:.2}x \
             (need >= {MIN_SPEEDUP_AT_2048}x), min top-k recall {min_topk_recall:.3} \
             (floor {MIN_RECALL})"
        );
        if gate_enforced {
            eprintln!("FAIL {msg}");
            std::process::exit(1);
        }
        println!("warn (gate not enforced): {msg}");
    } else {
        println!(
            "gates pass: speedup at d=2048 {gate_speedup_2048:.2}x, min top-k recall {min_topk_recall:.3}"
        );
    }
}
