//! **Experiment T2 — preprocessing speedup.** The paper claims "3×–4×
//! speedup in preprocessing" without parallelism (§3). We compare:
//!
//! * **exact preprocessing** — everything needed to answer insight queries
//!   exactly: per-column moments + sorted copies, and the full pairwise
//!   Pearson *and* Spearman matrices (`O(|B|²·n)`), vs
//! * **sketch preprocessing** — the catalog build (`O(|B|·n·k)`): moments,
//!   KLL, reservoirs, heavy hitters, entropy registers, and both hyperplane
//!   families.
//!
//! The exact path is quadratic in the attribute count while the sketch path
//! is linear, so the speedup grows with `|B|` — the paper's 3–4× band is
//! the "attributes in the hundreds" regime. A rayon-parallel catalog column
//! is included as the paper's future-work ablation.

use foresight_bench::{exact_preprocess, fmt_duration, time, workload};
use foresight_sketch::{CatalogConfig, SketchCatalog};

fn main() {
    println!("# Experiment T2: preprocessing time, exact vs sketch (paper claim: 3-4x)\n");
    println!(
        "| {:>8} | {:>5} | {:>10} | {:>10} | {:>8} | {:>12} |",
        "rows", "cols", "exact", "sketch", "speedup", "sketch (par)"
    );
    println!("|----------|-------|------------|------------|----------|--------------|");

    for &(rows, cols) in &[
        (50_000usize, 50usize),
        (50_000, 100),
        (50_000, 200),
        (20_000, 400),
        (20_000, 800),
    ] {
        let (table, _) = workload(rows, cols, 21);

        let (_, exact_time) = time(|| exact_preprocess(&table));

        let seq_cfg = CatalogConfig::default();
        let (catalog, sketch_time) = time(|| SketchCatalog::build(&table, &seq_cfg));

        let par_cfg = CatalogConfig {
            parallel: true,
            ..Default::default()
        };
        let (_, par_time) = time(|| SketchCatalog::build(&table, &par_cfg));

        let speedup = exact_time.as_secs_f64() / sketch_time.as_secs_f64();
        println!(
            "| {rows:>8} | {cols:>5} | {:>10} | {:>10} | {speedup:>7.2}x | {:>12} |",
            fmt_duration(exact_time),
            fmt_duration(sketch_time),
            fmt_duration(par_time),
        );
        // keep the catalog alive so the build isn't optimized away
        assert!(catalog.rows() == rows);
    }

    println!("\n(k follows the paper's log²n rule; 'sketch (par)' is the rayon ablation)");
}
