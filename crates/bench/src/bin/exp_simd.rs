//! **Experiment T7 — vectorized kernels.** Micro-benchmarks the lane-split
//! moment/correlation kernels and the blocked hyperplane accumulation
//! against their scalar oracles (same inputs, per-thread kernel-mode
//! switch), then measures the end-to-end cold paths those kernels serve:
//! a cold 100K×12 catalog build and cold carousel assembly at 20K rows.
//!
//! The moment/correlation micros run on [`MICRO_ROWS`]-row (L2-resident)
//! column slices: at full 100K-row columns both the scalar and vectorized
//! passes saturate single-stream DRAM bandwidth, so the micro would report
//! the machine's memory system, not the kernels. The end-to-end build rows
//! keep the memory-bound full-size reality.
//!
//! Emits `BENCH_simd.json` into the working directory (run from the
//! repository root). With `FORESIGHT_BENCH_GATE=1` the run enforces the
//! regression gates — median kernel speedup ≥ [`MIN_KERNEL_SPEEDUP`] on the
//! moment and correlation kernels, vectorized cold build ≤
//! [`MAX_COLD_BUILD_MS`] — and exits non-zero on failure (the CI hook).

use foresight_bench::{fmt_duration, workload};
use foresight_engine::Foresight;
use foresight_sketch::{CatalogConfig, SketchCatalog};
use foresight_stats::kernel::{self, KernelMode};
use foresight_stats::moments::Moments;
use serde_json::{json, Value};
use std::time::{Duration, Instant};

const ROWS: usize = 100_000;
const COLS: usize = 12;
/// Micro-kernel slice length: 8192 rows = 64 KiB per column, so a pair of
/// operands sits in L2 and the timing isolates compute throughput.
const MICRO_ROWS: usize = 8_192;
const CAROUSEL_ROWS: usize = 20_000;
const PER_CLASS: usize = 3;
const MICRO_REPS: usize = 31;
const BUILD_REPS: usize = 3;

/// Gate: required median speedup (scalar / vectorized) on the moment and
/// correlation micro-kernels.
const MIN_KERNEL_SPEEDUP: f64 = 3.0;
/// Gate: ceiling for the vectorized cold 100K×12 catalog build, pinned
/// below the 1.7 s scalar-era `BENCH_partition.json` baseline with headroom
/// for CI-runner jitter.
const MAX_COLD_BUILD_MS: f64 = 1_400.0;

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn bench<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    median(times)
}

/// Times one workload under both kernel modes and reports the speedup.
fn versus<T>(name: &str, reps: usize, mut f: impl FnMut() -> T) -> (Value, f64) {
    let vectorized = kernel::with_mode(KernelMode::Vectorized, || bench(reps, &mut f));
    let scalar = kernel::with_mode(KernelMode::Scalar, || bench(reps, &mut f));
    let speedup = scalar.as_secs_f64() / vectorized.as_secs_f64();
    println!(
        "| {name:<24} | {:>12} | {:>12} | {speedup:>7.2}x |",
        fmt_duration(vectorized),
        fmt_duration(scalar)
    );
    (
        json!({
            "vectorized_ms": vectorized.as_secs_f64() * 1e3,
            "scalar_ms": scalar.as_secs_f64() * 1e3,
            "speedup": speedup,
        }),
        speedup,
    )
}

fn main() {
    let threads = foresight_bench::configure_threads();
    let (table, _) = workload(ROWS, COLS, 7);
    let cols: Vec<&[f64]> = table
        .numeric_indices()
        .iter()
        .map(|&i| table.numeric(i).expect("schema index").values())
        .collect();

    println!("# Experiment T7: vectorized kernels vs scalar oracle");
    println!("# workload: {ROWS} rows x {COLS} numeric cols, rayon threads: {threads}\n");
    println!(
        "| {:<24} | {:>12} | {:>12} | {:>8} |",
        "kernel", "vectorized", "scalar", "speedup"
    );
    println!("|{}|", "-".repeat(70));

    let micro: Vec<&[f64]> = cols.iter().map(|c| &c[..MICRO_ROWS.min(c.len())]).collect();

    // moment kernel: mean/m2/m3/m4/min/max over every column slice
    let (moments_json, moments_speedup) = versus("moments (12 cols x 8K)", MICRO_REPS, || {
        micro
            .iter()
            .map(|c| Moments::from_slice(c))
            .collect::<Vec<_>>()
    });

    // correlation kernel: the fused centered covariance pass, all pairs
    let (pearson_json, pearson_speedup) = versus("pearson (66 pairs x 8K)", MICRO_REPS, || {
        let mut acc = 0.0f64;
        for i in 0..micro.len() {
            for j in (i + 1)..micro.len() {
                acc += foresight_stats::correlation::pearson_complete(micro[i], micro[j]);
            }
        }
        acc
    });

    // hyperplane accumulation: blocked shared-component kernel (reported,
    // not speedup-gated — the acceptance gate names moments + correlation)
    let hp = foresight_sketch::hyperplane::SharedHyperplanes::new(
        foresight_sketch::hyperplane::HyperplaneConfig {
            k: 256,
            seed: 7,
            ..Default::default()
        },
    );
    let hp_cols: Vec<&[f64]> = cols
        .iter()
        .map(|c| &c[..CAROUSEL_ROWS.min(c.len())])
        .collect();
    let (hyperplane_json, hyperplane_speedup) = versus("hyperplane (k=256, 20K)", 5, || {
        hp.accumulate_columns(&hp_cols, 0)
    });

    // end to end: cold catalog build at the BENCH_partition workload
    let build_config = CatalogConfig {
        hyperplane_k: Some(1024),
        ..Default::default()
    };
    let (build_json, build_speedup) = versus("cold build 100Kx12", BUILD_REPS, || {
        SketchCatalog::build(&table, &build_config)
    });
    let build_vectorized_ms = build_json["vectorized_ms"].as_f64().expect("measured");

    // end to end: cold carousel assembly — preprocessed engines prepared
    // outside the clock, each timed on its first (uncached) carousel call
    let (small_table, _) = workload(CAROUSEL_ROWS, COLS, 11);
    let engines: Vec<Foresight> = (0..BUILD_REPS)
        .map(|_| {
            let mut e = Foresight::new(small_table.clone());
            e.preprocess(&CatalogConfig::default()).expect("preprocess");
            e
        })
        .collect();
    let mut next = 0usize;
    let cold_carousel = bench(BUILD_REPS, || {
        let out = engines[next].carousels(PER_CLASS).expect("carousels");
        next += 1;
        out
    });
    println!(
        "| {:<24} | {:>12} | {:>12} | {:>8} |",
        "cold carousel 20Kx12",
        fmt_duration(cold_carousel),
        "-",
        "-"
    );

    let gate_enforced = std::env::var("FORESIGHT_BENCH_GATE").is_ok_and(|v| v == "1");
    let kernel_gate_pass =
        moments_speedup >= MIN_KERNEL_SPEEDUP && pearson_speedup >= MIN_KERNEL_SPEEDUP;
    let build_gate_pass = build_vectorized_ms <= MAX_COLD_BUILD_MS;
    let pass = kernel_gate_pass && build_gate_pass;

    let report = json!({
        "experiment": "simd",
        "description": "lane-split kernel micro-benches vs scalar oracle, plus end-to-end cold build and cold carousel",
        "rows": ROWS,
        "numeric_cols": COLS,
        "micro_rows": MICRO_ROWS,
        "micro_reps": MICRO_REPS,
        "build_reps": BUILD_REPS,
        "statistic": "median",
        "rayon_threads": threads,
        "kernels": {
            "moments": moments_json,
            "pearson": pearson_json,
            "hyperplane_accumulate": hyperplane_json,
        },
        "end_to_end": {
            "cold_build_100kx12": build_json,
            "cold_carousel_20kx12_ms": cold_carousel.as_secs_f64() * 1e3,
        },
        "gates": {
            "min_kernel_speedup": MIN_KERNEL_SPEEDUP,
            "max_cold_build_ms": MAX_COLD_BUILD_MS,
            "enforced": gate_enforced,
            "pass": pass,
        },
    });
    let path = "BENCH_simd.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_simd.json");
    println!("\nwrote {path} (hyperplane {hyperplane_speedup:.2}x, build {build_speedup:.2}x)");

    if !pass {
        let msg = format!(
            "regression gate: moments {moments_speedup:.2}x / pearson {pearson_speedup:.2}x \
             (need >= {MIN_KERNEL_SPEEDUP}x), cold build {build_vectorized_ms:.0} ms \
             (ceiling {MAX_COLD_BUILD_MS:.0} ms)"
        );
        if gate_enforced {
            eprintln!("FAIL {msg}");
            std::process::exit(1);
        }
        println!("warn (gate not enforced): {msg}");
    } else {
        println!("gates pass: moments {moments_speedup:.2}x, pearson {pearson_speedup:.2}x, build {build_vectorized_ms:.0} ms");
    }
}
