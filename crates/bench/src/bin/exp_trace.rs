//! **Experiment T8 — request-tracing overhead.**
//!
//! The tracing layer promises three price points on the warm serving path:
//! compiled out it vanishes entirely, sampled out it costs one branch on
//! two session-local integers (plus one relaxed load of the slow-query
//! threshold), and a *traced* query pays for its span tree alone. This
//! experiment measures the middle promise on the paper's warm-path
//! workload — the OECD dataset with a hot score cache, the same query mix
//! `exp_telemetry` drains — and **fails (exit 1) if 1%-sampled sessions
//! are more than 3% slower** than sessions with sampling off. The
//! 100%-traced configuration is reported alongside as the informational
//! worst case (every query builds and exports a full span tree into the
//! trace ring).
//!
//! Built without `--features trace`, sampling is compiled away; the run
//! reports the baseline and `trace_compiled: false`.
//!
//! # Estimator
//!
//! Same spine as `exp_telemetry` (short ~1 ms drains, min of 12 per
//! side, median of per-round ratios), with two additions this comparison
//! needs:
//!
//! - **ABBA rounds.** Each round measures off/sampled/sampled/off and
//!   averages the two ratios. The off-then-sampled ordering alone leaves
//!   a slow CPU-state drift in the difference (run-to-run medians
//!   wandered by ±1.5%, several times the effect under test); the
//!   mirrored second pair cancels any drift that is locally linear.
//! - **Rotating sample phase.** A 1%-sampled drain of 96 queries traces
//!   exactly one query, and the seed's phase decides *which*. Per-query
//!   tracing cost spans a ~4× range across the mix, so a fixed phase
//!   would measure one arbitrary query's cost forever; rotating the seed
//!   per round makes the median reflect the workload.
//!
//! Note the measured 1% overhead is dominated not by the traced query's
//! own span building (1–6 µs hot) but by running that machinery
//! cache-cold once per drain — which is exactly what sparse sampling
//! costs in production, so the estimator keeps it.
//!
//! Emits `BENCH_trace.json` (run from the repository root).
//!
//! ```sh
//! cargo run --release -p foresight-bench --features trace --bin exp_trace
//! ```

use foresight_data::{datasets, TableSource};
use foresight_engine::{CoreBuilder, EngineCore, InsightQuery};
use foresight_sketch::CatalogConfig;
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Queries per drain: the full class roster round-robined with varying k,
/// sized so one drain is ~1 ms.
const QUERIES: usize = 96;
/// ABBA measurement rounds for the gated off-vs-1% comparison.
const ROUNDS: usize = 31;
/// ABBA rounds for the informational off-vs-100% comparison.
const TRACED_ROUNDS: usize = 15;
/// Drains per configuration per round; each keeps its minimum.
const MINS_OF: usize = 12;
/// The 1%-sampling overhead regression threshold, in percent.
const MAX_OVERHEAD_PCT: f64 = 3.0;

fn query_mix(core: &EngineCore) -> Vec<InsightQuery> {
    let classes = core.registry().classes();
    (0..QUERIES)
        .map(|i| InsightQuery::class(classes[i % classes.len()].id()).top_k(1 + i % 5))
        .collect()
}

/// Wall-clock for one session at the given sampling rate to drain the mix
/// (score cache warm). Rate 0 disables sampling — the untraced fast path.
fn drain(core: &Arc<EngineCore>, queries: &[InsightQuery], rate: f64, seed: u64) -> Duration {
    let mut session = core.handle();
    session.set_parallel(false);
    session.set_trace_sampling(rate, seed);
    let t0 = Instant::now();
    let mut total = 0usize;
    for q in queries {
        total += session.query(q).expect("query").len();
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(total);
    elapsed
}

/// The cleanest of `MINS_OF` back-to-back drains: scheduler noise is
/// additive, so the minimum is the least-disturbed run.
fn min_drain(core: &Arc<EngineCore>, queries: &[InsightQuery], rate: f64, seed: u64) -> Duration {
    (0..MINS_OF)
        .map(|_| drain(core, queries, rate, seed))
        .min()
        .expect("MINS_OF > 0")
}

fn median(ratios: &mut [f64]) -> f64 {
    ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    ratios[ratios.len() / 2]
}

fn main() {
    let compiled_in = cfg!(feature = "trace");
    println!("# Experiment T8: tracing overhead on warm OECD queries");
    println!(
        "# trace feature compiled {}; {QUERIES} queries/drain, median of {ROUNDS} \
         ABBA round ratios, min of {MINS_OF} drains per side\n",
        if compiled_in { "IN" } else { "OUT" }
    );

    let mut builder = CoreBuilder::new(TableSource::materialized(datasets::oecd()));
    builder
        .preprocess(&CatalogConfig::default())
        .expect("raw table present");
    let core = builder.freeze();
    let queries = query_mix(&core);

    // warm the score cache (and every lazy memo) before measuring
    for _ in 0..20 {
        drain(&core, &queries, 0.0, 0);
    }

    // each ABBA round yields a drift-cancelled *ratio* against its own
    // adjacent baselines, so a round measured in a slow CPU phase (or one
    // drifting between phases) normalizes that phase out
    let abba = |rate: f64, rounds: usize| -> (Vec<f64>, Duration, Duration) {
        let mut ratios = Vec::with_capacity(rounds);
        let mut best_off = Duration::MAX;
        let mut best_on = Duration::MAX;
        for round in 0..rounds {
            // rotate which query the sample lands on (phase = seed % 100,
            // kept under QUERIES so a 1% drain traces exactly one query)
            let seed = (round as u64 * 13) % QUERIES as u64;
            let o1 = min_drain(&core, &queries, 0.0, seed);
            let s1 = min_drain(&core, &queries, rate, seed);
            let s2 = min_drain(&core, &queries, rate, seed);
            let o2 = min_drain(&core, &queries, 0.0, seed);
            best_off = best_off.min(o1).min(o2);
            best_on = best_on.min(s1).min(s2);
            ratios.push(
                (s1.as_secs_f64() / o1.as_secs_f64() + s2.as_secs_f64() / o2.as_secs_f64()) / 2.0
                    - 1.0,
            );
        }
        (ratios, best_off, best_on)
    };
    let (mut sampled_ratios, best_off, best_sampled) = abba(0.01, ROUNDS);
    let (mut traced_ratios, _, best_traced) = abba(1.0, TRACED_ROUNDS);

    let us_q = |d: Duration| d.as_secs_f64() * 1e6 / QUERIES as f64;
    let sampled_pct = median(&mut sampled_ratios) * 100.0;
    let traced_pct = median(&mut traced_ratios) * 100.0;
    let pass = !compiled_in || sampled_pct <= MAX_OVERHEAD_PCT;

    println!("| {:<22} | {:>12} |", "configuration", "us/query");
    println!("|{}|", "-".repeat(39));
    println!("| {:<22} | {:>12.3} |", "sampling off", us_q(best_off));
    println!("| {:<22} | {:>12.3} |", "1% sampled", us_q(best_sampled));
    println!("| {:<22} | {:>12.3} |", "100% traced", us_q(best_traced));
    println!(
        "\n1% sampling overhead: {sampled_pct:+.2}% (threshold {MAX_OVERHEAD_PCT}%) → {}",
        if pass { "PASS" } else { "FAIL" }
    );
    println!("100% tracing overhead: {traced_pct:+.2}% (informational)");

    let report = json!({
        "experiment": "trace",
        "description": "request-tracing overhead on warm-path OECD queries: per-session sampling off vs 1% sampled (gated) vs 100% traced (informational)",
        "trace_compiled": compiled_in,
        "queries_per_drain": QUERIES,
        "rounds": ROUNDS,
        "traced_rounds": TRACED_ROUNDS,
        "mins_of": MINS_OF,
        "estimator": "median of per-round ABBA (config/off - 1) ratios, min-of-12 drains per side, sampling phase rotated per round",
        "off_us_per_query": us_q(best_off),
        "sampled_1pct_us_per_query": us_q(best_sampled),
        "traced_100pct_us_per_query": us_q(best_traced),
        "sampled_1pct_overhead_pct": sampled_pct,
        "traced_100pct_overhead_pct": traced_pct,
        "threshold_pct": MAX_OVERHEAD_PCT,
        "pass": pass,
    });
    let path = "BENCH_trace.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_trace.json");
    println!("wrote {path}");

    if !pass {
        eprintln!(
            "tracing overhead regression: {sampled_pct:.2}% > {MAX_OVERHEAD_PCT}% \
             at 1% sampling on warm queries"
        );
        std::process::exit(1);
    }
}
