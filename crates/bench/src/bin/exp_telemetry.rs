//! **Experiment T7 — telemetry instrumentation overhead.**
//!
//! The telemetry layer promises to be free when compiled out and nearly
//! free when compiled in: a whole query costs four TSC reads, a handful of
//! relaxed atomic adds, and one read-locked class-counter bump. This
//! experiment measures the promise on the paper's warm-path workload — the
//! OECD dataset with a hot score cache, the same query shape
//! `exp_concurrent` drains — and **fails (exit 1) if instrumented queries
//! are more than 3% slower** than the uninstrumented path.
//!
//! Built **with** `--features telemetry`, the binary compares recording
//! enabled vs. runtime-disabled (the disabled path is one relaxed bool
//! load per timer — the compiled-out path minus exactly that load, so the
//! measured gap is an upper bound on the feature's cost). Built without
//! the feature, both paths are no-ops; the run reports the baseline and
//! `telemetry_compiled: false`.
//!
//! # Estimator
//!
//! The effect under test (~100–300 ns/query) is far below this kind of
//! host's scheduling noise (occasional ±1 µs/query swings per drain), so
//! naive min-over-reps comparisons of two long runs do not converge.
//! Instead the drain is kept *short* (~1 ms — short enough that a min over
//! a dozen repetitions finds a preemption-free window), enabled/disabled
//! sides are measured in adjacent pairs (cancelling slow CPU-state drift,
//! with each pair's slowdown normalized against its *own* baseline), and
//! the reported overhead is the **median of the per-pair ratios** — robust
//! to the heavy-tailed spikes that survive everything else.
//!
//! Emits `BENCH_telemetry.json` (run from the repository root) with the
//! per-stage latency snapshot of the instrumented run folded in.
//!
//! ```sh
//! cargo run --release -p foresight-bench --features telemetry --bin exp_telemetry
//! ```

use foresight_data::{datasets, TableSource};
use foresight_engine::{CoreBuilder, EngineCore, InsightQuery};
use foresight_sketch::CatalogConfig;
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Queries per drain: the full class roster round-robined with varying k
/// (the `exp_concurrent` mix), sized so one drain is ~1 ms.
const QUERIES: usize = 96;
/// Enabled/disabled drain pairs measured.
const PAIRS: usize = 31;
/// Drains per side of a pair; each side keeps its minimum.
const MINS_OF: usize = 12;
/// The overhead regression threshold, in percent.
const MAX_OVERHEAD_PCT: f64 = 3.0;

fn query_mix(core: &EngineCore) -> Vec<InsightQuery> {
    let classes = core.registry().classes();
    (0..QUERIES)
        .map(|i| InsightQuery::class(classes[i % classes.len()].id()).top_k(1 + i % 5))
        .collect()
}

/// Wall-clock for one session to drain the mix (score cache warm).
fn drain(core: &Arc<EngineCore>, queries: &[InsightQuery]) -> Duration {
    let mut session = core.handle();
    session.set_parallel(false);
    let t0 = Instant::now();
    let mut total = 0usize;
    for q in queries {
        total += session.query(q).expect("query").len();
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(total);
    elapsed
}

/// The cleanest of `MINS_OF` back-to-back drains: scheduler noise is
/// additive, so the minimum is the least-disturbed run.
fn min_drain(core: &Arc<EngineCore>, queries: &[InsightQuery]) -> Duration {
    (0..MINS_OF)
        .map(|_| drain(core, queries))
        .min()
        .expect("MINS_OF > 0")
}

fn main() {
    let compiled_in = cfg!(feature = "telemetry");
    println!("# Experiment T7: telemetry overhead on warm OECD queries");
    println!(
        "# telemetry feature compiled {}; {QUERIES} queries/drain, median of {PAIRS} \
         interleaved pair ratios, min of {MINS_OF} drains per side\n",
        if compiled_in { "IN" } else { "OUT" }
    );

    let mut builder = CoreBuilder::new(TableSource::materialized(datasets::oecd()));
    builder
        .preprocess(&CatalogConfig::default())
        .expect("raw table present");
    let core = builder.freeze();
    let queries = query_mix(&core);

    // warm the score cache (and every lazy memo) before measuring
    for _ in 0..20 {
        drain(&core, &queries);
    }

    // each pair yields a *ratio* (e − d) / d, so a pair measured in a slow
    // CPU phase normalizes against that same phase's baseline
    let mut ratios: Vec<f64> = Vec::with_capacity(PAIRS);
    let mut deltas_ns: Vec<i64> = Vec::with_capacity(PAIRS);
    let mut best_enabled = Duration::MAX;
    let mut best_disabled = Duration::MAX;
    for _ in 0..PAIRS {
        core.metrics().set_enabled(true);
        let e = min_drain(&core, &queries);
        core.metrics().set_enabled(false);
        let d = min_drain(&core, &queries);
        best_enabled = best_enabled.min(e);
        best_disabled = best_disabled.min(d);
        deltas_ns.push(e.as_nanos() as i64 - d.as_nanos() as i64);
        ratios.push(e.as_secs_f64() / d.as_secs_f64() - 1.0);
    }
    core.metrics().set_enabled(true);
    let snapshot = core.metrics_snapshot();

    deltas_ns.sort_unstable();
    ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median_delta_ns_q = deltas_ns[PAIRS / 2] as f64 / QUERIES as f64;
    let enabled_us_q = best_enabled.as_secs_f64() * 1e6 / QUERIES as f64;
    let disabled_us_q = best_disabled.as_secs_f64() * 1e6 / QUERIES as f64;
    let overhead_pct = ratios[PAIRS / 2] * 100.0;
    let pass = !compiled_in || overhead_pct <= MAX_OVERHEAD_PCT;

    println!("| {:<22} | {:>12} |", "path", "us/query");
    println!("|{}|", "-".repeat(39));
    println!("| {:<22} | {:>12.3} |", "recording enabled", enabled_us_q);
    println!("| {:<22} | {:>12.3} |", "recording disabled", disabled_us_q);
    println!(
        "\nmedian instrumentation cost: {median_delta_ns_q:+.0} ns/query \
         → {overhead_pct:+.2}% (threshold {MAX_OVERHEAD_PCT}%) → {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let report = json!({
        "experiment": "telemetry",
        "description": "instrumentation overhead on warm-path OECD queries: recording enabled vs runtime-disabled (upper bound on the compiled-out gap)",
        "telemetry_compiled": compiled_in,
        "queries_per_drain": QUERIES,
        "pairs": PAIRS,
        "mins_of": MINS_OF,
        "estimator": "median of per-pair (enabled/disabled - 1) ratios, min-of-12 drains per side",
        "enabled_us_per_query": enabled_us_q,
        "disabled_us_per_query": disabled_us_q,
        "overhead_ns_per_query": median_delta_ns_q,
        "overhead_pct": overhead_pct,
        "threshold_pct": MAX_OVERHEAD_PCT,
        "pass": pass,
        "snapshot": serde_json::to_value(&snapshot).expect("snapshot serializes"),
    });
    let path = "BENCH_telemetry.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_telemetry.json");
    println!("wrote {path}");

    if !pass {
        eprintln!(
            "telemetry overhead regression: {overhead_pct:.2}% > {MAX_OVERHEAD_PCT}% \
             on warm queries"
        );
        std::process::exit(1);
    }
}
