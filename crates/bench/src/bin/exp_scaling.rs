//! **Experiment T4 — complexity scaling.** The paper's §3 cost model:
//! sketch construction is `O(|B|·n·k)` and all-pairs correlation estimation
//! is `O(|B|²·k)`, vs `O(|B|²·n)` exactly. This experiment sweeps `|B|` at
//! fixed `n` (quadratic-vs-linear build) and sweeps `n` at fixed `|B|`
//! (estimation cost independent of `n`), printing the curves the model
//! predicts.

use foresight_bench::{fmt_duration, time, workload};
use foresight_sketch::{CatalogConfig, SketchCatalog};
use foresight_stats::correlation::pearson_complete;

fn all_pairs_exact(cols: &[&[f64]]) -> f64 {
    let mut acc = 0.0;
    for i in 0..cols.len() {
        for j in (i + 1)..cols.len() {
            acc += pearson_complete(cols[i], cols[j]).abs();
        }
    }
    acc
}

fn all_pairs_sketch(catalog: &SketchCatalog) -> f64 {
    let idx = catalog.numeric_indices();
    let mut acc = 0.0;
    for a in 0..idx.len() {
        for b in (a + 1)..idx.len() {
            acc += catalog.correlation(idx[a], idx[b]).expect("built").abs();
        }
    }
    acc
}

fn main() {
    println!("# Experiment T4: scaling of the correlation pipeline\n");

    println!("## T4a — sweep |B| at n = 20 000 (build linear vs query quadratic)\n");
    println!(
        "| {:>5} | {:>12} | {:>14} | {:>14} | {:>8} |",
        "|B|", "sketch build", "est all pairs", "exact all pairs", "speedup"
    );
    println!("|-------|--------------|----------------|----------------|----------|");
    for &cols in &[25usize, 50, 100, 200, 400] {
        let (table, _) = workload(20_000, cols, 13);
        let col_refs: Vec<&[f64]> = table
            .numeric_indices()
            .iter()
            .map(|&i| table.numeric(i).unwrap().values())
            .collect();
        let (catalog, t_build) = time(|| SketchCatalog::build(&table, &CatalogConfig::default()));
        let (s1, t_est) = time(|| all_pairs_sketch(&catalog));
        let (s2, t_exact) = time(|| all_pairs_exact(&col_refs));
        // keep both sums alive so the timed loops cannot be optimized out
        // (no equality assertion: near-zero pairs dominate the |rho| sums and
        // their estimator noise floor is ~1/sqrt(k) per pair)
        assert!(s1.is_finite() && s2.is_finite());
        println!(
            "| {cols:>5} | {:>12} | {:>14} | {:>14} | {:>7.1}x |",
            fmt_duration(t_build),
            fmt_duration(t_est),
            fmt_duration(t_exact),
            t_exact.as_secs_f64() / t_est.as_secs_f64(),
        );
    }

    println!("\n## T4b — sweep n at |B| = 100 (estimation cost is n-free)\n");
    println!(
        "| {:>8} | {:>4} | {:>12} | {:>14} | {:>14} |",
        "n", "k", "sketch build", "est all pairs", "exact all pairs"
    );
    println!("|----------|------|--------------|----------------|----------------|");
    for &rows in &[5_000usize, 20_000, 80_000, 160_000] {
        let (table, _) = workload(rows, 100, 14);
        let col_refs: Vec<&[f64]> = table
            .numeric_indices()
            .iter()
            .map(|&i| table.numeric(i).unwrap().values())
            .collect();
        let (catalog, t_build) = time(|| SketchCatalog::build(&table, &CatalogConfig::default()));
        let (_, t_est) = time(|| all_pairs_sketch(&catalog));
        let (_, t_exact) = time(|| all_pairs_exact(&col_refs));
        println!(
            "| {rows:>8} | {:>4} | {:>12} | {:>14} | {:>14} |",
            catalog.hyperplane_config().k,
            fmt_duration(t_build),
            fmt_duration(t_est),
            fmt_duration(t_exact),
        );
    }
    println!("\n(estimation time tracks |B|²k — flat in n; exact tracks |B|²n)");
}
