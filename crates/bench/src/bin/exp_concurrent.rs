//! **Experiment T6 — concurrent serving over a shared engine core.**
//! Measures insight-query throughput as independent session handles on
//! 1/2/4/8 OS threads share one `Arc<EngineCore>` — the paper's
//! multi-analyst deployment shape — with the score cache cold (first
//! visit) and warm (steady-state exploration). Per-query rayon
//! parallelism is off so the scaling measured is session concurrency,
//! not intra-query fan-out.
//!
//! The `scaling` column is warm throughput relative to one session and is
//! bounded by the host's available parallelism (recorded as `host_cpus` in
//! the output): on a single-core host the ideal is a *flat* ~1.0x — added
//! sessions cost nothing in synchronization — while on an N-core host it
//! approaches min(threads, N).
//!
//! Emits `BENCH_concurrent.json` into the working directory (run from the
//! repository root) alongside a human-readable table on stdout.

use foresight_bench::workload;
use foresight_data::datasets::oecd;
use foresight_data::{Table, TableSource};
use foresight_engine::{CoreBuilder, EngineCore, InsightQuery};
use foresight_sketch::CatalogConfig;
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Queries per session: every thread drains the full mix, so total work
/// grows with the thread count and throughput is sessions x mix / wall.
const QUERIES: usize = 960;
const REPS: usize = 5;

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// The mixed workload every measurement runs: round-robin over the class
/// roster with varying k, so threads contend on overlapping score keys.
fn query_mix(core: &EngineCore) -> Vec<InsightQuery> {
    let classes = core.registry().classes();
    (0..QUERIES)
        .map(|i| InsightQuery::class(classes[i % classes.len()].id()).top_k(1 + i % 5))
        .collect()
}

/// Wall-clock for `threads` sessions to each drain the full mix. The mix
/// is rotated per session so concurrent users overlap without being in
/// lockstep on the same key.
fn run_once(core: &Arc<EngineCore>, queries: &[InsightQuery], threads: usize) -> Duration {
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let core = Arc::clone(core);
            let mut mix = queries.to_vec();
            mix.rotate_left((t * queries.len()) / threads.max(1));
            std::thread::spawn(move || {
                let mut session = core.handle();
                session.set_parallel(false);
                let mut total = 0usize;
                for q in &mix {
                    total += session.query(q).expect("query").len();
                }
                total
            })
        })
        .collect();
    let answered: usize = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    let elapsed = t0.elapsed();
    std::hint::black_box(answered);
    elapsed
}

fn qps(total: usize, wall: Duration) -> f64 {
    total as f64 / wall.as_secs_f64().max(1e-9)
}

fn measure(name: &str, table: Table) -> Value {
    let rows = table.n_rows();
    let mut builder = CoreBuilder::new(TableSource::materialized(table));
    builder
        .preprocess(&CatalogConfig::default())
        .expect("raw table present");
    let core = builder.freeze();
    let queries = query_mix(&core);

    let mut per_thread_results = Vec::new();
    let mut warm_1t = 0.0f64;
    for &threads in &THREAD_COUNTS {
        let mut cold_times = Vec::with_capacity(REPS);
        let mut warm_times = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            core.cache().clear();
            cold_times.push(run_once(&core, &queries, threads));
            warm_times.push(run_once(&core, &queries, threads));
        }
        let cold = median(cold_times);
        let warm = median(warm_times);
        let (cold_qps, warm_qps) = (qps(QUERIES * threads, cold), qps(QUERIES * threads, warm));
        if threads == 1 {
            warm_1t = warm_qps;
        }
        let scaling = warm_qps / warm_1t.max(1e-9);
        println!(
            "| {name:<12} | {threads:>7} | {cold_qps:>11.0} | {warm_qps:>11.0} | {scaling:>6.2}x |"
        );
        per_thread_results.push(json!({
            "threads": threads,
            "cold_wall_ms": cold.as_secs_f64() * 1e3,
            "warm_wall_ms": warm.as_secs_f64() * 1e3,
            "cold_qps": cold_qps,
            "warm_qps": warm_qps,
            "warm_scaling_vs_1_thread": scaling,
        }));
    }

    let stats = core.cache_stats();
    json!({
        "dataset": name,
        "rows": rows,
        "queries_per_session": QUERIES,
        "cache_hit_rate": stats.hit_rate(),
        "by_threads": per_thread_results,
    })
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# Experiment T6: query throughput vs session threads over one shared core");
    println!("# {QUERIES} approximate-mode queries per session thread; per-query rayon off");
    println!(
        "# host exposes {cpus} CPU(s): ideal warm scaling is min(threads, {cpus}).00x; \
         a flat 1.00x on one CPU means sessions add zero contention\n"
    );
    println!(
        "| {:<12} | {:>7} | {:>11} | {:>11} | {:>7} |",
        "dataset", "threads", "cold q/s", "warm q/s", "scaling"
    );
    println!("|{}|", "-".repeat(64));

    let datasets = vec![
        ("oecd", oecd()),
        ("synth-20kx16", workload(20_000, 16, 7).0),
    ];
    let results: Vec<Value> = datasets
        .into_iter()
        .map(|(name, table)| measure(name, table))
        .collect();

    let report = json!({
        "experiment": "concurrent",
        "description": "shared EngineCore + per-thread SessionHandles: query throughput vs thread count, cold and warm score cache",
        "reps": REPS,
        "statistic": "median",
        "host_cpus": cpus,
        "queries_per_session": QUERIES,
        "thread_counts": THREAD_COUNTS.to_vec(),
        "datasets": results,
    });
    let path = "BENCH_concurrent.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_concurrent.json");
    println!("\nwrote {path}");
}
