//! **Experiment T1 — sketch accuracy.** The paper claims ">90% accuracy"
//! for the sketch estimates (§3). This experiment measures estimator error
//! against exact ground truth for every sketch family:
//!
//! * hyperplane correlation: relative error vs k and n (incl. the paper's
//!   `k = O(log²n)` sizing rule);
//! * KLL quantiles: rank error;
//! * SpaceSaving `RelFreq(k)`: absolute error;
//! * entropy sketch: absolute error in nats.

use foresight_bench::print_table;
use foresight_data::datasets::dist::Zipf;
use foresight_data::datasets::{synth, SynthConfig};
use foresight_sketch::hyperplane::{HyperplaneConfig, SharedHyperplanes};
use foresight_sketch::{EntropySketch, KllSketch, SpaceSaving};
use foresight_stats::correlation::pearson;
use foresight_stats::FrequencyTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hyperplane_accuracy() {
    let mut rows = Vec::new();
    for &n in &[5_000usize, 20_000, 100_000] {
        // 10 planted pairs with |rho| in [0.5, 0.95] — enough pairs that the
        // mean error is stable
        let (table, truth) = synth(&SynthConfig {
            rows: n,
            numeric_cols: 20,
            categorical_cols: 0,
            correlated_fraction: 1.0,
            rho_range: (0.5, 0.95),
            skewed_fraction: 0.0,
            heavy_fraction: 0.0,
            bimodal_fraction: 0.0,
            seed: 7,
            ..Default::default()
        });
        let cols: Vec<&[f64]> = table
            .numeric_indices()
            .iter()
            .map(|&i| table.numeric(i).unwrap().values())
            .collect();
        let paper_k = HyperplaneConfig::for_rows(n, 0).k;
        for &k in &[64usize, 256, paper_k, 2048] {
            let hp = SharedHyperplanes::new(HyperplaneConfig {
                k,
                seed: 11,
                ..Default::default()
            });
            let sketches = hp.sketch_columns(&cols);
            let mut sum_rel = 0.0;
            let mut sum_abs = 0.0;
            let mut count = 0;
            let mut correct_sign = 0;
            for &(i, j, _) in &truth.correlated_pairs {
                let exact = pearson(cols[i], cols[j]);
                let est = sketches[i].correlation(&sketches[j]).unwrap();
                sum_rel += ((est - exact) / exact).abs();
                sum_abs += (est - exact).abs();
                if est.signum() == exact.signum() {
                    correct_sign += 1;
                }
                count += 1;
            }
            let mean_rel = sum_rel / count as f64;
            let mean_abs = sum_abs / count as f64;
            rows.push(vec![
                n.to_string(),
                format!("{k}{}", if k == paper_k { " (log²n rule)" } else { "" }),
                format!("{mean_abs:.3}"),
                format!("{:.1}%", 100.0 * mean_rel),
                format!("{:.1}%", 100.0 * (1.0 - mean_rel)),
                format!("{correct_sign}/{count}"),
            ]);
        }
    }
    print_table(
        "T1a — hyperplane correlation sketch accuracy (10 planted pairs, |rho| in [0.5, 0.95])",
        &[
            "n",
            "k",
            "mean |err|",
            "mean rel err",
            "accuracy",
            "sign correct",
        ],
        &rows,
    );
}

fn quantile_accuracy() {
    let mut rows = Vec::new();
    for &n in &[10_000usize, 100_000] {
        let data: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % n as u64) as f64)
            .collect();
        for &k in &[64usize, 200, 800] {
            let mut sk = KllSketch::new(k);
            for &v in &data {
                sk.insert(v);
            }
            let mut max_rank_err = 0.0f64;
            for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
                let est = sk.quantile(q).unwrap();
                let true_rank = (est + 1.0) / n as f64;
                max_rank_err = max_rank_err.max((true_rank - q).abs());
            }
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                sk.retained().to_string(),
                format!("{:.2}%", 100.0 * max_rank_err),
                format!("{:.1}%", 100.0 * (1.0 - max_rank_err)),
            ]);
        }
    }
    print_table(
        "T1b — KLL quantile sketch accuracy",
        &["n", "k", "retained", "max rank err", "accuracy"],
        &rows,
    );
}

fn rel_freq_accuracy() {
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(3);
    for &card in &[100usize, 1_000, 10_000] {
        let z = Zipf::new(card, 1.1);
        let labels: Vec<String> = (0..200_000)
            .map(|_| format!("v{}", z.sample(&mut rng)))
            .collect();
        let col =
            foresight_data::CategoricalColumn::from_strings(labels.iter().map(String::as_str));
        let exact = FrequencyTable::from_column(&col);
        for &m in &[32usize, 64, 256] {
            let mut ss = SpaceSaving::new(m);
            for l in &labels {
                ss.insert(l);
            }
            let exact_rf = exact.rel_freq(5);
            let est_rf = ss.rel_freq(5);
            rows.push(vec![
                card.to_string(),
                m.to_string(),
                format!("{exact_rf:.4}"),
                format!("{est_rf:.4}"),
                format!("{:.2}%", 100.0 * (est_rf - exact_rf).abs() / exact_rf),
            ]);
        }
    }
    print_table(
        "T1c — SpaceSaving RelFreq(5) accuracy (Zipf streams, n = 200k)",
        &["cardinality", "counters", "exact", "sketch", "rel err"],
        &rows,
    );
}

fn entropy_accuracy() {
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(5);
    for &card in &[16usize, 256, 4_096] {
        let z = Zipf::new(card, 1.0);
        let mut counts = vec![0u64; card];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let n: u64 = counts.iter().sum();
        let truth: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n as f64;
                -p * p.ln()
            })
            .sum();
        for &k in &[256usize, 1_024] {
            let mut sk = EntropySketch::new(k, 17);
            for (i, &c) in counts.iter().enumerate() {
                if c > 0 {
                    sk.insert_weighted(&format!("v{i}"), c);
                }
            }
            let est = sk.estimate();
            rows.push(vec![
                card.to_string(),
                k.to_string(),
                format!("{truth:.3}"),
                format!("{est:.3}"),
                format!("{:.1}%", 100.0 * (est - truth).abs() / truth.max(1e-9)),
            ]);
        }
    }
    print_table(
        "T1d — entropy sketch accuracy (Zipf, n = 100k)",
        &["cardinality", "registers", "exact H", "estimate", "rel err"],
        &rows,
    );
}

fn main() {
    println!("# Experiment T1: sketch accuracy (paper claim: >90%)");
    hyperplane_accuracy();
    quantile_accuracy();
    rel_freq_accuracy();
    entropy_accuracy();
}
