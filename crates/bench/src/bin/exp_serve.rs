//! **Experiment T9 — the network serving front end under load.**
//!
//! 1. *Steady state*: an in-process `foresight-serve` reactor fronting a
//!    sketch-backed core, driven over real loopback sockets by a fleet of
//!    client connections multiplexing **1,200 concurrent server-side
//!    sessions**. The request mix is Zipfian over both the sessions (a
//!    few hot analysts, a long tail) and the insight classes, matching
//!    the skew a recommender front end actually sees. Reports
//!    client-observed p50 / p95 / p99 latency and throughput.
//! 2. *Overload*: a deliberately starved server (one worker, shallow
//!    queue, the worker held busy) burst with requests — admission
//!    control must answer with typed `overloaded` sheds, immediately,
//!    and count every one of them in the engine's own metrics.
//!
//! Emits `BENCH_serve.json` into the working directory (run from the
//! repository root). With `FORESIGHT_BENCH_GATE=1` the run enforces the
//! gates — ≥ [`SESSIONS_FLOOR`] concurrent sessions, steady-state p99 ≤
//! [`P99_BUDGET_MS`], zero protocol errors, and at least one typed shed
//! under overload — and exits non-zero on failure (the CI hook).

use foresight_bench::workload;
use foresight_data::TableSource;
use foresight_engine::{CoreBuilder, InsightQuery};
use foresight_serve::{Client, ClientError, Command, ErrorCode, ServeConfig, ServeCore, Server};
use foresight_sketch::CatalogConfig;
use serde_json::json;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client connections (each multiplexes many sessions over one socket).
const CONNECTIONS: usize = 16;
/// Server-side sessions opened per connection.
const SESSIONS_PER_CONNECTION: usize = 75;
/// Requests issued per connection after its sessions are open.
const REQUESTS_PER_CONNECTION: usize = 600;
/// Gate: the fleet must hold at least this many concurrent sessions.
const SESSIONS_FLOOR: usize = 1_000;
/// Gate: steady-state client-observed p99, milliseconds.
const P99_BUDGET_MS: f64 = 25.0;
/// Zipf exponent for both the session and the class pick.
const ZIPF_S: f64 = 1.1;

/// Splitmix-style LCG: deterministic, dependency-free.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Precomputed Zipf CDF over `n` ranks.
struct Zipf(Vec<f64>);

impl Zipf {
    fn new(n: usize) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(ZIPF_S);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf(cdf)
    }

    fn sample(&self, rng: &mut Lcg) -> usize {
        let u = rng.next_f64();
        self.0.partition_point(|&c| c < u).min(self.0.len() - 1)
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

struct SteadyOutcome {
    latencies_ns: Vec<u64>,
    errors: usize,
}

/// One connection's run: open its share of the session fleet, then drain
/// a Zipf-skewed request mix across those sessions.
fn drive_connection(addr: SocketAddr, seed: u64, classes: Arc<Vec<String>>) -> SteadyOutcome {
    let mut client = Client::connect(addr).expect("connect load connection");
    let mut sessions = Vec::with_capacity(SESSIONS_PER_CONNECTION);
    for _ in 0..SESSIONS_PER_CONNECTION {
        sessions.push(client.open().expect("open session"));
    }
    let session_pick = Zipf::new(sessions.len());
    let class_pick = Zipf::new(classes.len());
    let mut rng = Lcg(0x9E3779B97F4A7C15u64.wrapping_add(seed));
    let mut latencies_ns = Vec::with_capacity(REQUESTS_PER_CONNECTION);
    let mut errors = 0usize;
    for i in 0..REQUESTS_PER_CONNECTION {
        let session = sessions[session_pick.sample(&mut rng)];
        let roll = rng.next_f64();
        let cmd = if roll < 0.80 {
            let class = &classes[class_pick.sample(&mut rng)];
            Command::Query(InsightQuery::class(class.as_str()).top_k(1 + i % 4))
        } else if roll < 0.90 {
            Command::Carousels { per_class: 2 }
        } else if roll < 0.95 {
            Command::Profile
        } else {
            Command::Save
        };
        let t0 = Instant::now();
        match client.call(Some(session), cmd) {
            Ok(_) => latencies_ns.push(t0.elapsed().as_nanos() as u64),
            Err(_) => errors += 1,
        }
    }
    for session in sessions {
        let _ = client.close(session);
    }
    SteadyOutcome {
        latencies_ns,
        errors,
    }
}

/// Phase 2: one worker, a depth-4 queue, the worker held busy — a burst
/// must draw typed `overloaded` sheds, not hangs and not hard errors.
fn overload_phase() -> (usize, usize, u64) {
    let (table, _) = workload(2_000, 8, 23);
    let mut builder = CoreBuilder::new(TableSource::materialized(table));
    builder
        .preprocess(&CatalogConfig::default())
        .expect("preprocess");
    let core = builder.freeze();
    let server = Server::start(
        ServeCore::Static(Arc::clone(&core)),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_depth: 4,
            enable_test_commands: true,
            ..ServeConfig::default()
        },
    )
    .expect("start overload server");
    let addr = server.addr();

    let mut opener = Client::connect(addr).expect("connect");
    let held = opener.open().expect("open");
    let burst_sessions: Vec<u64> = (0..32).map(|_| opener.open().expect("open")).collect();

    // hold the only worker for the duration of the burst
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect sleeper");
        client
            .call(Some(held), Command::Sleep { ms: 900 })
            .expect("sleep");
    });
    std::thread::sleep(Duration::from_millis(120));

    // 32 concurrent one-shot connections: at most 4 can queue
    let burst: Vec<_> = burst_sessions
        .into_iter()
        .map(|session| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect burst");
                match client.query(session, InsightQuery::class("skew").top_k(1)) {
                    Ok(_) => (1usize, 0usize, 0usize),
                    Err(ClientError::Server(err)) if err.code == ErrorCode::Overloaded => (0, 1, 0),
                    Err(_) => (0, 0, 1),
                }
            })
        })
        .collect();
    let (mut served, mut shed, mut failed) = (0usize, 0usize, 0usize);
    for worker in burst {
        let (s, l, f) = worker.join().expect("burst thread");
        served += s;
        shed += l;
        failed += f;
    }
    sleeper.join().expect("sleeper");
    assert_eq!(failed, 0, "overload burst saw non-shed failures");

    let recorded = opener.metrics().expect("metrics").serve.load_shed;
    server.shutdown();
    (served, shed, recorded)
}

fn main() {
    let gate = std::env::var("FORESIGHT_BENCH_GATE").is_ok_and(|v| v == "1");
    println!("# Experiment T9: network serving front end under Zipfian session load");

    // -- steady state ------------------------------------------------------
    let (table, _) = workload(20_000, 12, 19);
    let mut builder = CoreBuilder::new(TableSource::materialized(table));
    builder
        .preprocess(&CatalogConfig::default())
        .expect("preprocess");
    let core = builder.freeze();
    let classes: Arc<Vec<String>> = Arc::new(
        core.registry()
            .classes()
            .iter()
            .map(|c| c.id().to_owned())
            .collect(),
    );
    let total_sessions = CONNECTIONS * SESSIONS_PER_CONNECTION;
    let server = Server::start(
        ServeCore::Static(Arc::clone(&core)),
        "127.0.0.1:0",
        ServeConfig {
            max_sessions: total_sessions * 2,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    println!(
        "# {CONNECTIONS} connections x {SESSIONS_PER_CONNECTION} sessions = \
         {total_sessions} concurrent sessions, {REQUESTS_PER_CONNECTION} requests each"
    );

    let t0 = Instant::now();
    let drivers: Vec<_> = (0..CONNECTIONS)
        .map(|i| {
            let classes = Arc::clone(&classes);
            std::thread::spawn(move || drive_connection(addr, i as u64, classes))
        })
        .collect();
    let outcomes: Vec<SteadyOutcome> = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    let wall = t0.elapsed();

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let errors: usize = outcomes.iter().map(|o| o.errors).sum();
    let requests = latencies.len();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    let qps = requests as f64 / wall.as_secs_f64().max(1e-9);

    let snapshot = core.metrics_snapshot();
    println!(
        "steady: {requests} requests in {:.2}s ({qps:.0} req/s), \
         p50 {p50:.3}ms p95 {p95:.3}ms p99 {p99:.3}ms, {errors} errors",
        wall.as_secs_f64()
    );
    println!(
        "server: {} sessions created, {} requests counted, {} load-shed, {} errors",
        snapshot.serve.sessions_created,
        snapshot.serve.requests,
        snapshot.serve.load_shed,
        snapshot.serve.errors
    );
    server.shutdown();

    // -- overload ----------------------------------------------------------
    let (served, shed, shed_recorded) = overload_phase();
    println!("overload: {served} served, {shed} typed sheds (server counted {shed_recorded})");

    let report = json!({
        "experiment": "serve",
        "description": "loopback load on the foresight-serve reactor: Zipfian session/class mix, client-observed latency, typed load-shedding under overload",
        "steady": {
            "connections": CONNECTIONS,
            "sessions": total_sessions,
            "requests": requests,
            "errors": errors,
            "wall_s": wall.as_secs_f64(),
            "requests_per_sec": qps,
            "p50_ms": p50,
            "p95_ms": p95,
            "p99_ms": p99,
            "server_sessions_created": snapshot.serve.sessions_created,
            "server_requests": snapshot.serve.requests,
            "zipf_exponent": ZIPF_S,
        },
        "overload": {
            "burst": 32,
            "served": served,
            "typed_sheds": shed,
            "server_counted_sheds": shed_recorded,
        },
        "gates": {
            "sessions_floor": SESSIONS_FLOOR,
            "p99_budget_ms": P99_BUDGET_MS,
        },
    });
    let path = "BENCH_serve.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_serve.json");
    println!("\nwrote {path}");

    if gate {
        assert!(
            total_sessions >= SESSIONS_FLOOR,
            "GATE: only {total_sessions} concurrent sessions (floor {SESSIONS_FLOOR})"
        );
        assert!(
            snapshot.serve.sessions_created >= SESSIONS_FLOOR as u64,
            "GATE: server created {} sessions (floor {SESSIONS_FLOOR})",
            snapshot.serve.sessions_created
        );
        assert!(
            p99 <= P99_BUDGET_MS,
            "GATE: steady-state p99 {p99:.3}ms over budget {P99_BUDGET_MS}ms"
        );
        assert_eq!(errors, 0, "GATE: steady-state protocol errors");
        assert!(
            shed >= 1 && shed_recorded >= shed as u64,
            "GATE: overload produced {shed} typed sheds, server counted {shed_recorded}"
        );
        println!(
            "gate passed: {total_sessions} sessions, p99 {p99:.3}ms <= {P99_BUDGET_MS}ms, \
             {shed} typed sheds under overload"
        );
    }
}
