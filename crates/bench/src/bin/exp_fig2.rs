//! **Experiment F2 — Figure 2.** Regenerates the paper's correlation
//! overview: all pairwise correlations of the 24 OECD indicators as a
//! circle heatmap (size and intensity encode |ρ|, diverging blue/red
//! encodes sign), exactly and from the hyperplane sketches.
//!
//! Outputs `target/figures/fig2_exact.svg` and `fig2_sketch.svg`, plus a
//! compact terminal rendering and the exact-vs-sketch disagreement summary.

use foresight_data::datasets;
use foresight_insight::classes::LinearRelationship;
use foresight_sketch::{CatalogConfig, SketchCatalog};
use foresight_viz::{render_svg, render_text, ChartKind, SvgOptions};
use std::fs;
use std::path::Path;

fn main() {
    let table = datasets::oecd();
    let indices = table.numeric_indices();
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create output dir");
    let opts = SvgOptions {
        width: 720.0,
        height: 720.0,
        margin: 40.0,
    };

    // exact heatmap (the figure itself)
    let exact = LinearRelationship::heatmap_exact(&table, &indices).expect("numeric columns");
    fs::write(out_dir.join("fig2_exact.svg"), render_svg(&exact, opts)).expect("write svg");

    // sketch-estimated heatmap (what interactive mode displays)
    let catalog = SketchCatalog::build(
        &table,
        &CatalogConfig {
            hyperplane_k: Some(2048),
            ..Default::default()
        },
    );
    let sketch =
        LinearRelationship::heatmap_sketch(&table, &catalog, &indices).expect("catalog built");
    fs::write(out_dir.join("fig2_sketch.svg"), render_svg(&sketch, opts)).expect("write svg");

    println!("# Figure 2: pairwise correlation overview (OECD)\n");
    println!("{}\n", render_text(&exact, 100));

    // quantify exact-vs-sketch agreement cell by cell
    let (ChartKind::CorrelationHeatmap(he), ChartKind::CorrelationHeatmap(hs)) =
        (&exact.kind, &sketch.kind)
    else {
        unreachable!("heatmap builders return heatmaps");
    };
    let mut max_err = 0.0f64;
    let mut sum_err = 0.0f64;
    let mut cells = 0usize;
    for i in 0..he.values.len() {
        for j in (i + 1)..he.values.len() {
            let err = (he.values[i][j] - hs.values[i][j]).abs();
            max_err = max_err.max(err);
            sum_err += err;
            cells += 1;
        }
    }
    println!(
        "sketch vs exact over {cells} cells: mean |Δρ| = {:.3}, max |Δρ| = {:.3}",
        sum_err / cells as f64,
        max_err
    );
    println!(
        "wrote fig2_exact.svg and fig2_sketch.svg to {}",
        out_dir.display()
    );
}
