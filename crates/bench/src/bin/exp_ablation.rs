//! **Ablations** (DESIGN.md §7): the design choices behind the defaults.
//!
//! A1 — Rademacher vs Gaussian hyperplane components (build time, accuracy);
//! A2 — GK vs KLL quantile sketches (space, rank error);
//! A3 — Misra–Gries vs SpaceSaving vs Count-Min for RelFreq(k);
//! A4 — neighborhood similarity weight (focus steering strength);
//! A5 — sequential vs rayon-parallel catalog build.

use foresight_bench::{fmt_duration, print_table, time, workload};
use foresight_data::datasets::dist::Zipf;
use foresight_engine::recommend::carousels;
use foresight_engine::{Executor, InsightQuery, NeighborhoodWeights, Session};
use foresight_insight::InsightRegistry;
use foresight_sketch::freq::MisraGries;
use foresight_sketch::hyperplane::{HyperplaneConfig, HyperplaneKind, SharedHyperplanes};
use foresight_sketch::{CatalogConfig, CountMin, GkSketch, KllSketch, SketchCatalog, SpaceSaving};
use foresight_stats::correlation::pearson;
use foresight_stats::FrequencyTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn a1_hyperplane_kind() {
    let (table, truth) = workload(50_000, 40, 3);
    let cols: Vec<&[f64]> = table
        .numeric_indices()
        .iter()
        .map(|&i| table.numeric(i).unwrap().values())
        .collect();
    let mut rows = Vec::new();
    for kind in [HyperplaneKind::Rademacher, HyperplaneKind::Gaussian] {
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 448,
            seed: 5,
            kind,
        });
        let (sketches, t) = time(|| hp.sketch_columns(&cols));
        let mut sum_abs = 0.0;
        for &(i, j, _) in &truth.correlated_pairs {
            let exact = pearson(cols[i], cols[j]);
            let est = sketches[i].correlation(&sketches[j]).unwrap();
            sum_abs += (est - exact).abs();
        }
        rows.push(vec![
            format!("{kind:?}"),
            fmt_duration(t),
            format!("{:.4}", sum_abs / truth.correlated_pairs.len() as f64),
        ]);
    }
    print_table(
        "A1 — hyperplane component distribution (50k × 40, k = 448)",
        &["kind", "build time", "mean |err|"],
        &rows,
    );
}

fn a2_quantile_family() {
    let n = 200_000usize;
    let data: Vec<f64> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % n as u64) as f64)
        .collect();
    let mut rows = Vec::new();

    let (gk, t_gk) = time(|| {
        let mut sk = GkSketch::new(0.005);
        for &v in &data {
            sk.insert(v);
        }
        sk
    });
    let gk_err = [0.1, 0.5, 0.9]
        .iter()
        .map(|&q| ((gk.quantile(q).unwrap() + 1.0) / n as f64 - q).abs())
        .fold(0.0f64, f64::max);
    rows.push(vec![
        "GK (eps 0.005)".into(),
        fmt_duration(t_gk),
        gk.tuple_count().to_string(),
        format!("{:.3}%", 100.0 * gk_err),
        "no".into(),
    ]);

    let (kll, t_kll) = time(|| {
        let mut sk = KllSketch::new(200);
        for &v in &data {
            sk.insert(v);
        }
        sk
    });
    let kll_err = [0.1, 0.5, 0.9]
        .iter()
        .map(|&q| ((kll.quantile(q).unwrap() + 1.0) / n as f64 - q).abs())
        .fold(0.0f64, f64::max);
    rows.push(vec![
        "KLL (k 200)".into(),
        fmt_duration(t_kll),
        kll.retained().to_string(),
        format!("{:.3}%", 100.0 * kll_err),
        "yes".into(),
    ]);

    print_table(
        "A2 — quantile sketch family (200k uniform-permuted stream)",
        &["sketch", "build", "retained", "max rank err", "mergeable"],
        &rows,
    );
}

fn a3_frequency_family() {
    let mut rng = StdRng::seed_from_u64(11);
    let z = Zipf::new(2_000, 1.1);
    let labels: Vec<String> = (0..300_000)
        .map(|_| format!("v{}", z.sample(&mut rng)))
        .collect();
    let col = foresight_data::CategoricalColumn::from_strings(labels.iter().map(String::as_str));
    let exact = FrequencyTable::from_column(&col).rel_freq(5);

    let mut rows = Vec::new();
    let (mg, t1) = time(|| {
        let mut s = MisraGries::new(64);
        for l in &labels {
            s.insert(l);
        }
        s
    });
    rows.push(vec![
        "Misra-Gries (64)".into(),
        fmt_duration(t1),
        format!("{:.4}", mg.rel_freq(5)),
        "lower bound".into(),
    ]);
    let (ss, t2) = time(|| {
        let mut s = SpaceSaving::new(64);
        for l in &labels {
            s.insert(l);
        }
        s
    });
    rows.push(vec![
        "SpaceSaving (64)".into(),
        fmt_duration(t2),
        format!("{:.4}", ss.rel_freq(5)),
        "upper bound".into(),
    ]);
    let (cm, t3) = time(|| {
        let mut s = CountMin::with_error(0.001, 0.01, 7);
        for l in &labels {
            s.insert(l);
        }
        s
    });
    // CM needs candidate items: use SpaceSaving's top-5 as candidates
    let top5: u64 = ss
        .top()
        .iter()
        .take(5)
        .map(|(l, _, _)| cm.estimate(l))
        .sum();
    rows.push(vec![
        "CountMin (eps 1e-3)".into(),
        fmt_duration(t3),
        format!("{:.4}", top5 as f64 / labels.len() as f64),
        "upper bound*".into(),
    ]);
    println!("\n(exact RelFreq(5) = {exact:.4}; * CountMin needs a candidate set)");
    print_table(
        "A3 — frequent-items family (Zipf 2000, n = 300k)",
        &["sketch", "build", "RelFreq(5) est", "bound type"],
        &rows,
    );
}

fn a4_neighborhood_weight() {
    let (table, _) = workload(5_000, 24, 9);
    let registry = InsightRegistry::default();
    let ex = Executor::exact(&table, &registry);
    // focus the strongest correlation, then measure how many of the next
    // recommendations share one of its attributes as the weight sweeps
    let top = ex
        .execute(&InsightQuery::class("linear-relationship").top_k(1))
        .expect("query");
    let mut session = Session::new("ablation");
    session.focus(top[0].clone());
    let focus_attrs = top[0].attrs;

    let mut rows = Vec::new();
    for &w in &[0.0, 0.25, 0.5, 0.75, 0.95] {
        let cs = carousels(
            &ex,
            &registry,
            &session,
            5,
            NeighborhoodWeights { similarity: w },
        )
        .expect("carousels");
        let linear = cs
            .iter()
            .find(|c| c.class_id == "linear-relationship")
            .expect("linear carousel");
        let overlapping = linear
            .instances
            .iter()
            .filter(|i| i.attrs.overlap(&focus_attrs) > 0)
            .count();
        rows.push(vec![
            format!("{w:.2}"),
            format!("{overlapping}/5"),
            format!(
                "{:.3}",
                linear.instances.first().map(|i| i.score).unwrap_or(0.0)
            ),
        ]);
    }
    print_table(
        "A4 — neighborhood similarity weight (focused: strongest correlation)",
        &["weight", "top-5 sharing a focus attribute", "lead score"],
        &rows,
    );
}

fn a5_parallel_catalog() {
    let (table, _) = workload(50_000, 100, 13);
    let mut rows = Vec::new();
    for parallel in [false, true] {
        let cfg = CatalogConfig {
            parallel,
            ..Default::default()
        };
        let (cat, t) = time(|| SketchCatalog::build(&table, &cfg));
        assert_eq!(cat.rows(), 50_000);
        rows.push(vec![
            if parallel { "rayon" } else { "sequential" }.into(),
            fmt_duration(t),
            rayon::current_num_threads().to_string(),
        ]);
    }
    print_table(
        "A5 — catalog build parallelism (50k × 100)",
        &["mode", "build time", "rayon threads"],
        &rows,
    );
}

fn main() {
    println!("# Ablation experiments (DESIGN.md §7)");
    a1_hyperplane_kind();
    a2_quantile_family();
    a3_frequency_family();
    a4_neighborhood_weight();
    a5_parallel_catalog();
}
