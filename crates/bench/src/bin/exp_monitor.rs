//! **Experiment T11 — the continuous monitoring subsystem.**
//!
//! 1. *Sampler overhead*: the same loopback query workload is driven
//!    against two otherwise identical servers — monitor sampling at an
//!    aggressive 50 ms cadence versus monitor disabled — in interleaved
//!    A/B trials. The monitor's background thread snapshots the full
//!    metrics registry every tick; its cost must be invisible to the
//!    serving path. Reports median throughput for both arms and the
//!    relative overhead.
//! 2. *Watchdog latency*: a deliberately starved server (one worker,
//!    depth-1 queue, the worker held busy) is driven into a shed storm.
//!    Measures how long the watchdog takes to degrade health and fire a
//!    `shed_storm` alert, then how long after the storm ends it takes to
//!    resolve the alert and report healthy again.
//!
//! Emits `BENCH_monitor.json` into the working directory (run from the
//! repository root). With `FORESIGHT_BENCH_GATE=1` the run enforces the
//! gates — sampler overhead ≤ [`OVERHEAD_BUDGET_PCT`], detection within
//! [`DETECT_BUDGET_MS`], the alert both fired and resolved — and exits
//! non-zero on failure (the CI hook).

use foresight_bench::workload;
use foresight_data::TableSource;
use foresight_engine::{
    AlertKind, CoreBuilder, EngineCore, HealthState, InsightQuery, MonitorConfig,
};
use foresight_serve::{Client, ClientError, Command, ErrorCode, ServeConfig, ServeCore, Server};
use foresight_sketch::CatalogConfig;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use serde_json::json;

/// Interleaved A/B rounds (each runs one monitored + one baseline trial).
const TRIALS: usize = 5;
/// Client connections per trial.
const CONNECTIONS: usize = 8;
/// Queries issued per connection per trial.
const REQUESTS_PER_CONNECTION: usize = 1_000;
/// Sampling cadence under test — 20× faster than the production default,
/// so the measured overhead upper-bounds the deployed cost.
const CADENCE_MS: u64 = 50;
/// Gate: median monitored throughput within this percentage of baseline.
const OVERHEAD_BUDGET_PCT: f64 = 3.0;
/// Gate: shed storm must degrade health and fire its alert within this.
const DETECT_BUDGET_MS: f64 = 3_000.0;

/// Splitmix-style LCG: deterministic, dependency-free.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Peak throughput across trials: scheduling noise only ever slows a
/// trial down, so the max is the least-noisy estimate of each arm's
/// capacity — the right basis for a small relative-overhead gate.
fn peak(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(0.0, f64::max)
}

/// One overhead trial: a fresh server over the shared core, a fleet of
/// connections draining a uniform query mix, throughput in requests/s.
fn overhead_trial(core: &Arc<EngineCore>, classes: &Arc<Vec<String>>, monitored: bool) -> f64 {
    let server = Server::start(
        ServeCore::Static(Arc::clone(core)),
        "127.0.0.1:0",
        ServeConfig {
            enable_monitor: monitored,
            monitor: MonitorConfig {
                cadence_ms: CADENCE_MS,
                ..MonitorConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start overhead server");
    let addr = server.addr();

    // all drivers connect and open sessions first, then the clock starts
    // at the barrier: connect/open setup is not part of the measurement
    let barrier = Arc::new(Barrier::new(CONNECTIONS + 1));
    let drivers: Vec<_> = (0..CONNECTIONS)
        .map(|i| {
            let classes = Arc::clone(classes);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || drive_connection(addr, i as u64, classes, barrier))
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let requests: usize = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .sum();
    let qps = requests as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    server.shutdown();
    qps
}

fn drive_connection(
    addr: SocketAddr,
    seed: u64,
    classes: Arc<Vec<String>>,
    barrier: Arc<Barrier>,
) -> usize {
    let mut client = Client::connect(addr).expect("connect load connection");
    let session = client.open().expect("open session");
    let mut rng = Lcg(0x9E3779B97F4A7C15u64.wrapping_add(seed));
    barrier.wait();
    for i in 0..REQUESTS_PER_CONNECTION {
        let class = &classes[(rng.next_f64() * classes.len() as f64) as usize % classes.len()];
        client
            .query(
                session,
                InsightQuery::class(class.as_str()).top_k(1 + i % 4),
            )
            .expect("query");
    }
    let _ = client.close(session);
    REQUESTS_PER_CONNECTION
}

struct WatchdogOutcome {
    detect_ms: f64,
    resolve_ms: f64,
    sheds_recorded: u64,
    fired: bool,
    resolved: bool,
    samples_captured: usize,
}

/// Phase 2: drive a starved server into a shed storm and time the
/// watchdog's fire → resolve round trip through the wire protocol.
fn watchdog_phase() -> WatchdogOutcome {
    let (table, _) = workload(2_000, 8, 23);
    let mut builder = CoreBuilder::new(TableSource::materialized(table));
    builder
        .preprocess(&CatalogConfig::default())
        .expect("preprocess");
    let core = builder.freeze();
    let mut monitor = MonitorConfig {
        cadence_ms: 25,
        ..MonitorConfig::default()
    };
    monitor.policy.max_shed_per_sec = 1.0;
    let server = Server::start(
        ServeCore::Static(core),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            enable_test_commands: true,
            monitor,
            ..ServeConfig::default()
        },
    )
    .expect("start watchdog server");
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    let held = client.open().expect("open held");
    let fill = client.open().expect("open fill");
    let storm = client.open().expect("open storm");

    // hold the only worker, then park one request in the depth-1 queue so
    // every further query is shed at admission
    let sleeper = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect sleeper");
        c.call(Some(held), Command::Sleep { ms: 2_500 })
            .expect("sleep");
    });
    std::thread::sleep(Duration::from_millis(100));
    let filler = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect filler");
        let _ = c.query(fill, InsightQuery::class("skew").top_k(1));
    });
    std::thread::sleep(Duration::from_millis(50));

    // storm: shed bursts interleaved with inline health polls
    let t0 = Instant::now();
    let mut detect_ms = f64::NAN;
    while t0.elapsed() < Duration::from_secs(8) {
        for _ in 0..5 {
            match client.query(storm, InsightQuery::class("skew").top_k(1)) {
                Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {}
                other => panic!("expected typed shed, got {other:?}"),
            }
        }
        if let HealthState::Degraded(_) = client.health().expect("health") {
            detect_ms = t0.elapsed().as_secs_f64() * 1e3;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    sleeper.join().expect("sleeper");
    filler.join().expect("filler");

    // storm over: wait for the hysteresis to resolve back to healthy
    let t1 = Instant::now();
    let mut resolve_ms = f64::NAN;
    while t1.elapsed() < Duration::from_secs(8) {
        if matches!(client.health().expect("health"), HealthState::Healthy) {
            resolve_ms = t1.elapsed().as_secs_f64() * 1e3;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    let alerts = client.alerts().expect("alerts");
    let fired = alerts
        .iter()
        .any(|a| a.kind == AlertKind::ShedStorm && a.fired);
    let resolved = alerts
        .iter()
        .any(|a| a.kind == AlertKind::ShedStorm && !a.fired);
    let samples_captured = client.metrics_history(0).expect("history").len();
    let sheds_recorded = client.metrics().expect("metrics").serve.load_shed;
    server.shutdown();
    WatchdogOutcome {
        detect_ms,
        resolve_ms,
        sheds_recorded,
        fired,
        resolved,
        samples_captured,
    }
}

fn main() {
    let gate = std::env::var("FORESIGHT_BENCH_GATE").is_ok_and(|v| v == "1");
    println!("# Experiment T11: monitoring subsystem — sampler overhead and watchdog latency");

    // -- sampler overhead --------------------------------------------------
    let (table, _) = workload(10_000, 10, 17);
    let mut builder = CoreBuilder::new(TableSource::materialized(table));
    builder
        .preprocess(&CatalogConfig::default())
        .expect("preprocess");
    let core = builder.freeze();
    let classes: Arc<Vec<String>> = Arc::new(
        core.registry()
            .classes()
            .iter()
            .map(|c| c.id().to_owned())
            .collect(),
    );

    // warm-up trial discarded: first-touch page faults and allocator
    // growth would otherwise land in whichever arm runs first
    let _ = overhead_trial(&core, &classes, false);
    let (mut on, mut off) = (Vec::new(), Vec::new());
    for round in 0..TRIALS {
        on.push(overhead_trial(&core, &classes, true));
        off.push(overhead_trial(&core, &classes, false));
        println!(
            "round {round}: monitored {:.0} req/s, baseline {:.0} req/s",
            on[round], off[round]
        );
    }
    let qps_on = peak(&on);
    let qps_off = peak(&off);
    let overhead_pct = ((qps_off - qps_on) / qps_off * 100.0).max(0.0);
    println!(
        "overhead: peak monitored {qps_on:.0} req/s vs baseline {qps_off:.0} req/s \
         ({overhead_pct:.2}% overhead at {CADENCE_MS}ms cadence)"
    );

    // -- watchdog ----------------------------------------------------------
    let w = watchdog_phase();
    println!(
        "watchdog: degraded after {:.0}ms, healthy again {:.0}ms after the storm \
         ({} sheds, alert fired={} resolved={}, {} samples in the ring)",
        w.detect_ms, w.resolve_ms, w.sheds_recorded, w.fired, w.resolved, w.samples_captured
    );

    let report = json!({
        "experiment": "monitor",
        "description": "monitoring subsystem cost and reactivity: sampler overhead under loopback load, watchdog fire/resolve latency under an induced shed storm",
        "overhead": {
            "trials": TRIALS,
            "connections": CONNECTIONS,
            "requests_per_connection": REQUESTS_PER_CONNECTION,
            "cadence_ms": CADENCE_MS,
            "peak_monitored_req_per_sec": qps_on,
            "peak_baseline_req_per_sec": qps_off,
            "overhead_pct": overhead_pct,
        },
        "watchdog": {
            "detect_ms": w.detect_ms,
            "resolve_ms": w.resolve_ms,
            "sheds_recorded": w.sheds_recorded,
            "alert_fired": w.fired,
            "alert_resolved": w.resolved,
            "samples_captured": w.samples_captured,
        },
        "gates": {
            "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
            "detect_budget_ms": DETECT_BUDGET_MS,
        },
    });
    let path = "BENCH_monitor.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize") + "\n",
    )
    .expect("write BENCH_monitor.json");
    println!("\nwrote {path}");

    if gate {
        assert!(
            overhead_pct <= OVERHEAD_BUDGET_PCT,
            "GATE: sampler overhead {overhead_pct:.2}% over budget {OVERHEAD_BUDGET_PCT}%"
        );
        assert!(
            w.detect_ms <= DETECT_BUDGET_MS,
            "GATE: shed storm detected in {:.0}ms (budget {DETECT_BUDGET_MS:.0}ms)",
            w.detect_ms
        );
        assert!(
            w.fired && w.resolved,
            "GATE: shed_storm alert must fire and resolve"
        );
        assert!(
            w.resolve_ms.is_finite(),
            "GATE: health never returned to healthy after the storm"
        );
        println!(
            "gate passed: {overhead_pct:.2}% overhead <= {OVERHEAD_BUDGET_PCT}%, \
             detected in {:.0}ms, alert fired and resolved",
            w.detect_ms
        );
    }
}
