//! Criterion bench: exact per-class metric cost on one column/pair —
//! quantifies which ranking metrics are "fast and easy" single-pass
//! computations and which ones need the sketch path (paper §3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use foresight_data::CategoricalColumn;
use foresight_stats::correlation::{kendall_tau_b, pearson, spearman};
use foresight_stats::dependence::binned_mutual_information;
use foresight_stats::histogram::BinRule;
use foresight_stats::multimodal::dip_statistic;
use foresight_stats::normality::normality_score;
use foresight_stats::outlier::{outlier_strength, IqrDetector};
use foresight_stats::{FrequencyTable, Moments};

fn column(n: usize, phase: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(phase);
            (x >> 33) as f64 / 1e9
        })
        .collect()
}

fn bench_metrics(c: &mut Criterion) {
    let n = 50_000;
    let x = column(n, 1);
    let y: Vec<f64> = x
        .iter()
        .zip(column(n, 2))
        .map(|(a, b)| 0.7 * a + 0.3 * b)
        .collect();
    let labels = CategoricalColumn::from_strings((0..n).map(|i| format!("g{}", (i * i) % 40)));

    let mut group = c.benchmark_group("exact_metric_cost_50k");
    group.sample_size(10);
    group.bench_function("moments(var,skew,kurt)", |b| {
        b.iter(|| black_box(Moments::from_slice(&x).kurtosis()))
    });
    group.bench_function("pearson", |b| b.iter(|| black_box(pearson(&x, &y))));
    group.bench_function("spearman", |b| b.iter(|| black_box(spearman(&x, &y))));
    group.bench_function("normality(jb)", |b| {
        b.iter(|| black_box(normality_score(&x)))
    });
    group.bench_function("outlier_strength(iqr)", |b| {
        b.iter(|| black_box(outlier_strength(&x, &IqrDetector::default())))
    });
    group.bench_function("dip", |b| b.iter(|| black_box(dip_statistic(&x))));
    group.bench_function("binned_mi", |b| {
        b.iter(|| black_box(binned_mutual_information(&x, &y, BinRule::Fixed(16))))
    });
    group.bench_function("rel_freq", |b| {
        b.iter(|| black_box(FrequencyTable::from_column(&labels).rel_freq(3)))
    });
    group.finish();

    // Kendall is O(n²): bench at a smaller size to keep runtime sane.
    let xs = column(2_000, 3);
    let ys = column(2_000, 4);
    let mut small = c.benchmark_group("exact_metric_cost_2k");
    small.sample_size(10);
    small.bench_function("kendall_tau_b", |b| {
        b.iter(|| black_box(kendall_tau_b(&xs, &ys)))
    });
    small.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
