//! Criterion bench for experiment T3: insight-query latency in sketch mode
//! vs exact mode at interactive scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foresight_bench::workload;
use foresight_engine::{Executor, InsightQuery};
use foresight_insight::InsightRegistry;
use foresight_sketch::{CatalogConfig, SketchCatalog};

fn bench_queries(c: &mut Criterion) {
    let (table, _) = workload(50_000, 64, 9);
    let registry = InsightRegistry::default();
    let catalog = SketchCatalog::build(&table, &CatalogConfig::default());

    let queries = [
        (
            "top5-correlations",
            InsightQuery::class("linear-relationship").top_k(5),
        ),
        (
            "fixed-attr-range",
            InsightQuery::class("linear-relationship")
                .top_k(5)
                .fix_attr(0)
                .score_range(0.3, 0.9),
        ),
        ("top5-skew", InsightQuery::class("skew").top_k(5)),
        (
            "top5-monotonic",
            InsightQuery::class("monotonic-relationship").top_k(5),
        ),
    ];

    let mut group = c.benchmark_group("query_latency");
    group.sample_size(10);
    for (name, q) in &queries {
        let approx = Executor::approximate(&table, &registry, &catalog);
        group.bench_with_input(BenchmarkId::new("sketch", name), q, |b, q| {
            b.iter(|| approx.execute(q).expect("valid"))
        });
        let exact = Executor::exact(&table, &registry);
        group.bench_with_input(BenchmarkId::new("exact", name), q, |b, q| {
            b.iter(|| exact.execute(q).expect("valid"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
