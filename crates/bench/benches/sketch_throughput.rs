//! Criterion micro-benches: raw update/query throughput of each sketch
//! family, and the ablation between quantile (GK vs KLL) and frequency
//! (Misra-Gries vs SpaceSaving vs Count-Min) alternatives called out in
//! DESIGN.md §7.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use foresight_sketch::freq::MisraGries;
use foresight_sketch::hyperplane::{HyperplaneConfig, SharedHyperplanes};
use foresight_sketch::{CountMin, EntropySketch, GkSketch, KllSketch, Reservoir, SpaceSaving};

fn values(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 100_000) as f64)
        .collect()
}

fn labels(n: usize, card: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("v{}", (i * i + 7 * i) % card))
        .collect()
}

fn bench_quantile_sketches(c: &mut Criterion) {
    let data = values(100_000);
    let mut group = c.benchmark_group("quantile_insert_100k");
    group.sample_size(10);
    group.bench_function("gk_eps0.01", |b| {
        b.iter(|| {
            let mut sk = GkSketch::new(0.01);
            for &v in &data {
                sk.insert(v);
            }
            black_box(sk.quantile(0.5))
        })
    });
    group.bench_function("kll_k200", |b| {
        b.iter(|| {
            let mut sk = KllSketch::new(200);
            for &v in &data {
                sk.insert(v);
            }
            black_box(sk.quantile(0.5))
        })
    });
    group.bench_function("exact_sort", |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("no nan"));
            black_box(v[v.len() / 2])
        })
    });
    group.finish();
}

fn bench_frequency_sketches(c: &mut Criterion) {
    let stream = labels(100_000, 5_000);
    let mut group = c.benchmark_group("frequency_insert_100k");
    group.sample_size(10);
    group.bench_function("misra_gries_64", |b| {
        b.iter(|| {
            let mut sk = MisraGries::new(64);
            for l in &stream {
                sk.insert(l);
            }
            black_box(sk.rel_freq(5))
        })
    });
    group.bench_function("space_saving_64", |b| {
        b.iter(|| {
            let mut sk = SpaceSaving::new(64);
            for l in &stream {
                sk.insert(l);
            }
            black_box(sk.rel_freq(5))
        })
    });
    group.bench_function("count_min_1pct", |b| {
        b.iter(|| {
            let mut sk = CountMin::with_error(0.01, 0.01, 3);
            for l in &stream {
                sk.insert(l);
            }
            black_box(sk.estimate("v0"))
        })
    });
    group.finish();
}

fn bench_hyperplane_and_misc(c: &mut Criterion) {
    let data = values(50_000);
    let mut group = c.benchmark_group("misc_sketches");
    group.sample_size(10);
    group.bench_function("hyperplane_k256_50k", |b| {
        let hp = SharedHyperplanes::new(HyperplaneConfig {
            k: 256,
            seed: 1,
            ..Default::default()
        });
        b.iter(|| black_box(hp.sketch_column(&data)))
    });
    group.bench_function("reservoir_1k_50k", |b| {
        b.iter(|| {
            let mut r = Reservoir::new(1_000, 7);
            for &v in &data {
                r.insert(v);
            }
            black_box(r.sample().len())
        })
    });
    group.bench_function("entropy_weighted_5k_labels", |b| {
        b.iter(|| {
            let mut sk = EntropySketch::new(256, 9);
            for i in 0..5_000u32 {
                sk.insert_weighted(&i.to_string(), 20);
            }
            black_box(sk.estimate())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_quantile_sketches,
    bench_frequency_sketches,
    bench_hyperplane_and_misc
);
criterion_main!(benches);
