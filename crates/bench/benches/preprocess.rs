//! Criterion bench for experiment T2: exact vs sketch preprocessing,
//! sequential vs rayon-parallel, across table widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foresight_bench::{exact_preprocess, workload};
use foresight_sketch::{CatalogConfig, SketchCatalog};

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    for &cols in &[25usize, 50, 100] {
        let (table, _) = workload(10_000, cols, 5);
        group.bench_with_input(BenchmarkId::new("exact", cols), &table, |b, t| {
            b.iter(|| exact_preprocess(t))
        });
        group.bench_with_input(BenchmarkId::new("sketch", cols), &table, |b, t| {
            b.iter(|| SketchCatalog::build(t, &CatalogConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("sketch-parallel", cols), &table, |b, t| {
            b.iter(|| {
                SketchCatalog::build(
                    t,
                    &CatalogConfig {
                        parallel: true,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preprocess);
criterion_main!(benches);
