//! Unicode terminal renderer — the CLI stand-in for the paper's carousel UI
//! (Figure 1). Each chart becomes a fixed-width block of text; carousels lay
//! several blocks side by side.

use crate::spec::*;

const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn bar_char(frac: f64) -> char {
    let idx = (frac.clamp(0.0, 1.0) * 8.0).round() as usize;
    BLOCKS[idx.min(8)]
}

/// Renders a chart spec as plain text, `width` characters wide.
pub fn render_text(spec: &ChartSpec, width: usize) -> String {
    let width = width.max(24);
    let mut lines: Vec<String> = Vec::new();
    lines.push(truncate(&spec.title, width));
    match &spec.kind {
        ChartKind::Histogram(h) => {
            lines.push(sparkline(
                &h.counts.iter().map(|&c| c as f64).collect::<Vec<_>>(),
                width,
            ));
            lines.push(format!(
                "{}{}",
                pad_right(&short(h.min), width / 2),
                pad_left(&short(h.max), width - width / 2)
            ));
        }
        ChartKind::Density(d) => {
            lines.push(sparkline(&d.densities, width));
            let lo = d.xs.first().copied().unwrap_or(0.0);
            let hi = d.xs.last().copied().unwrap_or(0.0);
            lines.push(format!(
                "{}{}",
                pad_right(&short(lo), width / 2),
                pad_left(&short(hi), width - width / 2)
            ));
        }
        ChartKind::BoxPlot(b) => {
            lines.push(box_line(b, width));
            lines.push(format!(
                "med {}  iqr [{}, {}]  {} outliers",
                short(b.median),
                short(b.q1),
                short(b.q3),
                b.outliers.len()
            ));
        }
        ChartKind::Pareto(p) => {
            let max = p.bars.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
            let mut cum = 0u64;
            for (label, count) in p.bars.iter().take(6) {
                cum += count;
                let bar_w = ((*count as f64 / max as f64) * (width as f64 * 0.4)) as usize;
                lines.push(format!(
                    "{} {} {:>4.0}% cum",
                    pad_right(&truncate(label, width * 2 / 5), width * 2 / 5),
                    "█".repeat(bar_w.max(1)),
                    100.0 * cum as f64 / p.total.max(1) as f64
                ));
            }
            if p.bars.len() > 6 {
                lines.push(format!("… {} more", p.bars.len() - 6));
            }
        }
        ChartKind::Scatter(s) => {
            lines.extend(dot_grid(&s.points, width, 8));
            if let Some((slope, _)) = s.fit {
                lines.push(format!("fit slope {}", short(slope)));
            }
        }
        ChartKind::GroupedScatter(g) => {
            lines.extend(dot_grid(&g.points, width, 8));
            lines.push(format!("{} groups", g.groups.len()));
        }
        ChartKind::Bar(b) => {
            let max = b.values.iter().map(|v| v.abs()).fold(1e-12f64, f64::max);
            for (label, &v) in b.labels.iter().zip(&b.values).take(8) {
                let bar_w = ((v.abs() / max) * (width as f64 * 0.4)) as usize;
                lines.push(format!(
                    "{} {} {}",
                    pad_right(&truncate(label, width * 2 / 5), width * 2 / 5),
                    "█".repeat(bar_w.max(1)),
                    short(v)
                ));
            }
            if b.labels.len() > 8 {
                lines.push(format!("… {} more", b.labels.len() - 8));
            }
        }
        ChartKind::CorrelationHeatmap(h) => {
            // compact glyph matrix: ·/▫/▪/█ by |ρ|, upper triangle only
            for (i, row) in h.values.iter().enumerate() {
                let mut line = String::new();
                for (j, &v) in row.iter().enumerate() {
                    let glyph = if j < i {
                        ' '
                    } else if v.is_nan() {
                        '?'
                    } else {
                        match v.abs() {
                            a if a > 0.75 => '█',
                            a if a > 0.5 => '▓',
                            a if a > 0.25 => '▒',
                            _ => '·',
                        }
                    };
                    line.push(glyph);
                }
                lines.push(truncate(
                    &format!(
                        "{line} {}",
                        h.labels.get(i).map(String::as_str).unwrap_or("")
                    ),
                    width,
                ));
            }
        }
    }
    lines.join("\n")
}

fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_owned()
    } else {
        let mut out: String = s.chars().take(width.saturating_sub(1)).collect();
        out.push('…');
        out
    }
}

fn pad_right(s: &str, width: usize) -> String {
    let mut out = s.to_owned();
    while out.chars().count() < width {
        out.push(' ');
    }
    out
}

fn pad_left(s: &str, width: usize) -> String {
    let mut out = String::new();
    let len = s.chars().count();
    for _ in len..width {
        out.push(' ');
    }
    out.push_str(s);
    out
}

fn short(v: f64) -> String {
    crate::scale::format_tick(v)
}

/// A one-line sparkline resampled to `width` characters.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() {
        return " ".repeat(width);
    }
    let max = values.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    (0..width)
        .map(|i| {
            let idx = i * values.len() / width;
            bar_char(values[idx] / max)
        })
        .collect()
}

fn box_line(b: &BoxPlotSpec, width: usize) -> String {
    let lo = b.outliers.iter().copied().fold(b.whisker_lo, f64::min);
    let hi = b.outliers.iter().copied().fold(b.whisker_hi, f64::max);
    let span = (hi - lo).max(1e-12);
    let pos = |v: f64| (((v - lo) / span) * (width - 1) as f64) as usize;
    let mut chars: Vec<char> = vec![' '; width];
    chars[pos(b.whisker_lo)..=pos(b.whisker_hi)].fill('─');
    chars[pos(b.q1)..=pos(b.q3)].fill('█');
    chars[pos(b.median)] = '┃';
    for &o in &b.outliers {
        chars[pos(o)] = '●';
    }
    chars.into_iter().collect()
}

fn dot_grid(points: &[[f64; 2]], width: usize, height: usize) -> Vec<String> {
    if points.is_empty() {
        return vec!["(no points)".to_owned()];
    }
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &[x, y] in points {
        lo_x = lo_x.min(x);
        hi_x = hi_x.max(x);
        lo_y = lo_y.min(y);
        hi_y = hi_y.max(y);
    }
    let sx = (hi_x - lo_x).max(1e-12);
    let sy = (hi_y - lo_y).max(1e-12);
    let mut grid = vec![vec![0u32; width]; height];
    for &[x, y] in points {
        let cx = (((x - lo_x) / sx) * (width - 1) as f64) as usize;
        let cy = (((y - lo_y) / sy) * (height - 1) as f64) as usize;
        grid[height - 1 - cy][cx] += 1;
    }
    grid.into_iter()
        .map(|row| {
            row.into_iter()
                .map(|c| match c {
                    0 => ' ',
                    1 => '·',
                    2..=3 => '∘',
                    _ => '●',
                })
                .collect()
        })
        .collect()
}

/// Lays out chart blocks side by side — one carousel row (Figure 1).
pub fn carousel(blocks: &[String], gap: usize) -> String {
    if blocks.is_empty() {
        return String::new();
    }
    let split: Vec<Vec<&str>> = blocks.iter().map(|b| b.lines().collect()).collect();
    let widths: Vec<usize> = split
        .iter()
        .map(|lines| lines.iter().map(|l| l.chars().count()).max().unwrap_or(0))
        .collect();
    let rows = split.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = String::new();
    for r in 0..rows {
        for (b, lines) in split.iter().enumerate() {
            let cell = lines.get(r).copied().unwrap_or("");
            out.push_str(&pad_right(cell, widths[b]));
            if b + 1 < split.len() {
                out.push_str(&" ".repeat(gap));
                out.push('│');
                out.push_str(&" ".repeat(gap));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram_spec() -> ChartSpec {
        ChartSpec {
            title: "Dispersion of X".into(),
            x_label: "x".into(),
            y_label: "count".into(),
            kind: ChartKind::Histogram(HistogramSpec {
                min: 0.0,
                max: 100.0,
                counts: vec![2, 10, 30, 10, 2],
            }),
        }
    }

    #[test]
    fn histogram_block() {
        let block = render_text(&histogram_spec(), 40);
        let lines: Vec<&str> = block.lines().collect();
        assert_eq!(lines[0], "Dispersion of X");
        assert_eq!(lines[1].chars().count(), 40);
        assert!(lines[2].contains('0') && lines[2].contains("100"));
    }

    #[test]
    fn sparkline_peaks_where_data_peaks() {
        let line = sparkline(&[0.0, 0.0, 10.0, 0.0], 4);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars[2], '█');
        assert_eq!(chars[0], ' ');
    }

    #[test]
    fn boxplot_block_shows_outliers() {
        let spec = ChartSpec {
            title: "box".into(),
            x_label: String::new(),
            y_label: String::new(),
            kind: ChartKind::BoxPlot(BoxPlotSpec {
                whisker_lo: 0.0,
                q1: 1.0,
                median: 2.0,
                q3: 3.0,
                whisker_hi: 4.0,
                outliers: vec![10.0],
            }),
        };
        let block = render_text(&spec, 40);
        assert!(block.contains('●'));
        assert!(block.contains("1 outliers"));
    }

    #[test]
    fn pareto_block_truncates() {
        let bars: Vec<(String, u64)> = (0..10).map(|i| (format!("cat{i}"), 100 - i)).collect();
        let spec = ChartSpec {
            title: "pareto".into(),
            x_label: String::new(),
            y_label: String::new(),
            kind: ChartKind::Pareto(ParetoSpec { bars, total: 955 }),
        };
        let block = render_text(&spec, 48);
        assert!(block.contains("… 4 more"));
        assert!(block.contains("cat0"));
    }

    #[test]
    fn scatter_grid_dimensions() {
        let spec = ChartSpec {
            title: "sc".into(),
            x_label: String::new(),
            y_label: String::new(),
            kind: ChartKind::Scatter(ScatterSpec {
                points: vec![[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]],
                fit: Some((1.0, 0.0)),
            }),
        };
        let block = render_text(&spec, 30);
        let lines: Vec<&str> = block.lines().collect();
        assert_eq!(lines.len(), 1 + 8 + 1); // title + grid + fit line
        assert!(block.contains("fit slope 1"));
    }

    #[test]
    fn carousel_layout() {
        let a = "AAA\naaa".to_owned();
        let b = "BB\nbb\nextra".to_owned();
        let row = carousel(&[a, b], 1);
        let lines: Vec<&str> = row.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("AAA") && lines[0].contains("BB"));
        assert!(lines[0].contains('│'));
        assert!(lines[2].contains("extra"));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(carousel(&[], 2), "");
        assert_eq!(sparkline(&[], 5), "     ");
    }

    #[test]
    fn long_title_truncated() {
        let mut spec = histogram_spec();
        spec.title = "x".repeat(100);
        let block = render_text(&spec, 30);
        assert!(block.lines().next().unwrap().chars().count() <= 30);
        assert!(block.lines().next().unwrap().ends_with('…'));
    }
}
