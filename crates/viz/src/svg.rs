//! SVG renderer for every [`ChartSpec`] — the chart images behind the
//! paper's Figure 1 carousels and the Figure 2 correlation overview.

use crate::color::{categorical, diverging};
use crate::scale::{format_tick, nice_ticks, LinearScale};
use crate::spec::*;
use std::fmt::Write as _;

/// Canvas geometry.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Total width in pixels.
    pub width: f64,
    /// Total height in pixels.
    pub height: f64,
    /// Margin around the plot area (left margin is doubled for y labels).
    pub margin: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width: 480.0,
            height: 320.0,
            margin: 36.0,
        }
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

struct Canvas {
    out: String,
    opts: SvgOptions,
}

impl Canvas {
    fn new(opts: SvgOptions, title: &str) -> Self {
        let mut out = String::new();
        let _ = write!(
            out,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"##,
            w = opts.width,
            h = opts.height
        );
        let _ = write!(
            out,
            r##"<rect width="{w}" height="{h}" fill="white"/><text x="{cx}" y="16" text-anchor="middle" font-size="13" font-weight="bold">{t}</text>"##,
            w = opts.width,
            h = opts.height,
            cx = opts.width / 2.0,
            t = esc(title)
        );
        Self { out, opts }
    }

    /// Plot-area rectangle `(x0, y0, x1, y1)`.
    fn plot_area(&self) -> (f64, f64, f64, f64) {
        let m = self.opts.margin;
        (2.0 * m, m, self.opts.width - m, self.opts.height - m)
    }

    fn axes(&mut self, xs: &LinearScale, ys: &LinearScale, x_label: &str, y_label: &str) {
        let (x0, y0, x1, y1) = self.plot_area();
        let _ = write!(
            self.out,
            r##"<line x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}" stroke="#333"/><line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="#333"/>"##
        );
        let (dx0, dx1) = xs.domain();
        for t in nice_ticks(dx0, dx1, 5) {
            let px = xs.apply(t);
            let _ = write!(
                self.out,
                r##"<line x1="{px}" y1="{y1}" x2="{px}" y2="{yt}" stroke="#333"/><text x="{px}" y="{yl}" text-anchor="middle" font-size="9">{lab}</text>"##,
                yt = y1 + 4.0,
                yl = y1 + 14.0,
                lab = format_tick(t)
            );
        }
        let (dy0, dy1) = ys.domain();
        for t in nice_ticks(dy0, dy1, 5) {
            let py = ys.apply(t);
            let _ = write!(
                self.out,
                r##"<line x1="{xt}" y1="{py}" x2="{x0}" y2="{py}" stroke="#333"/><text x="{xl}" y="{yt}" text-anchor="end" font-size="9">{lab}</text>"##,
                xt = x0 - 4.0,
                xl = x0 - 6.0,
                yt = py + 3.0,
                lab = format_tick(t)
            );
        }
        let _ = write!(
            self.out,
            r##"<text x="{cx}" y="{by}" text-anchor="middle" font-size="11">{xl}</text><text x="12" y="{cy}" text-anchor="middle" font-size="11" transform="rotate(-90 12 {cy})">{yl}</text>"##,
            cx = (x0 + x1) / 2.0,
            by = self.opts.height - 6.0,
            cy = (y0 + y1) / 2.0,
            xl = esc(x_label),
            yl = esc(y_label)
        );
    }

    fn finish(mut self) -> String {
        self.out.push_str("</svg>");
        self.out
    }
}

/// Renders any chart spec to a standalone SVG document.
pub fn render_svg(spec: &ChartSpec, opts: SvgOptions) -> String {
    match &spec.kind {
        ChartKind::Histogram(h) => histogram(spec, h, opts),
        ChartKind::BoxPlot(b) => boxplot(spec, b, opts),
        ChartKind::Pareto(p) => pareto(spec, p, opts),
        ChartKind::Scatter(s) => scatter(spec, s, opts),
        ChartKind::CorrelationHeatmap(h) => heatmap(spec, h, opts),
        ChartKind::GroupedScatter(g) => grouped_scatter(spec, g, opts),
        ChartKind::Density(d) => density(spec, d, opts),
        ChartKind::Bar(b) => bar(spec, b, opts),
    }
}

fn bar(spec: &ChartSpec, b: &BarSpec, opts: SvgOptions) -> String {
    let mut c = Canvas::new(opts, &spec.title);
    let (x0, y0, x1, y1) = c.plot_area();
    let lo = b.values.iter().copied().fold(0.0f64, f64::min);
    let hi = b.values.iter().copied().fold(0.0f64, f64::max);
    let xs = LinearScale::new((lo, hi), (x0, x1));
    let n = b.labels.len().max(1) as f64;
    let bh = ((y1 - y0) / n).min(22.0);
    for (i, (label, &v)) in b.labels.iter().zip(&b.values).enumerate() {
        let ty = y0 + i as f64 * bh;
        let zero = xs.apply(0.0);
        let px = xs.apply(v);
        let (bx, bw) = if px >= zero {
            (zero, px - zero)
        } else {
            (px, zero - px)
        };
        let _ = write!(
            c.out,
            r##"<rect x="{bx:.1}" y="{ty:.1}" width="{w:.1}" height="{h:.1}" fill="{col}"/><text x="{lx}" y="{ly:.1}" text-anchor="end" font-size="8">{t}</text>"##,
            w = bw.max(1.0),
            h = (bh * 0.8).max(1.0),
            col = if v >= 0.0 { "#4C78A8" } else { "#E45756" },
            lx = x0 - 4.0,
            ly = ty + bh * 0.6,
            t = esc(label)
        );
    }
    let axis_ticks = nice_ticks(xs.domain().0, xs.domain().1, 5);
    for t in axis_ticks {
        let px = xs.apply(t);
        let _ = write!(
            c.out,
            r##"<text x="{px}" y="{yl}" text-anchor="middle" font-size="9">{lab}</text>"##,
            yl = y1 + 14.0,
            lab = format_tick(t)
        );
    }
    c.finish()
}

fn histogram(spec: &ChartSpec, h: &HistogramSpec, opts: SvgOptions) -> String {
    let mut c = Canvas::new(opts, &spec.title);
    let (x0, y0, x1, y1) = c.plot_area();
    let max_count = h.counts.iter().copied().max().unwrap_or(1).max(1) as f64;
    let xs = LinearScale::new((h.min, h.max), (x0, x1));
    let ys = LinearScale::new((0.0, max_count), (y1, y0));
    c.axes(&xs, &ys, &spec.x_label, &spec.y_label);
    let n = h.counts.len().max(1) as f64;
    let bw = (x1 - x0) / n;
    for (i, &count) in h.counts.iter().enumerate() {
        let bx = x0 + i as f64 * bw;
        let by = ys.apply(count as f64);
        let _ = write!(
            c.out,
            r##"<rect x="{bx:.1}" y="{by:.1}" width="{w:.1}" height="{h:.1}" fill="#4C78A8" stroke="white" stroke-width="0.5"/>"##,
            w = bw.max(1.0),
            h = (y1 - by).max(0.0)
        );
    }
    c.finish()
}

fn density(spec: &ChartSpec, d: &DensitySpec, opts: SvgOptions) -> String {
    let mut c = Canvas::new(opts, &spec.title);
    let (x0, y0, x1, y1) = c.plot_area();
    let (lo, hi) = (
        d.xs.first().copied().unwrap_or(0.0),
        d.xs.last().copied().unwrap_or(1.0),
    );
    let peak = d
        .densities
        .iter()
        .copied()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let xs = LinearScale::new((lo, hi), (x0, x1));
    let ys = LinearScale::new((0.0, peak), (y1, y0));
    c.axes(&xs, &ys, &spec.x_label, &spec.y_label);
    let mut path = String::new();
    for (i, (&x, &dy)) in d.xs.iter().zip(&d.densities).enumerate() {
        let cmd = if i == 0 { 'M' } else { 'L' };
        let _ = write!(path, "{cmd}{:.1},{:.1} ", xs.apply(x), ys.apply(dy));
    }
    let _ = write!(
        c.out,
        r##"<path d="{path}" fill="none" stroke="#4C78A8" stroke-width="2"/>"##
    );
    c.finish()
}

fn boxplot(spec: &ChartSpec, b: &BoxPlotSpec, opts: SvgOptions) -> String {
    let mut c = Canvas::new(opts, &spec.title);
    let (x0, y0, x1, y1) = c.plot_area();
    let lo = b.outliers.iter().copied().fold(b.whisker_lo, f64::min);
    let hi = b.outliers.iter().copied().fold(b.whisker_hi, f64::max);
    let pad = (hi - lo).max(1e-9) * 0.05;
    let xs = LinearScale::new((lo - pad, hi + pad), (x0, x1));
    let ys = LinearScale::new((0.0, 1.0), (y1, y0));
    c.axes(&xs, &ys, &spec.x_label, "");
    let cy = (y0 + y1) / 2.0;
    let half = (y1 - y0) * 0.18;
    // whiskers
    let _ = write!(
        c.out,
        r##"<line x1="{a}" y1="{cy}" x2="{b1}" y2="{cy}" stroke="#333"/><line x1="{c1}" y1="{cy}" x2="{d}" y2="{cy}" stroke="#333"/>"##,
        a = xs.apply(b.whisker_lo),
        b1 = xs.apply(b.q1),
        c1 = xs.apply(b.q3),
        d = xs.apply(b.whisker_hi)
    );
    for v in [b.whisker_lo, b.whisker_hi] {
        let px = xs.apply(v);
        let _ = write!(
            c.out,
            r##"<line x1="{px}" y1="{t}" x2="{px}" y2="{b2}" stroke="#333"/>"##,
            t = cy - half / 2.0,
            b2 = cy + half / 2.0
        );
    }
    // box + median
    let _ = write!(
        c.out,
        r##"<rect x="{bx}" y="{ty}" width="{bw}" height="{bh}" fill="#A0C4E8" stroke="#333"/><line x1="{mx}" y1="{ty}" x2="{mx}" y2="{by}" stroke="#333" stroke-width="2"/>"##,
        bx = xs.apply(b.q1),
        ty = cy - half,
        bw = (xs.apply(b.q3) - xs.apply(b.q1)).max(1.0),
        bh = 2.0 * half,
        mx = xs.apply(b.median),
        by = cy + half
    );
    for &o in &b.outliers {
        let _ = write!(
            c.out,
            r##"<circle cx="{px}" cy="{cy}" r="3" fill="none" stroke="#D62728"/>"##,
            px = xs.apply(o)
        );
    }
    c.finish()
}

fn pareto(spec: &ChartSpec, p: &ParetoSpec, opts: SvgOptions) -> String {
    let mut c = Canvas::new(opts, &spec.title);
    let (x0, y0, x1, y1) = c.plot_area();
    let max_count = p.bars.iter().map(|(_, n)| *n).max().unwrap_or(1).max(1) as f64;
    let ys = LinearScale::new((0.0, max_count), (y1, y0));
    let xs = LinearScale::new((0.0, p.bars.len() as f64), (x0, x1));
    c.axes(&xs, &ys, &spec.x_label, &spec.y_label);
    let bw = (x1 - x0) / p.bars.len().max(1) as f64;
    let mut cum = 0u64;
    let mut path = String::new();
    for (i, (label, count)) in p.bars.iter().enumerate() {
        let bx = x0 + i as f64 * bw;
        let by = ys.apply(*count as f64);
        let _ = write!(
            c.out,
            r##"<rect x="{bx:.1}" y="{by:.1}" width="{w:.1}" height="{h:.1}" fill="#4C78A8" stroke="white" stroke-width="0.5"><title>{t}</title></rect>"##,
            w = (bw * 0.9).max(1.0),
            h = (y1 - by).max(0.0),
            t = esc(label)
        );
        cum += count;
        let frac = cum as f64 / p.total.max(1) as f64;
        let py = y1 - frac * (y1 - y0);
        let cmd = if i == 0 { 'M' } else { 'L' };
        let _ = write!(path, "{cmd}{:.1},{:.1} ", bx + bw / 2.0, py);
    }
    let _ = write!(
        c.out,
        r##"<path d="{path}" fill="none" stroke="#E45756" stroke-width="2"/>"##
    );
    c.finish()
}

fn scatter(spec: &ChartSpec, s: &ScatterSpec, opts: SvgOptions) -> String {
    let mut c = Canvas::new(opts, &spec.title);
    let (x0, y0, x1, y1) = c.plot_area();
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &[x, y] in &s.points {
        lo_x = lo_x.min(x);
        hi_x = hi_x.max(x);
        lo_y = lo_y.min(y);
        hi_y = hi_y.max(y);
    }
    if s.points.is_empty() {
        (lo_x, hi_x, lo_y, hi_y) = (0.0, 1.0, 0.0, 1.0);
    }
    let xs = LinearScale::new((lo_x, hi_x), (x0, x1));
    let ys = LinearScale::new((lo_y, hi_y), (y1, y0));
    c.axes(&xs, &ys, &spec.x_label, &spec.y_label);
    for &[x, y] in &s.points {
        let _ = write!(
            c.out,
            r##"<circle cx="{cx:.1}" cy="{cy:.1}" r="2.5" fill="#4C78A8" fill-opacity="0.55"/>"##,
            cx = xs.apply(x),
            cy = ys.apply(y)
        );
    }
    if let Some((slope, intercept)) = s.fit {
        let (dx0, dx1) = xs.domain();
        let _ = write!(
            c.out,
            r##"<line x1="{ax}" y1="{ay}" x2="{bx}" y2="{by}" stroke="#E45756" stroke-width="2"/>"##,
            ax = xs.apply(dx0),
            ay = ys.apply(slope * dx0 + intercept),
            bx = xs.apply(dx1),
            by = ys.apply(slope * dx1 + intercept)
        );
    }
    c.finish()
}

fn grouped_scatter(spec: &ChartSpec, g: &GroupedScatterSpec, opts: SvgOptions) -> String {
    let mut c = Canvas::new(opts, &spec.title);
    let (x0, y0, x1, y1) = c.plot_area();
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &[x, y] in &g.points {
        lo_x = lo_x.min(x);
        hi_x = hi_x.max(x);
        lo_y = lo_y.min(y);
        hi_y = hi_y.max(y);
    }
    if g.points.is_empty() {
        (lo_x, hi_x, lo_y, hi_y) = (0.0, 1.0, 0.0, 1.0);
    }
    let xs = LinearScale::new((lo_x, hi_x), (x0, x1));
    let ys = LinearScale::new((lo_y, hi_y), (y1, y0));
    c.axes(&xs, &ys, &spec.x_label, &spec.y_label);
    for (&[x, y], &grp) in g.points.iter().zip(&g.group_of) {
        let _ = write!(
            c.out,
            r##"<circle cx="{cx:.1}" cy="{cy:.1}" r="2.5" fill="{col}" fill-opacity="0.6"/>"##,
            cx = xs.apply(x),
            cy = ys.apply(y),
            col = categorical(grp).hex()
        );
    }
    // legend
    for (i, name) in g.groups.iter().enumerate() {
        let ly = y0 + 12.0 * i as f64;
        let _ = write!(
            c.out,
            r##"<circle cx="{lx}" cy="{ly}" r="4" fill="{col}"/><text x="{tx}" y="{ty}" font-size="9">{n}</text>"##,
            lx = x1 - 90.0,
            col = categorical(i).hex(),
            tx = x1 - 82.0,
            ty = ly + 3.0,
            n = esc(name)
        );
    }
    c.finish()
}

fn heatmap(spec: &ChartSpec, h: &HeatmapSpec, opts: SvgOptions) -> String {
    // Figure 2: a d×d grid of circles, color = sign, size & intensity = |ρ|.
    let d = h.labels.len().max(1);
    let side = (opts.width.min(opts.height) - 3.0 * opts.margin).max(50.0);
    let cell = side / d as f64;
    let (gx, gy) = (2.2 * opts.margin, 1.4 * opts.margin);
    let mut c = Canvas::new(opts, &spec.title);
    for (i, row) in h.values.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            let cx = gx + (j as f64 + 0.5) * cell;
            let cy = gy + (i as f64 + 0.5) * cell;
            let r = (v.abs().sqrt() * cell * 0.45).clamp(0.5, cell * 0.48);
            let _ = write!(
                c.out,
                r##"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r:.1}" fill="{col}"><title>{a} × {b}: {v:.2}</title></circle>"##,
                col = diverging(v).hex(),
                a = esc(&h.labels[i]),
                b = esc(&h.labels[j]),
            );
        }
    }
    for (i, label) in h.labels.iter().enumerate() {
        let pos = (i as f64 + 0.5) * cell;
        let _ = write!(
            c.out,
            r##"<text x="{lx}" y="{ly}" text-anchor="end" font-size="7">{t}</text><text x="{tx}" y="{ty}" text-anchor="start" font-size="7" transform="rotate(-65 {tx} {ty})">{t}</text>"##,
            lx = gx - 4.0,
            ly = gy + pos + 2.0,
            tx = gx + pos,
            ty = gy + side + 10.0,
            t = esc(label)
        );
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: ChartKind) -> ChartSpec {
        ChartSpec {
            title: "T<est> & more".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            kind,
        }
    }

    fn assert_valid(svg: &str) {
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // crude well-formedness: every opened tag type closes or self-closes
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
        assert!(!svg.contains("NaN"), "NaN leaked into SVG");
    }

    #[test]
    fn histogram_renders() {
        let svg = render_svg(
            &spec(ChartKind::Histogram(HistogramSpec {
                min: 0.0,
                max: 10.0,
                counts: vec![1, 5, 9, 3, 0, 2],
            })),
            SvgOptions::default(),
        );
        assert_valid(&svg);
        assert_eq!(svg.matches("<rect").count(), 7); // 6 bars + background
        assert!(svg.contains("T&lt;est&gt; &amp; more"));
    }

    #[test]
    fn boxplot_renders_outliers() {
        let svg = render_svg(
            &spec(ChartKind::BoxPlot(BoxPlotSpec {
                whisker_lo: 0.0,
                q1: 2.0,
                median: 3.0,
                q3: 4.0,
                whisker_hi: 6.0,
                outliers: vec![9.5, 11.0],
            })),
            SvgOptions::default(),
        );
        assert_valid(&svg);
        assert!(svg.matches("stroke=\"#D62728\"").count() == 2);
    }

    #[test]
    fn pareto_renders_cumulative_line() {
        let svg = render_svg(
            &spec(ChartKind::Pareto(ParetoSpec {
                bars: vec![("a".into(), 50), ("b".into(), 30), ("c".into(), 20)],
                total: 100,
            })),
            SvgOptions::default(),
        );
        assert_valid(&svg);
        assert!(svg.contains("path"));
    }

    #[test]
    fn scatter_renders_fit_line() {
        let svg = render_svg(
            &spec(ChartKind::Scatter(ScatterSpec {
                points: vec![[0.0, 0.0], [1.0, 2.0], [2.0, 4.0]],
                fit: Some((2.0, 0.0)),
            })),
            SvgOptions::default(),
        );
        assert_valid(&svg);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("stroke=\"#E45756\""));
    }

    #[test]
    fn heatmap_renders_d_squared_circles() {
        let svg = render_svg(
            &spec(ChartKind::CorrelationHeatmap(HeatmapSpec {
                labels: vec!["A".into(), "B".into(), "C".into()],
                values: vec![
                    vec![1.0, -0.5, 0.1],
                    vec![-0.5, 1.0, 0.0],
                    vec![0.1, 0.0, 1.0],
                ],
            })),
            SvgOptions::default(),
        );
        assert_valid(&svg);
        assert_eq!(svg.matches("<circle").count(), 9);
    }

    #[test]
    fn empty_scatter_does_not_panic() {
        let svg = render_svg(
            &spec(ChartKind::Scatter(ScatterSpec {
                points: vec![],
                fit: None,
            })),
            SvgOptions::default(),
        );
        assert_valid(&svg);
    }

    #[test]
    fn grouped_scatter_legend() {
        let svg = render_svg(
            &spec(ChartKind::GroupedScatter(GroupedScatterSpec {
                points: vec![[0.0, 0.0], [5.0, 5.0]],
                group_of: vec![0, 1],
                groups: vec!["g1".into(), "g2".into()],
            })),
            SvgOptions::default(),
        );
        assert_valid(&svg);
        assert!(svg.contains("g1") && svg.contains("g2"));
    }

    #[test]
    fn density_renders_path() {
        let svg = render_svg(
            &spec(ChartKind::Density(DensitySpec {
                xs: vec![0.0, 0.5, 1.0],
                densities: vec![0.1, 0.9, 0.1],
            })),
            SvgOptions::default(),
        );
        assert_valid(&svg);
        assert!(svg.contains("<path"));
    }
}
