//! Linear scales and "nice" tick generation for axes.

/// A linear mapping from a data domain to a pixel range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearScale {
    domain: (f64, f64),
    range: (f64, f64),
}

impl LinearScale {
    /// Creates a scale; a degenerate domain is widened symmetrically so the
    /// mapping stays well-defined.
    pub fn new(domain: (f64, f64), range: (f64, f64)) -> Self {
        let domain = if domain.0 == domain.1 {
            (domain.0 - 0.5, domain.1 + 0.5)
        } else {
            domain
        };
        Self { domain, range }
    }

    /// Maps a data value to the pixel range (clamped).
    pub fn apply(&self, v: f64) -> f64 {
        let t = (v - self.domain.0) / (self.domain.1 - self.domain.0);
        let t = t.clamp(0.0, 1.0);
        self.range.0 + t * (self.range.1 - self.range.0)
    }

    /// The (possibly widened) domain.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }
}

/// Returns ~`count` tick positions covering `[lo, hi]` at a "nice" step
/// (1, 2, or 5 × 10^k).
pub fn nice_ticks(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    if !lo.is_finite() || !hi.is_finite() || count == 0 {
        return Vec::new();
    }
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let raw_step = span / count as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.5 {
        2.0
    } else if norm < 7.5 {
        5.0
    } else {
        10.0
    } * mag;
    let first = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    while t <= hi + step * 1e-9 {
        // snap values like 0.30000000000000004 back to a clean multiple
        ticks.push((t / step).round() * step);
        t += step;
    }
    ticks
}

/// Formats a tick value compactly (trims trailing zeros, switches to
/// scientific notation for extreme magnitudes).
pub fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_owned();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        return format!("{v:.1e}");
    }
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_maps_endpoints() {
        let s = LinearScale::new((0.0, 10.0), (0.0, 100.0));
        assert_eq!(s.apply(0.0), 0.0);
        assert_eq!(s.apply(10.0), 100.0);
        assert_eq!(s.apply(5.0), 50.0);
        // clamped
        assert_eq!(s.apply(-5.0), 0.0);
        assert_eq!(s.apply(20.0), 100.0);
    }

    #[test]
    fn inverted_range_supported() {
        // SVG y-axes grow downward
        let s = LinearScale::new((0.0, 1.0), (100.0, 0.0));
        assert_eq!(s.apply(0.0), 100.0);
        assert_eq!(s.apply(1.0), 0.0);
    }

    #[test]
    fn degenerate_domain_widened() {
        let s = LinearScale::new((5.0, 5.0), (0.0, 10.0));
        assert_eq!(s.apply(5.0), 5.0);
    }

    #[test]
    fn ticks_are_nice_and_cover() {
        let ticks = nice_ticks(0.0, 100.0, 5);
        assert!(!ticks.is_empty());
        for w in ticks.windows(2) {
            assert!((w[1] - w[0] - 20.0).abs() < 1e-9);
        }
        assert!(ticks[0] >= 0.0 && *ticks.last().unwrap() <= 100.0);
    }

    #[test]
    fn ticks_handle_small_and_negative_ranges() {
        let ticks = nice_ticks(-0.37, 0.41, 4);
        assert!(ticks.contains(&0.0));
        assert!(nice_ticks(f64::NAN, 1.0, 4).is_empty());
        assert!(!nice_ticks(3.0, 1.0, 4).is_empty()); // reversed input ok
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(20.0), "20");
        assert_eq!(format_tick(0.25), "0.25");
        assert!(format_tick(1.5e7).contains('e'));
        assert!(format_tick(1e-5).contains('e'));
    }
}
