//! Standalone HTML report generation — the library-shaped counterpart of
//! the paper's web demo UI. A report embeds the SVG charts directly, so the
//! output is a single self-contained file.

use crate::spec::ChartSpec;
use crate::svg::{render_svg, SvgOptions};
use std::fmt::Write as _;

/// One carousel section of a report.
#[derive(Debug, Clone)]
pub struct ReportSection {
    /// Section heading (usually the insight-class name).
    pub title: String,
    /// Optional explanatory line (usually the ranking metric).
    pub subtitle: String,
    /// Charts shown side by side, strongest first.
    pub charts: Vec<ChartSpec>,
}

/// A multi-section report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Page title.
    pub title: String,
    /// Free-text introduction (plain text; HTML-escaped on render).
    pub intro: String,
    /// The carousel sections.
    pub sections: Vec<ReportSection>,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

impl Report {
    /// Starts an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Appends a section.
    pub fn section(
        &mut self,
        title: impl Into<String>,
        subtitle: impl Into<String>,
        charts: Vec<ChartSpec>,
    ) -> &mut Self {
        self.sections.push(ReportSection {
            title: title.into(),
            subtitle: subtitle.into(),
            charts,
        });
        self
    }

    /// Renders the report as a self-contained HTML document.
    pub fn to_html(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
             <title>{}</title><style>{}</style></head><body>\n",
            esc(&self.title),
            STYLE
        );
        let _ = writeln!(out, "<h1>{}</h1>", esc(&self.title));
        if !self.intro.is_empty() {
            let _ = writeln!(out, "<p class=\"intro\">{}</p>", esc(&self.intro));
        }
        let opts = SvgOptions {
            width: 360.0,
            height: 240.0,
            margin: 30.0,
        };
        for s in &self.sections {
            let _ = write!(out, "<section><h2>{}</h2>", esc(&s.title));
            if !s.subtitle.is_empty() {
                let _ = write!(out, "<p class=\"sub\">{}</p>", esc(&s.subtitle));
            }
            out.push_str("<div class=\"carousel\">");
            for chart in &s.charts {
                let svg = if matches!(chart.kind, crate::spec::ChartKind::CorrelationHeatmap(_)) {
                    render_svg(
                        chart,
                        SvgOptions {
                            width: 640.0,
                            height: 640.0,
                            margin: 36.0,
                        },
                    )
                } else {
                    render_svg(chart, opts)
                };
                let _ = write!(out, "<figure>{svg}</figure>");
            }
            out.push_str("</div></section>\n");
        }
        out.push_str("</body></html>\n");
        out
    }
}

const STYLE: &str = "\
body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:1200px;color:#222}\
h1{border-bottom:2px solid #4C78A8;padding-bottom:.3rem}\
h2{margin:1.5rem 0 .2rem;color:#2a4d69}\
.sub{color:#777;margin:.1rem 0 .5rem;font-size:.9rem}\
.intro{color:#444}\
.carousel{display:flex;gap:12px;overflow-x:auto;padding-bottom:8px}\
figure{margin:0;border:1px solid #ddd;border-radius:6px;padding:4px;background:#fff}";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChartKind, HistogramSpec};

    fn chart(title: &str) -> ChartSpec {
        ChartSpec {
            title: title.into(),
            x_label: "x".into(),
            y_label: "y".into(),
            kind: ChartKind::Histogram(HistogramSpec {
                min: 0.0,
                max: 1.0,
                counts: vec![3, 1, 4],
            }),
        }
    }

    #[test]
    fn report_embeds_svgs() {
        let mut r = Report::new("Insights for <demo>");
        r.intro = "auto-generated".into();
        r.section("Skew", "ranked by |γ₁|", vec![chart("a"), chart("b")]);
        r.section("Empty", "", vec![]);
        let html = r.to_html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("Insights for &lt;demo&gt;"));
        assert_eq!(html.matches("<svg").count(), 2);
        assert_eq!(html.matches("<section>").count(), 2);
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn empty_report_is_valid() {
        let html = Report::new("empty").to_html();
        assert!(html.contains("<h1>empty</h1>"));
        assert!(!html.contains("<section>"));
    }
}
