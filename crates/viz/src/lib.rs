//! # foresight-viz
//!
//! Visualization layer for Foresight: typed chart specifications for every
//! insight class (histogram, box plot, Pareto, scatter + fit, correlation
//! heatmap, grouped scatter, density) and three renderers — SVG documents,
//! Unicode terminal blocks (the CLI carousel), and Vega-Lite JSON.

#![warn(missing_docs)]

pub mod color;
pub mod html;
pub mod scale;
pub mod spec;
pub mod svg;
pub mod text;
pub mod vega;

pub use html::{Report, ReportSection};
pub use spec::{
    BarSpec, BoxPlotSpec, ChartKind, ChartSpec, DensitySpec, GroupedScatterSpec, HeatmapSpec,
    HistogramSpec, ParetoSpec, ScatterSpec,
};
pub use svg::{render_svg, SvgOptions};
pub use text::{carousel, render_text};
pub use vega::to_vega_lite;
