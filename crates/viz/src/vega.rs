//! Vega-Lite emission: serialize any [`ChartSpec`] to a Vega-Lite v5 JSON
//! document, so Foresight charts can be rendered by standard web tooling
//! (the demo paper's UI used a web front end).

use crate::spec::*;
use serde_json::{json, Value};

/// Converts a chart spec to a Vega-Lite v5 JSON document.
pub fn to_vega_lite(spec: &ChartSpec) -> Value {
    let mut doc = match &spec.kind {
        ChartKind::Histogram(h) => histogram(h),
        ChartKind::Density(d) => density(d),
        ChartKind::BoxPlot(b) => boxplot(b),
        ChartKind::Pareto(p) => pareto(p),
        ChartKind::Scatter(s) => scatter(s, &spec.x_label, &spec.y_label),
        ChartKind::GroupedScatter(g) => grouped_scatter(g, &spec.x_label, &spec.y_label),
        ChartKind::CorrelationHeatmap(h) => heatmap(h),
        ChartKind::Bar(b) => bar(b),
    };
    if let Value::Object(o) = &mut doc {
        o.insert(
            "$schema".into(),
            json!("https://vega.github.io/schema/vega-lite/v5.json"),
        );
        o.insert("title".into(), json!(spec.title));
    }
    doc
}

fn histogram(h: &HistogramSpec) -> Value {
    let width = (h.max - h.min) / h.counts.len().max(1) as f64;
    let rows: Vec<Value> = h
        .counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            json!({
                "bin_start": h.min + i as f64 * width,
                "bin_end": h.min + (i + 1) as f64 * width,
                "count": c,
            })
        })
        .collect();
    json!({
        "data": {"values": rows},
        "mark": "bar",
        "encoding": {
            "x": {"field": "bin_start", "bin": {"binned": true}, "type": "quantitative"},
            "x2": {"field": "bin_end"},
            "y": {"field": "count", "type": "quantitative"},
        }
    })
}

fn density(d: &DensitySpec) -> Value {
    let rows: Vec<Value> =
        d.xs.iter()
            .zip(&d.densities)
            .map(|(&x, &y)| json!({"x": x, "density": y}))
            .collect();
    json!({
        "data": {"values": rows},
        "mark": "line",
        "encoding": {
            "x": {"field": "x", "type": "quantitative"},
            "y": {"field": "density", "type": "quantitative"},
        }
    })
}

fn boxplot(b: &BoxPlotSpec) -> Value {
    json!({
        "data": {"values": [{
            "lower": b.whisker_lo, "q1": b.q1, "median": b.median,
            "q3": b.q3, "upper": b.whisker_hi,
            "outliers": b.outliers,
        }]},
        "layer": [
            {"mark": {"type": "rule"},
             "encoding": {"x": {"field": "lower", "type": "quantitative"},
                          "x2": {"field": "upper"}}},
            {"mark": {"type": "bar", "height": 24},
             "encoding": {"x": {"field": "q1", "type": "quantitative"},
                          "x2": {"field": "q3"}}},
            {"mark": {"type": "tick", "color": "white"},
             "encoding": {"x": {"field": "median", "type": "quantitative"}}},
            {"transform": [{"flatten": ["outliers"]}],
             "mark": {"type": "point", "color": "red"},
             "encoding": {"x": {"field": "outliers", "type": "quantitative"}}}
        ]
    })
}

fn pareto(p: &ParetoSpec) -> Value {
    let mut cum = 0u64;
    let rows: Vec<Value> = p
        .bars
        .iter()
        .map(|(label, count)| {
            cum += count;
            json!({
                "category": label,
                "count": count,
                "cumulative": cum as f64 / p.total.max(1) as f64,
            })
        })
        .collect();
    json!({
        "data": {"values": rows},
        "layer": [
            {"mark": "bar",
             "encoding": {
                 "x": {"field": "category", "type": "nominal", "sort": "-y"},
                 "y": {"field": "count", "type": "quantitative"}}},
            {"mark": {"type": "line", "color": "firebrick", "point": true},
             "encoding": {
                 "x": {"field": "category", "type": "nominal", "sort": null},
                 "y": {"field": "cumulative", "type": "quantitative",
                        "axis": {"format": ".0%"}}}}
        ],
        "resolve": {"scale": {"y": "independent"}}
    })
}

fn scatter(s: &ScatterSpec, x_label: &str, y_label: &str) -> Value {
    let rows: Vec<Value> = s
        .points
        .iter()
        .map(|&[x, y]| json!({"x": x, "y": y}))
        .collect();
    let points = json!({
        "mark": {"type": "point", "opacity": 0.55},
        "encoding": {
            "x": {"field": "x", "type": "quantitative", "title": x_label},
            "y": {"field": "y", "type": "quantitative", "title": y_label},
        }
    });
    match s.fit {
        Some((slope, intercept)) => {
            let (lo, hi) = s
                .points
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &[x, _]| {
                    (lo.min(x), hi.max(x))
                });
            let (lo, hi) = if lo.is_finite() { (lo, hi) } else { (0.0, 1.0) };
            json!({
                "data": {"values": rows},
                "layer": [
                    points,
                    {"data": {"values": [
                        {"x": lo, "y": slope * lo + intercept},
                        {"x": hi, "y": slope * hi + intercept}]},
                     "mark": {"type": "line", "color": "firebrick"},
                     "encoding": {
                        "x": {"field": "x", "type": "quantitative"},
                        "y": {"field": "y", "type": "quantitative"}}}
                ]
            })
        }
        None => json!({"data": {"values": rows}, "layer": [points]}),
    }
}

fn grouped_scatter(g: &GroupedScatterSpec, x_label: &str, y_label: &str) -> Value {
    let rows: Vec<Value> = g
        .points
        .iter()
        .zip(&g.group_of)
        .map(|(&[x, y], &grp)| {
            json!({"x": x, "y": y,
                   "group": g.groups.get(grp).cloned().unwrap_or_else(|| grp.to_string())})
        })
        .collect();
    json!({
        "data": {"values": rows},
        "mark": {"type": "point", "opacity": 0.6},
        "encoding": {
            "x": {"field": "x", "type": "quantitative", "title": x_label},
            "y": {"field": "y", "type": "quantitative", "title": y_label},
            "color": {"field": "group", "type": "nominal"},
        }
    })
}

fn bar(b: &BarSpec) -> Value {
    let rows: Vec<Value> = b
        .labels
        .iter()
        .zip(&b.values)
        .map(|(l, &v)| json!({"label": l, "value": v}))
        .collect();
    json!({
        "data": {"values": rows},
        "mark": "bar",
        "encoding": {
            "y": {"field": "label", "type": "nominal", "sort": "-x"},
            "x": {"field": "value", "type": "quantitative"},
        }
    })
}

fn heatmap(h: &HeatmapSpec) -> Value {
    let mut rows = Vec::new();
    for (i, row) in h.values.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            rows.push(json!({
                "a": h.labels[i], "b": h.labels[j],
                "value": if v.is_nan() { Value::Null } else { json!(v) },
                "abs": if v.is_nan() { Value::Null } else { json!(v.abs()) },
            }));
        }
    }
    json!({
        "data": {"values": rows},
        "mark": "circle",
        "encoding": {
            "x": {"field": "b", "type": "nominal", "sort": null},
            "y": {"field": "a", "type": "nominal", "sort": null},
            "size": {"field": "abs", "type": "quantitative",
                     "scale": {"domain": [0, 1]}, "legend": null},
            "color": {"field": "value", "type": "quantitative",
                      "scale": {"domain": [-1, 1], "scheme": "redblue", "reverse": true}},
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrap(kind: ChartKind) -> ChartSpec {
        ChartSpec {
            title: "test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            kind,
        }
    }

    #[test]
    fn all_kinds_emit_schema_and_title() {
        let specs = vec![
            wrap(ChartKind::Histogram(HistogramSpec {
                min: 0.0,
                max: 1.0,
                counts: vec![1, 2],
            })),
            wrap(ChartKind::BoxPlot(BoxPlotSpec {
                whisker_lo: 0.0,
                q1: 1.0,
                median: 2.0,
                q3: 3.0,
                whisker_hi: 4.0,
                outliers: vec![],
            })),
            wrap(ChartKind::Pareto(ParetoSpec {
                bars: vec![("a".into(), 3)],
                total: 3,
            })),
            wrap(ChartKind::Scatter(ScatterSpec {
                points: vec![[0.0, 1.0]],
                fit: Some((1.0, 0.0)),
            })),
            wrap(ChartKind::CorrelationHeatmap(HeatmapSpec {
                labels: vec!["A".into()],
                values: vec![vec![1.0]],
            })),
            wrap(ChartKind::GroupedScatter(GroupedScatterSpec {
                points: vec![[0.0, 0.0]],
                group_of: vec![0],
                groups: vec!["g".into()],
            })),
            wrap(ChartKind::Density(DensitySpec {
                xs: vec![0.0, 1.0],
                densities: vec![0.5, 0.5],
            })),
        ];
        for s in specs {
            let v = to_vega_lite(&s);
            assert!(v["$schema"].as_str().unwrap().contains("vega-lite"));
            assert_eq!(v["title"], "test");
            // the document must be serializable
            assert!(!serde_json::to_string(&v).unwrap().is_empty());
        }
    }

    #[test]
    fn pareto_cumulative_reaches_one() {
        let v = to_vega_lite(&wrap(ChartKind::Pareto(ParetoSpec {
            bars: vec![("a".into(), 6), ("b".into(), 4)],
            total: 10,
        })));
        let rows = v["data"]["values"].as_array().unwrap();
        assert_eq!(rows[1]["cumulative"], 1.0);
        assert_eq!(rows[0]["cumulative"], 0.6);
    }

    #[test]
    fn heatmap_nan_becomes_null() {
        let v = to_vega_lite(&wrap(ChartKind::CorrelationHeatmap(HeatmapSpec {
            labels: vec!["A".into(), "B".into()],
            values: vec![vec![1.0, f64::NAN], vec![f64::NAN, 1.0]],
        })));
        let rows = v["data"]["values"].as_array().unwrap();
        assert!(rows[1]["value"].is_null());
    }

    #[test]
    fn scatter_fit_layer_present() {
        let v = to_vega_lite(&wrap(ChartKind::Scatter(ScatterSpec {
            points: vec![[0.0, 0.0], [2.0, 4.0]],
            fit: Some((2.0, 0.0)),
        })));
        assert_eq!(v["layer"].as_array().unwrap().len(), 2);
        let line_data = &v["layer"][1]["data"]["values"];
        assert_eq!(line_data[1]["y"], 4.0);
    }
}
