//! Color ramps for the renderers: a diverging blue–white–red ramp for the
//! correlation heatmap (Figure 2) and a categorical palette for groups.

/// An sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb(pub u8, pub u8, pub u8);

impl Rgb {
    /// CSS hex form, e.g. `#1f77b4`.
    pub fn hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.0, self.1, self.2)
    }
}

fn lerp(a: u8, b: u8, t: f64) -> u8 {
    (a as f64 + (b as f64 - a as f64) * t)
        .round()
        .clamp(0.0, 255.0) as u8
}

fn mix(a: Rgb, b: Rgb, t: f64) -> Rgb {
    Rgb(lerp(a.0, b.0, t), lerp(a.1, b.1, t), lerp(a.2, b.2, t))
}

/// Diverging ramp for values in [−1, 1]: deep blue → white → deep red
/// (the RdBu convention used by the paper's Figure 2). Out-of-range values
/// are clamped; NaN maps to gray.
pub fn diverging(v: f64) -> Rgb {
    if v.is_nan() {
        return Rgb(0xBD, 0xBD, 0xBD);
    }
    const BLUE: Rgb = Rgb(0x21, 0x66, 0xAC);
    const WHITE: Rgb = Rgb(0xF7, 0xF7, 0xF7);
    const RED: Rgb = Rgb(0xB2, 0x18, 0x2B);
    let v = v.clamp(-1.0, 1.0);
    if v < 0.0 {
        mix(WHITE, BLUE, -v)
    } else {
        mix(WHITE, RED, v)
    }
}

/// Sequential ramp for values in [0, 1]: light → saturated blue.
pub fn sequential(v: f64) -> Rgb {
    if v.is_nan() {
        return Rgb(0xBD, 0xBD, 0xBD);
    }
    const LIGHT: Rgb = Rgb(0xDE, 0xEB, 0xF7);
    const DARK: Rgb = Rgb(0x08, 0x45, 0x94);
    mix(LIGHT, DARK, v.clamp(0.0, 1.0))
}

/// A 10-color categorical palette (Tableau-10 style) for grouped marks.
pub fn categorical(i: usize) -> Rgb {
    const PALETTE: [Rgb; 10] = [
        Rgb(0x1F, 0x77, 0xB4),
        Rgb(0xFF, 0x7F, 0x0E),
        Rgb(0x2C, 0xA0, 0x2C),
        Rgb(0xD6, 0x27, 0x28),
        Rgb(0x94, 0x67, 0xBD),
        Rgb(0x8C, 0x56, 0x4B),
        Rgb(0xE3, 0x77, 0xC2),
        Rgb(0x7F, 0x7F, 0x7F),
        Rgb(0xBC, 0xBD, 0x22),
        Rgb(0x17, 0xBE, 0xCF),
    ];
    PALETTE[i % PALETTE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diverging_endpoints() {
        assert_eq!(diverging(0.0), Rgb(0xF7, 0xF7, 0xF7));
        assert_eq!(diverging(1.0), Rgb(0xB2, 0x18, 0x2B));
        assert_eq!(diverging(-1.0), Rgb(0x21, 0x66, 0xAC));
        // clamped
        assert_eq!(diverging(5.0), diverging(1.0));
        assert_eq!(diverging(f64::NAN), Rgb(0xBD, 0xBD, 0xBD));
    }

    #[test]
    fn diverging_is_monotone_in_redness() {
        let weak = diverging(0.2);
        let strong = diverging(0.9);
        // stronger positive correlation → less green/blue (more saturated red)
        assert!(strong.1 < weak.1);
        assert!(strong.2 < weak.2);
    }

    #[test]
    fn hex_format() {
        assert_eq!(Rgb(255, 0, 16).hex(), "#ff0010");
    }

    #[test]
    fn categorical_cycles() {
        assert_eq!(categorical(0), categorical(10));
        assert_ne!(categorical(0), categorical(1));
    }

    #[test]
    fn sequential_endpoints() {
        assert_eq!(sequential(0.0), Rgb(0xDE, 0xEB, 0xF7));
        assert_eq!(sequential(1.0), Rgb(0x08, 0x45, 0x94));
    }
}
