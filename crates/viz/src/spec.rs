//! Typed chart specifications — the "visualization method" attached to each
//! insight class (paper §2).
//!
//! A [`ChartSpec`] is renderer-independent: the SVG renderer draws it, the
//! text renderer sketches it in a terminal carousel, and the Vega emitter
//! serializes it to a Vega-Lite JSON document.

use serde::{Deserialize, Serialize};

/// A renderable chart, plus its framing (title, axis labels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChartSpec {
    /// Chart title (usually the insight description).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The mark-level content.
    pub kind: ChartKind,
}

/// The chart families Foresight's insight classes use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChartKind {
    /// Histogram: dispersion, skew, heavy tails, normality, multimodality.
    Histogram(HistogramSpec),
    /// Box-and-whisker plot: outliers.
    BoxPlot(BoxPlotSpec),
    /// Pareto chart (sorted bars + cumulative line): heterogeneous
    /// frequencies, concentration.
    Pareto(ParetoSpec),
    /// Scatter plot with optional best-fit line: linear/monotonic
    /// relationships, dependence.
    Scatter(ScatterSpec),
    /// Colored-circle matrix: the Figure-2 correlation overview.
    CorrelationHeatmap(HeatmapSpec),
    /// Grouped scatter: segmentation.
    GroupedScatter(GroupedScatterSpec),
    /// Smooth density curve: distribution-shape insights.
    Density(DensitySpec),
    /// Labeled horizontal bars of real values: per-class overview charts
    /// ("metric over all tuples in the insight class", paper §2.1).
    Bar(BarSpec),
}

/// Histogram bars over a numeric range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSpec {
    /// Range minimum.
    pub min: f64,
    /// Range maximum.
    pub max: f64,
    /// Per-bin counts (equal-width bins spanning `[min, max]`).
    pub counts: Vec<u64>,
}

/// Five-number summary plus flagged outliers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxPlotSpec {
    /// Lower whisker end.
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker end.
    pub whisker_hi: f64,
    /// Values beyond the whiskers.
    pub outliers: Vec<f64>,
}

/// Sorted category bars with cumulative share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoSpec {
    /// `(label, count)` sorted descending by count.
    pub bars: Vec<(String, u64)>,
    /// Total count (bars may be truncated to the top ones).
    pub total: u64,
}

/// Scatter points with an optional fitted line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatterSpec {
    /// Sampled `(x, y)` points.
    pub points: Vec<[f64; 2]>,
    /// Best-fit line `(slope, intercept)`, if meaningful.
    pub fit: Option<(f64, f64)>,
}

/// A symmetric matrix of values in [−1, 1] with row/column labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatmapSpec {
    /// Attribute labels, in matrix order.
    pub labels: Vec<String>,
    /// Row-major matrix values.
    pub values: Vec<Vec<f64>>,
}

/// Scatter points labeled by group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedScatterSpec {
    /// Sampled `(x, y)` points.
    pub points: Vec<[f64; 2]>,
    /// Per-point group index into `groups`.
    pub group_of: Vec<usize>,
    /// Group display names.
    pub groups: Vec<String>,
}

/// Labeled real-valued bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BarSpec {
    /// Bar labels.
    pub labels: Vec<String>,
    /// Bar values (any real numbers; negative values draw leftward).
    pub values: Vec<f64>,
}

/// A smooth density estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensitySpec {
    /// Grid x-positions.
    pub xs: Vec<f64>,
    /// Densities at the grid positions.
    pub densities: Vec<f64>,
}

impl ChartSpec {
    /// A short tag naming the chart family (used in file names and tests).
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            ChartKind::Histogram(_) => "histogram",
            ChartKind::BoxPlot(_) => "boxplot",
            ChartKind::Pareto(_) => "pareto",
            ChartKind::Scatter(_) => "scatter",
            ChartKind::CorrelationHeatmap(_) => "heatmap",
            ChartKind::GroupedScatter(_) => "grouped-scatter",
            ChartKind::Density(_) => "density",
            ChartKind::Bar(_) => "bar",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        let spec = ChartSpec {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            kind: ChartKind::Histogram(HistogramSpec {
                min: 0.0,
                max: 1.0,
                counts: vec![1, 2],
            }),
        };
        assert_eq!(spec.kind_name(), "histogram");
    }

    #[test]
    fn serde_round_trip() {
        let spec = ChartSpec {
            title: "scatter".into(),
            x_label: "a".into(),
            y_label: "b".into(),
            kind: ChartKind::Scatter(ScatterSpec {
                points: vec![[1.0, 2.0], [3.0, 4.0]],
                fit: Some((2.0, -1.0)),
            }),
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ChartSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
