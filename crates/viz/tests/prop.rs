//! Property-based tests: every renderer must accept arbitrary (even
//! adversarial) chart specs without panicking, and SVG output must stay
//! structurally sound.

use foresight_viz::*;
use proptest::prelude::*;

fn arbitrary_spec() -> impl Strategy<Value = ChartSpec> {
    let title = "[\\PC]{0,30}";
    let values = proptest::collection::vec(-1e9f64..1e9, 0..40);
    let counts = proptest::collection::vec(0u64..10_000, 0..40);
    let labels = proptest::collection::vec("[a-z<>&\"]{0,8}", 0..12);

    let histogram =
        (title, -1e6f64..1e6, 0.0f64..1e6, counts.clone()).prop_map(|(t, min, span, counts)| {
            ChartSpec {
                title: t,
                x_label: "x".into(),
                y_label: "y".into(),
                kind: ChartKind::Histogram(HistogramSpec {
                    min,
                    max: min + span,
                    counts,
                }),
            }
        });
    let scatter = (values.clone(), values.clone()).prop_map(|(xs, ys)| ChartSpec {
        title: "s".into(),
        x_label: "x".into(),
        y_label: "y".into(),
        kind: ChartKind::Scatter(ScatterSpec {
            points: xs.iter().zip(&ys).map(|(&x, &y)| [x, y]).collect(),
            fit: None,
        }),
    });
    let bar = (labels.clone(), values.clone()).prop_map(|(ls, vs)| {
        let n = ls.len().min(vs.len());
        ChartSpec {
            title: "b".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            kind: ChartKind::Bar(BarSpec {
                labels: ls.into_iter().take(n).collect(),
                values: vs.into_iter().take(n).collect(),
            }),
        }
    });
    let pareto = (labels, counts).prop_map(|(ls, cs)| {
        let n = ls.len().min(cs.len());
        let bars: Vec<(String, u64)> = ls.into_iter().zip(cs).take(n).collect();
        let total = bars.iter().map(|(_, c)| c).sum();
        ChartSpec {
            title: "p".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            kind: ChartKind::Pareto(ParetoSpec { bars, total }),
        }
    });
    let heatmap = (2usize..6).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(-1.0f64..1.0, d), d).prop_map(
            move |values| ChartSpec {
                title: "h".into(),
                x_label: String::new(),
                y_label: String::new(),
                kind: ChartKind::CorrelationHeatmap(HeatmapSpec {
                    labels: (0..d).map(|i| format!("c{i}")).collect(),
                    values,
                }),
            },
        )
    });
    prop_oneof![histogram, scatter, bar, pareto, heatmap]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_renderers_accept_arbitrary_specs(spec in arbitrary_spec()) {
        let svg = render_svg(&spec, SvgOptions::default());
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.ends_with("</svg>"));
        prop_assert!(!svg.contains("NaN"), "NaN leaked into SVG");
        // every raw < in user text must have been escaped
        prop_assert!(!svg.contains("<<"));

        let text = render_text(&spec, 40);
        prop_assert!(!text.is_empty());

        let vega = to_vega_lite(&spec);
        prop_assert!(vega["$schema"].is_string());
        prop_assert!(serde_json::to_string(&vega).is_ok());

        let mut report = Report::new("prop");
        report.section("s", "", vec![spec]);
        let html = report.to_html();
        prop_assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn carousel_never_misaligns(blocks in proptest::collection::vec("[a-z\\n ]{0,40}", 0..5)) {
        let rendered = carousel(&blocks, 1);
        // every line of the carousel has the same display width
        let widths: Vec<usize> = rendered.lines().map(|l| l.chars().count()).collect();
        if let Some(&first) = widths.first() {
            prop_assert!(widths.iter().all(|&w| w == first), "ragged carousel: {:?}", widths);
        }
    }

    #[test]
    fn sparkline_width_is_exact(values in proptest::collection::vec(0.0f64..1e6, 0..50), width in 1usize..120) {
        prop_assert_eq!(foresight_viz::text::sparkline(&values, width).chars().count(), width);
    }
}
