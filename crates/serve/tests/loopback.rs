//! End-to-end protocol tests over real loopback sockets: wire answers
//! must be bit-identical to in-process `SessionHandle` answers, admission
//! control must shed with typed errors, the server-owned session table
//! must expire (TTL) and evict (LRU) — and a mismatched `restore` must be
//! rejected with the typed `session_mismatch` error, over the wire.

use foresight_data::{Table, TableBuilder, TableSource};
use foresight_engine::stream::{RepublishPolicy, StreamConfig, StreamWriter};
use foresight_engine::{CoreBuilder, EngineCore, InsightQuery};
use foresight_serve::{Client, ClientError, ErrorCode, ServeConfig, ServeCore, Server};
use foresight_sketch::CatalogConfig;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic little table: three numeric columns, one categorical.
fn table(offset: usize, rows: usize) -> Table {
    let col =
        |f: &dyn Fn(usize) -> f64| -> Vec<f64> { (offset..offset + rows).map(|r| f(r)).collect() };
    let cats: Vec<&str> = (offset..offset + rows)
        .map(|r| ["low", "mid", "high"][r % 3])
        .collect();
    TableBuilder::new("loopback")
        .numeric("x", col(&|r| r as f64))
        .numeric("y", col(&|r| 3.0 * r as f64 + ((r * 17) % 11) as f64))
        .numeric("z", col(&|r| ((r * 37) % 101) as f64))
        .categorical("c", cats)
        .build()
        .unwrap()
}

fn core(rows: usize) -> Arc<EngineCore> {
    let mut builder = CoreBuilder::new(TableSource::materialized(table(0, rows)));
    builder.preprocess(&CatalogConfig::default()).unwrap();
    builder.freeze()
}

fn start(core: ServeCore, config: ServeConfig) -> Server {
    Server::start(core, "127.0.0.1:0", config).unwrap()
}

fn server_code(err: ClientError) -> ErrorCode {
    match err {
        ClientError::Server(wire) => wire.code,
        other => panic!("expected a typed server error, got: {other}"),
    }
}

/// The tentpole's correctness bar: everything a remote client reads must
/// be byte-for-byte what an in-process handle over the same core
/// computes. `float_roundtrip` JSON makes f64 scores survive the wire
/// exactly, so plain `assert_eq!` is the right check.
#[test]
fn wire_answers_are_bit_identical_to_in_process() {
    let core = core(64);
    let server = start(ServeCore::Static(Arc::clone(&core)), ServeConfig::default());
    let mut local = core.handle();
    let mut client = Client::connect(server.addr()).unwrap();

    let hello = client.hello().unwrap();
    assert_eq!(hello.dataset, "loopback");
    assert_eq!(hello.rows, 64);
    assert_eq!(hello.columns, vec!["x", "y", "z", "c"]);
    assert!(!hello.streaming);

    let session = client.open().unwrap();
    let queries = [
        InsightQuery::class("linear-relationship").top_k(3),
        InsightQuery::class("skew").top_k(2),
        InsightQuery::class("outliers").top_k(4),
        InsightQuery::class("dispersion").top_k(2).fix_attr(2),
    ];
    for query in &queries {
        let remote = client.query(session, query.clone()).unwrap();
        let in_process = local.query(query).unwrap();
        assert_eq!(remote, in_process, "wire drift on {}", query.class_id);
    }

    // focus-driven re-ranking must transfer too: focus the same insight
    // on both sides and compare the re-ranked answers
    let seed_query = InsightQuery::class("linear-relationship").top_k(1);
    let seed = local.query(&seed_query).unwrap();
    assert_eq!(client.query(session, seed_query).unwrap(), seed);
    client.focus(session, seed[0].clone()).unwrap();
    local.focus(seed[0].clone());
    let query = InsightQuery::class("linear-relationship").top_k(5);
    assert_eq!(
        client.query(session, query.clone()).unwrap(),
        local.query(&query).unwrap(),
        "wire drift under focus re-ranking"
    );

    assert_eq!(
        client.carousels(session, 3).unwrap(),
        local.carousels(3).unwrap()
    );
    assert_eq!(client.profile(session).unwrap(), local.profile().unwrap());

    // save on the wire, restore in process: the exact same session state
    let state = client.save(session).unwrap();
    let mut adopted = core.handle();
    adopted
        .restore_session_checked(foresight_engine::Session::from_json(&state).unwrap())
        .unwrap();
    assert_eq!(adopted.session(), local.session());

    client.close(session).unwrap();
    server.shutdown();
}

/// A held worker with a depth-1 queue: the first waiting request queues,
/// the next is shed with the typed `overloaded` error — and the shed is
/// counted as load-shed, not as an error.
#[test]
fn full_worker_queue_sheds_with_typed_overloaded() {
    let core = core(48);
    let server = start(
        ServeCore::Static(Arc::clone(&core)),
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            enable_test_commands: true,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    let mut opener = Client::connect(addr).unwrap();
    let sleeper_session = opener.open().unwrap();
    let queued_session = opener.open().unwrap();
    let shed_session = opener.open().unwrap();

    // hold the only worker …
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .call(
                Some(sleeper_session),
                foresight_serve::Command::Sleep { ms: 700 },
            )
            .unwrap();
    });
    std::thread::sleep(Duration::from_millis(150));
    // … fill its depth-1 queue …
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .query(queued_session, InsightQuery::class("skew").top_k(1))
            .unwrap();
    });
    std::thread::sleep(Duration::from_millis(150));
    // … and the next request must be shed, immediately and typed.
    let mut client = Client::connect(addr).unwrap();
    let err = client
        .query(shed_session, InsightQuery::class("skew").top_k(1))
        .unwrap_err();
    assert_eq!(server_code(err), ErrorCode::Overloaded);

    sleeper.join().unwrap();
    queued.join().unwrap();

    let metrics = client.metrics().unwrap();
    assert!(metrics.serve.load_shed >= 1, "shed must be counted");
    assert_eq!(
        metrics.serve.errors, 0,
        "load-shed is admission control, not an error"
    );
    server.shutdown();
}

/// Sessions idle past the TTL disappear; touching one afterwards gets the
/// typed `unknown_session` error and the expiry is counted.
#[test]
fn idle_sessions_expire_by_ttl() {
    let core = core(48);
    let server = start(
        ServeCore::Static(Arc::clone(&core)),
        ServeConfig {
            workers: 1,
            session_ttl: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(server.addr()).unwrap();
    let session = client.open().unwrap();
    client
        .query(session, InsightQuery::class("skew").top_k(1))
        .unwrap();
    // the worker sweeps at most every 500ms while idle
    std::thread::sleep(Duration::from_millis(1200));
    let err = client
        .query(session, InsightQuery::class("skew").top_k(1))
        .unwrap_err();
    assert_eq!(server_code(err), ErrorCode::UnknownSession);
    assert!(client.metrics().unwrap().serve.sessions_expired >= 1);
    server.shutdown();
}

/// Past the session budget the least-recently-used session is evicted —
/// recency is per *use*, not per creation.
#[test]
fn session_table_evicts_least_recently_used() {
    let core = core(48);
    let server = start(
        ServeCore::Static(Arc::clone(&core)),
        ServeConfig {
            workers: 1,
            max_sessions: 2,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(server.addr()).unwrap();
    let first = client.open().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let second = client.open().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    // touch the older session so the newer one becomes the LRU victim
    client
        .query(first, InsightQuery::class("skew").top_k(1))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let third = client.open().unwrap();

    let err = client
        .query(second, InsightQuery::class("skew").top_k(1))
        .unwrap_err();
    assert_eq!(server_code(err), ErrorCode::UnknownSession);
    client
        .query(first, InsightQuery::class("skew").top_k(1))
        .unwrap();
    client
        .query(third, InsightQuery::class("skew").top_k(1))
        .unwrap();
    assert!(client.metrics().unwrap().serve.sessions_evicted >= 1);
    server.shutdown();
}

/// A `restore` whose saved state disagrees with the serving core must be
/// rejected with the typed `session_mismatch` error, over the wire.
#[test]
fn restore_of_foreign_session_is_rejected_typed() {
    // state saved against a different dataset/schema …
    let other = TableBuilder::new("other")
        .numeric("a", (0..40).map(|r| r as f64).collect())
        .numeric("b", (0..40).map(|r| (r * r) as f64).collect())
        .build()
        .unwrap();
    let foreign_core = CoreBuilder::new(TableSource::materialized(other)).freeze();
    let mut foreign = foreign_core.handle();
    foreign
        .query(&InsightQuery::class("skew").top_k(1))
        .unwrap();
    let state = foreign.session().to_json().unwrap();

    // … restored into a server fronting the loopback table
    let server = start(ServeCore::Static(core(48)), ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let session = client.open().unwrap();
    let err = client.restore(session, state).unwrap_err();
    assert_eq!(server_code(err), ErrorCode::SessionMismatch);
    // the session survives a rejected restore
    client
        .query(session, InsightQuery::class("skew").top_k(1))
        .unwrap();
    server.shutdown();
}

/// Over the connection budget, a new connection gets one typed
/// `too_many_connections` line and is closed.
#[test]
fn connection_budget_sheds_typed() {
    let core = core(48);
    let server = start(
        ServeCore::Static(Arc::clone(&core)),
        ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        },
    );
    let mut first = Client::connect(server.addr()).unwrap();
    first.hello().unwrap(); // proves the first connection is live
    let mut second = Client::connect(server.addr()).unwrap();
    let err = second.hello().unwrap_err();
    assert_eq!(server_code(err), ErrorCode::TooManyConnections);
    assert!(first.metrics().unwrap().serve.connections_shed >= 1);
    server.shutdown();
}

/// A server fronting a live stream: remote sessions bind to the
/// publication slot, report staleness, and (with the every-query adopt
/// policy) answer over republished rows automatically.
#[test]
fn stream_backed_sessions_follow_republishes() {
    let seed = table(0, 60);
    let base = CoreBuilder::new(TableSource::materialized(seed)).freeze();
    let writer = StreamWriter::spawn(
        base,
        StreamConfig {
            policy: RepublishPolicy {
                max_rows: 30,
                ..RepublishPolicy::default()
            },
            ..StreamConfig::default()
        },
    );
    let server = start(
        ServeCore::Stream(writer.published()),
        ServeConfig::default(),
    );
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.hello().unwrap().streaming);
    let session = client.open().unwrap();
    client
        .query(session, InsightQuery::class("skew").top_k(1))
        .unwrap();

    for i in 0..3 {
        writer.send(table(60 + i * 30, 30)).unwrap();
    }
    writer.flush().unwrap();

    // a query adopts the newest snapshot, so staleness collapses to zero
    client
        .query(session, InsightQuery::class("skew").top_k(1))
        .unwrap();
    let staleness = client.staleness(session).unwrap();
    assert_eq!(staleness.snapshot_rows, 60 + 3 * 30);
    assert_eq!(staleness.rows_behind, 0);

    server.shutdown();
    writer.finish().unwrap();
}

/// The LSH knob over the wire: a wide-table carousel served in LSH mode
/// must be bit-identical to an in-process handle under the same strategy,
/// `SetCandidates` echoes canonical spellings (and rejects junk, typed),
/// and the EXPLAIN collision counts survive the JSON round-trip exactly.
#[test]
fn lsh_carousels_and_explain_counts_survive_the_wire() {
    use foresight_engine::CandidateStrategy;
    // a wide table (>= the Auto width threshold) so LSH actually engages
    let wide = {
        let mut b = TableBuilder::new("wide-loopback");
        let noise = |r: usize, c: u64| {
            let x = (r as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(c * 2531);
            (x >> 33) as f64 / 1e9
        };
        let base: Vec<f64> = (0..96).map(|r| r as f64 + noise(r, 0)).collect();
        b = b.numeric("w0", base.clone());
        // a strong planted partner for w0, then independent noise columns
        b = b.numeric(
            "w1",
            base.iter()
                .enumerate()
                .map(|(r, v)| v + 0.01 * noise(r, 1))
                .collect(),
        );
        for c in 2..80u64 {
            b = b.numeric(format!("w{c}"), (0..96).map(|r| noise(r, c)).collect());
        }
        b.build().unwrap()
    };
    let mut builder = CoreBuilder::new(TableSource::materialized(wide));
    // pin k=256 signatures: the planner derives (K, L) = (16, 16) from it,
    // which `hello` must then advertise
    builder
        .preprocess(&CatalogConfig {
            hyperplane_k: Some(256),
            ..Default::default()
        })
        .unwrap();
    let core = builder.freeze();

    let server = start(ServeCore::Static(Arc::clone(&core)), ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let hello = client.hello().unwrap();
    if core.lsh_index().is_some() {
        assert_eq!(hello.lsh_tables, 16, "k=256 signatures plan 16 tables");
    } else {
        assert_eq!(hello.lsh_tables, 0, "index force-disabled");
    }

    let session = client.open().unwrap();
    // canonical echo + typed rejection
    assert_eq!(client.set_candidates(session, "lsh:4").unwrap(), "lsh:4");
    assert_eq!(
        client.set_candidates(session, "exact").unwrap(),
        "exhaustive"
    );
    assert_eq!(
        server_code(client.set_candidates(session, "nope").unwrap_err()),
        ErrorCode::BadRequest
    );
    assert_eq!(client.set_candidates(session, "lsh").unwrap(), "lsh");

    // carousel in LSH mode: bit-identical to in-process under the knob
    let mut local = core.handle();
    local.set_candidate_strategy(CandidateStrategy::Lsh { probes: None });
    let remote = client.carousels(session, 3).unwrap();
    let in_process = local.carousels(3).unwrap();
    assert_eq!(
        remote, in_process,
        "LSH-mode carousel drifted over the wire"
    );

    // and the query path too
    let q = InsightQuery::class("linear-relationship").top_k(5);
    assert_eq!(
        client.query(session, q.clone()).unwrap(),
        local.query(&q).unwrap()
    );

    // EXPLAIN candidate counts survive the JSON round-trip
    let (results, trace) = client.explain(session, q.clone()).unwrap();
    assert_eq!(results, local.query(&q).unwrap());
    match trace {
        Some(trace) => {
            let wire_lsh = trace.lsh.expect("LSH-strategy explain carries counts");
            let local_trace = local.explain(&q).unwrap().trace.expect("trace feature on");
            let local_lsh = local_trace
                .lsh
                .expect("LSH-strategy explain carries counts");
            assert_eq!(wire_lsh.collision_pairs, local_lsh.collision_pairs);
            assert_eq!(wire_lsh.universe_columns, local_lsh.universe_columns);
            assert_eq!(wire_lsh.tables_probed, local_lsh.tables_probed);
            assert_eq!(wire_lsh.universe_columns, 80);
            assert!(trace
                .to_text()
                .contains("candidates from LSH bucket collisions:"));
        }
        None => assert!(!cfg!(feature = "trace")),
    }

    client.close(session).unwrap();
    server.shutdown();
}
