//! Server-binary smoke test — the same check CI runs: spawn the real
//! `foresight-serve` binary, run a scripted session over loopback, and
//! require the wire answers to be bit-identical to an in-process
//! `SessionHandle` over the same dataset build.

use foresight_data::{datasets, TableSource};
use foresight_engine::{CoreBuilder, InsightQuery};
use foresight_serve::Client;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// Kills the child even when an assertion panics mid-test.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn scripted_session_matches_in_process_answers() {
    let child = Command::new(env!("CARGO_BIN_EXE_foresight-serve"))
        .args(["oecd", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn foresight-serve");
    let mut child = Reap(child);

    // the binary announces "foresight-serve listening on <addr>" once up
    let stdout = child.0.stdout.take().expect("piped stdout");
    let mut announcement = String::new();
    BufReader::new(stdout)
        .read_line(&mut announcement)
        .expect("read announcement");
    let addr = announcement
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in announcement")
        .to_owned();
    assert!(
        announcement.starts_with("foresight-serve listening on "),
        "unexpected announcement: {announcement:?}"
    );

    // the same build path the binary takes: materialized oecd, no sketches
    let mut local = CoreBuilder::new(TableSource::materialized(datasets::oecd()))
        .freeze()
        .handle();

    let mut client = Client::connect(addr.as_str()).expect("connect to spawned server");
    let hello = client.hello().unwrap();
    assert_eq!(hello.dataset, "oecd");
    assert_eq!(hello.protocol, foresight_serve::PROTOCOL_VERSION);

    let session = client.open().unwrap();
    for query in [
        InsightQuery::class("linear-relationship").top_k(3),
        InsightQuery::class("skew").top_k(2),
        InsightQuery::class("outliers").top_k(3),
    ] {
        let remote = client.query(session, query.clone()).unwrap();
        let in_process = local.query(&query).unwrap();
        assert_eq!(
            remote, in_process,
            "binary wire drift on {}",
            query.class_id
        );
    }
    assert_eq!(
        client.carousels(session, 2).unwrap(),
        local.carousels(2).unwrap()
    );
    assert_eq!(client.profile(session).unwrap(), local.profile().unwrap());

    // focus → re-rank, still identical
    let top = local
        .query(&InsightQuery::class("linear-relationship").top_k(1))
        .unwrap();
    let seed_query = InsightQuery::class("linear-relationship").top_k(1);
    assert_eq!(client.query(session, seed_query).unwrap(), top);
    client.focus(session, top[0].clone()).unwrap();
    local.focus(top[0].clone());
    let reranked = InsightQuery::class("linear-relationship").top_k(4);
    assert_eq!(
        client.query(session, reranked.clone()).unwrap(),
        local.query(&reranked).unwrap()
    );

    client.close(session).unwrap();
}
