//! End-to-end monitoring tests over real loopback sockets: a raw HTTP
//! `GET /metrics` scrape must parse as Prometheus text exposition and
//! agree with the wire-JSON `Metrics` snapshot from the same server; a
//! saturated worker queue must surface as a `degraded` health verdict
//! with a typed shed-storm reason, and the watchdog must log the alert
//! firing and then resolving; `ResetMetrics` must zero the counters and
//! mark a monitor discontinuity instead of deriving negative rates.

use foresight_data::{Table, TableBuilder, TableSource};
use foresight_engine::{
    AlertKind, CoreBuilder, EngineCore, HealthPolicy, HealthReason, HealthState, InsightQuery,
    MonitorConfig,
};
use foresight_serve::{Client, ServeConfig, ServeCore, Server};
use foresight_sketch::CatalogConfig;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn table(rows: usize) -> Table {
    TableBuilder::new("monitored")
        .numeric("x", (0..rows).map(|r| r as f64).collect())
        .numeric("y", (0..rows).map(|r| (r * r % 97) as f64).collect())
        .numeric("z", (0..rows).map(|r| ((r * 31) % 53) as f64).collect())
        .build()
        .unwrap()
}

fn core(rows: usize) -> Arc<EngineCore> {
    let mut builder = CoreBuilder::new(TableSource::materialized(table(rows)));
    builder.preprocess(&CatalogConfig::default()).unwrap();
    builder.freeze()
}

/// A fast-cadence monitor config so tests observe windows in tens of
/// milliseconds instead of seconds.
fn fast_monitor(policy: HealthPolicy) -> MonitorConfig {
    MonitorConfig {
        cadence_ms: 25,
        capacity: 600,
        alert_capacity: 64,
        policy,
    }
}

/// `FORESIGHT_DISABLE_MONITOR=1` (the CI kill-switch run) suppresses the
/// sampler thread process-wide; tests that need a live sampler no-op.
fn sampler_killed() -> bool {
    std::env::var("FORESIGHT_DISABLE_MONITOR").is_ok_and(|v| v == "1")
}

/// One raw HTTP GET against the serve socket; returns (status, headers,
/// body). The server answers and closes, so read-to-EOF terminates.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status_line = head.lines().next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_owned(), body.to_owned())
}

/// Parses Prometheus text exposition into `full-series-name -> value`
/// (label set included in the key) and checks structural invariants:
/// every non-comment line is `name{labels}? value`, every series is
/// preceded by HELP and TYPE comments for its family.
fn parse_exposition(body: &str) -> HashMap<String, f64> {
    let mut series = HashMap::new();
    let mut helped: Vec<String> = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.push(rest.split_whitespace().next().unwrap().to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            typed.push(parts.next().unwrap().to_owned());
            let kind = parts.next().unwrap();
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");
        let (name_labels, value) = line.rsplit_once(' ').expect("`name value` form");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            if value == "+Inf" {
                f64::INFINITY
            } else {
                panic!("unparseable sample value in {line}")
            }
        });
        let family = name_labels.split('{').next().unwrap();
        let base = family
            .strip_suffix("_bucket")
            .or_else(|| family.strip_suffix("_sum"))
            .or_else(|| family.strip_suffix("_count"))
            .unwrap_or(family);
        assert!(
            helped.iter().any(|h| h == family || h == base),
            "series {family} has no HELP"
        );
        assert!(
            typed.iter().any(|t| t == family || t == base),
            "series {family} has no TYPE"
        );
        series.insert(name_labels.to_owned(), value);
    }
    assert_eq!(helped.len(), typed.len(), "HELP/TYPE must pair up");
    series
}

/// The loopback scrape test: counters scraped over raw HTTP must equal
/// the ones the wire-JSON `Metrics` command reports from the same server.
#[test]
fn prometheus_scrape_matches_wire_json_snapshot() {
    let server = Server::start(
        ServeCore::Static(core(64)),
        "127.0.0.1:0",
        ServeConfig {
            monitor: fast_monitor(HealthPolicy::default()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let session = client.open().unwrap();
    for class in ["skew", "outliers", "linear-relationship"] {
        client
            .query(session, InsightQuery::class(class).top_k(2))
            .unwrap();
    }

    let (status, head, body) = http_get(server.addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type, got: {head}"
    );
    let series = parse_exposition(&body);

    // no query/session/ingest traffic between the scrape and this wire
    // snapshot, so those counters must agree exactly
    let snap = client.metrics().unwrap();
    assert_eq!(
        series["foresight_queries_total"], snap.queries.total as f64,
        "scraped query counter drifted from the wire snapshot"
    );
    assert_eq!(
        series["foresight_serve_sessions_created_total"],
        snap.serve.sessions_created as f64
    );
    assert_eq!(
        series["foresight_serve_load_shed_total"],
        snap.serve.load_shed as f64
    );
    assert_eq!(
        series["foresight_ingest_rows_total"],
        snap.ingest.rows as f64
    );
    for (class, count) in &snap.queries.by_class {
        assert_eq!(
            series[&format!("foresight_queries_by_class_total{{class=\"{class}\"}}")],
            *count as f64
        );
    }
    // the scrape itself is admission-controlled traffic: it must appear
    // in the request counter the next snapshot reports
    assert!(snap.serve.requests >= 1);
    assert!(series["foresight_uptime_seconds"] > 0.0);
    assert!(series
        .keys()
        .any(|k| k.starts_with("foresight_build_info{")));
    // resource gauges ride along
    assert!(series["foresight_resident_bytes{component=\"catalog\"}"] > 0.0);

    // hello advertises the same build info the exposition carries
    let hello = client.hello().unwrap();
    assert_eq!(hello.version, foresight_engine::build_version());
    assert!(!hello.kernel.is_empty());

    // unknown paths 404, as plain text
    let (status, _, _) = http_get(server.addr(), "/nope");
    assert_eq!(status, 404);
    server.shutdown();
}

/// Saturating the (single, depth-1) worker queue must turn health
/// `degraded` with a typed shed-storm reason, and the watchdog must log
/// the alert firing and then resolving once the storm passes. `/healthz`
/// stays answerable (and 200 — degraded still serves) throughout.
#[test]
fn shed_storm_degrades_health_and_fires_then_resolves_alert() {
    if sampler_killed() {
        return; // needs the watchdog's sampling windows
    }
    let server = Server::start(
        ServeCore::Static(core(48)),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            enable_test_commands: true,
            monitor: fast_monitor(HealthPolicy {
                max_shed_per_sec: 1.0,
                ..HealthPolicy::default()
            }),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    let held_session = client.open().unwrap();
    let fill_session = client.open().unwrap();
    let shed_session = client.open().unwrap();

    // hold the only worker …
    let sleeper = std::thread::spawn(move || {
        let mut holder = Client::connect(addr).unwrap();
        holder
            .call(
                Some(held_session),
                foresight_serve::Command::Sleep { ms: 3000 },
            )
            .unwrap();
    });
    std::thread::sleep(Duration::from_millis(100));
    // … park one request in its depth-1 queue (blocks until the hold
    // ends, so it runs on its own connection) …
    let filler = std::thread::spawn(move || {
        let mut fill = Client::connect(addr).unwrap();
        fill.query(fill_session, InsightQuery::class("skew").top_k(1))
            .unwrap();
    });
    std::thread::sleep(Duration::from_millis(50));

    // … and hammer: every request sheds instantly, far past the 1/s
    // bound. Health is polled inline mid-storm (the 25 ms sampler must
    // flag the storm while it is happening).
    let deadline = Instant::now() + Duration::from_secs(8);
    let mut shed = 0u32;
    let degraded = loop {
        for _ in 0..5 {
            if client
                .query(shed_session, InsightQuery::class("skew").top_k(1))
                .is_err()
            {
                shed += 1;
            }
        }
        match client.health().unwrap() {
            HealthState::Degraded(reasons) => break reasons,
            _ if Instant::now() > deadline => {
                panic!("never degraded under a shed storm ({shed} sheds)")
            }
            _ => {}
        }
    };
    assert!(shed > 0, "storm produced no sheds");
    assert!(
        degraded
            .iter()
            .any(|r| matches!(r, HealthReason::ShedStorm { .. })),
        "degraded without a shed-storm reason: {degraded:?}"
    );
    // degraded is still ready: the HTTP probe answers 200 inline even
    // with the only worker wedged (a few more sheds keep the current
    // sampling window hot so the verdict cannot flip mid-probe)
    for _ in 0..5 {
        let _ = client.query(shed_session, InsightQuery::class("skew").top_k(1));
    }
    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.starts_with("degraded"), "body: {body}");

    sleeper.join().unwrap();
    filler.join().unwrap();

    // storm over: the alert must resolve and health return to healthy
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if matches!(client.health().unwrap(), HealthState::Healthy) {
            break;
        }
        assert!(Instant::now() < deadline, "health never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }
    let alerts = client.alerts().unwrap();
    let shed_alerts: Vec<_> = alerts
        .iter()
        .filter(|a| a.kind == AlertKind::ShedStorm)
        .collect();
    assert!(
        shed_alerts.iter().any(|a| a.fired),
        "no fired shed-storm alert: {alerts:?}"
    );
    assert!(
        shed_alerts.iter().any(|a| !a.fired),
        "shed-storm alert never resolved: {alerts:?}"
    );
    let fired_at = shed_alerts.iter().position(|a| a.fired).unwrap();
    let resolved_at = shed_alerts.iter().position(|a| !a.fired).unwrap();
    assert!(fired_at < resolved_at, "fired must precede resolved");

    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.starts_with("healthy"), "body: {body}");
    server.shutdown();
}

/// `ResetMetrics` zeroes the wire counters and the monitor marks the
/// next sample as a discontinuity (zero rates) instead of going negative.
#[test]
fn reset_metrics_marks_monitor_discontinuity() {
    if sampler_killed() {
        return; // needs the sampler to fill the ring
    }
    let server = Server::start(
        ServeCore::Static(core(48)),
        "127.0.0.1:0",
        ServeConfig {
            monitor: fast_monitor(HealthPolicy::default()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let session = client.open().unwrap();
    for _ in 0..5 {
        client
            .query(session, InsightQuery::class("skew").top_k(1))
            .unwrap();
    }
    // let the sampler observe the traffic first
    std::thread::sleep(Duration::from_millis(80));
    let before = client.metrics_history(0).unwrap();
    assert!(!before.is_empty(), "sampler must have filled the ring");
    assert!(
        before.windows(2).all(|w| w[0].seq < w[1].seq),
        "history must be oldest-first"
    );
    let last_seq = before.last().unwrap().seq;

    client.reset_metrics().unwrap();
    assert_eq!(
        client.metrics().unwrap().queries.total,
        0,
        "counters zeroed"
    );

    // the first post-reset sample carries the discontinuity flag and
    // reports zero rates rather than negative ones
    let deadline = Instant::now() + Duration::from_secs(5);
    let sample = loop {
        let newest = client.metrics_history(1).unwrap();
        match newest.last() {
            Some(s) if s.seq > last_seq && s.discontinuity => break s.clone(),
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "no discontinuity sample after reset; newest: {newest:?}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    assert_eq!(sample.request_rate, 0.0);
    assert_eq!(sample.query_rate, 0.0);
    assert!(
        sample.interval_secs == 0.0,
        "window resets with the counters"
    );
    server.shutdown();
}

/// With the monitor disabled (config here; the env kill-switch takes the
/// same path) the server runs headless: no ring, no alerts, but health
/// is computed on demand and the `/healthz` probe stays live.
#[test]
fn disabled_monitor_answers_health_on_demand() {
    let server = Server::start(
        ServeCore::Static(core(48)),
        "127.0.0.1:0",
        ServeConfig {
            enable_monitor: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let session = client.open().unwrap();
    client
        .query(session, InsightQuery::class("skew").top_k(1))
        .unwrap();
    std::thread::sleep(Duration::from_millis(60));
    assert!(
        client.metrics_history(0).unwrap().is_empty(),
        "no sampler thread, so the ring must stay empty"
    );
    assert!(client.alerts().unwrap().is_empty());
    assert!(matches!(client.health().unwrap(), HealthState::Healthy));
    let (status, _, body) = http_get(server.addr(), "/healthz");
    assert_eq!(status, 200);
    assert!(body.starts_with("healthy"), "body: {body}");
    server.shutdown();
}
