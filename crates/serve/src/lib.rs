//! # foresight-serve
//!
//! The network serving front end: a dependency-free TCP server exposing
//! the full exploration surface — queries, carousels, focus-driven
//! re-ranking, EXPLAIN, profiles, metrics — over a line-delimited JSON
//! protocol, so Foresight sessions can live behind a socket instead of
//! inside the process.
//!
//! * [`protocol`] — the wire types: requests, commands, replies, typed
//!   error codes
//! * [`server`] — the reactor: acceptor + connection threads + session-
//!   sharded workers with bounded queues, LRU + TTL session eviction, and
//!   first-class admission control (typed `overloaded` /
//!   `too_many_connections` sheds, all counted in engine telemetry)
//! * [`client`] — a small blocking client used by the remote explorer,
//!   the CI smoke test, and the `exp_serve` load generator
//!
//! The same socket also answers plaintext HTTP `GET /metrics` (Prometheus
//! text exposition) and `GET /healthz` (200 healthy/degraded, 503
//! unready) — the connection thread sniffs the verb before JSON parsing,
//! so scrapes and health probes bypass the worker queues entirely.
//!
//! The session layer the engine previously kept per-[`SessionHandle`]
//! is here owned by the server: clients `open` a session, the owning
//! worker materializes a handle over the newest core (binding it to the
//! stream publication slot when serving a live ingest), and `save` /
//! `restore` move session state across handles — with the restore
//! re-validated against the adopting core.
//!
//! [`SessionHandle`]: foresight_engine::SessionHandle

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ClientResult};
pub use protocol::{
    Command, ErrorCode, HelloInfo, Reply, Request, Response, WireError, MAX_LINE_BYTES,
    PROTOCOL_VERSION,
};
pub use server::{ServeConfig, ServeCore, Server};
