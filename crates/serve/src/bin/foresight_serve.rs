//! `foresight-serve` — stand-alone server binary.
//!
//! ```text
//! foresight-serve [dataset] [--addr HOST:PORT] [--workers N]
//!                 [--queue-depth N] [--max-connections N]
//!                 [--max-sessions N] [--ttl-secs N] [--preprocess]
//!                 [--test-commands] [--no-monitor]
//!                 [--monitor-cadence-ms N] [--monitor-capacity N]
//!                 [--max-rows-behind N] [--max-shed-per-sec X]
//! ```
//!
//! `dataset` is `oecd` (default), `imdb`, `parkinson`, or a CSV path —
//! the same choices the explorer example accepts. Connect with
//! `cargo run --example explorer -- connect HOST:PORT` or any
//! line-delimited JSON client.

use foresight_data::csv::read_csv;
use foresight_data::infer::InferOptions;
use foresight_data::{datasets, Table, TableSource};
use foresight_engine::CoreBuilder;
use foresight_serve::{ServeConfig, ServeCore, Server};
use foresight_sketch::CatalogConfig;
use std::time::Duration;

fn load_table(arg: Option<&str>) -> Table {
    match arg {
        None | Some("oecd") => datasets::oecd(),
        Some("imdb") => datasets::imdb(),
        Some("parkinson") => datasets::parkinson(),
        Some(path) => read_csv(path, &InferOptions::default()).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: foresight-serve [oecd|imdb|parkinson|file.csv] \
         [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--max-connections N] [--max-sessions N] [--ttl-secs N] \
         [--preprocess] [--test-commands] [--no-monitor] \
         [--monitor-cadence-ms N] [--monitor-capacity N] \
         [--max-rows-behind N] [--max-shed-per-sec X]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    })
}

fn main() {
    let mut dataset: Option<String> = None;
    let mut addr = "127.0.0.1:4547".to_owned();
    let mut config = ServeConfig::default();
    let mut preprocess = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--workers" => config.workers = parse("--workers", args.next()),
            "--queue-depth" => config.queue_depth = parse("--queue-depth", args.next()),
            "--max-connections" => config.max_connections = parse("--max-connections", args.next()),
            "--max-sessions" => config.max_sessions = parse("--max-sessions", args.next()),
            "--ttl-secs" => {
                config.session_ttl = Duration::from_secs(parse("--ttl-secs", args.next()))
            }
            "--preprocess" => preprocess = true,
            "--test-commands" => config.enable_test_commands = true,
            "--no-monitor" => config.enable_monitor = false,
            "--monitor-cadence-ms" => {
                config.monitor.cadence_ms = parse("--monitor-cadence-ms", args.next())
            }
            "--monitor-capacity" => {
                config.monitor.capacity = parse("--monitor-capacity", args.next())
            }
            "--max-rows-behind" => {
                config.monitor.policy.max_rows_behind = parse("--max-rows-behind", args.next())
            }
            "--max-shed-per-sec" => {
                config.monitor.policy.max_shed_per_sec = parse("--max-shed-per-sec", args.next())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                usage();
            }
            other if dataset.is_none() => dataset = Some(other.to_owned()),
            _ => usage(),
        }
    }

    let table = load_table(dataset.as_deref());
    eprintln!(
        "loaded {} ({} rows x {} cols)",
        table.name(),
        table.n_rows(),
        table.n_cols()
    );
    let mut builder = CoreBuilder::new(TableSource::materialized(table));
    if preprocess {
        if let Err(e) = builder.preprocess(&CatalogConfig::default()) {
            eprintln!("preprocess failed: {e}");
            std::process::exit(1);
        }
        eprintln!("sketch catalog built; approximate mode available");
    }
    let core = builder.freeze();

    match Server::start(ServeCore::Static(core), addr.as_str(), config) {
        Ok(server) => {
            // The explorer and smoke test wait for this exact line.
            println!("foresight-serve listening on {}", server.addr());
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    }
}
