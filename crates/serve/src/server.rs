//! The reactor: acceptor + per-connection readers + session-sharded
//! workers, all on `std::net` / `std::thread` — no async runtime.
//!
//! ```text
//!  acceptor ──(connection budget)──▶ connection threads
//!      │                                 │  parse line, answer Hello/
//!      ▼                                 │  Metrics/Slowlog inline
//!  shed + close                          ▼
//!                          bounded per-worker queues ──(full → shed)
//!                                        │
//!                                        ▼
//!                     workers: each owns a disjoint session shard
//!                     (HashMap<id, SessionHandle> + LRU/TTL eviction)
//! ```
//!
//! Sessions are sharded by `id % workers`, so a worker mutates its
//! `SessionHandle`s with no lock at all — the queue is the
//! synchronization. Admission control is first-class and typed: a full
//! queue sheds with [`ErrorCode::Overloaded`] *from the connection thread*
//! (an overloaded worker is never asked to also say "no"), an exhausted
//! connection budget sheds with [`ErrorCode::TooManyConnections`] before a
//! reader thread is even spawned. Both paths, and every session-table
//! transition, land in the engine's own [`Metrics`] registry so one
//! `metrics` command reports the service and the engine together.
//!
//! [`Metrics`]: foresight_engine::Metrics

use crate::protocol::{
    Command, ErrorCode, HelloInfo, Reply, Request, Response, WireError, MAX_LINE_BYTES,
    PROTOCOL_VERSION,
};
use foresight_engine::{
    AdoptPolicy, CandidateStrategy, Endpoint, EngineCore, EngineError, Mode, Monitor,
    MonitorConfig, MonitorTarget, PublishedCore, Session, SessionHandle,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the server fronts: a fixed snapshot, or a live stream publication
/// slot (sessions then bind to it and see staleness, like local handles).
#[derive(Clone)]
pub enum ServeCore {
    /// One immutable snapshot.
    Static(Arc<EngineCore>),
    /// A stream's publication point; new sessions adopt per
    /// [`AdoptPolicy::EveryQuery`].
    Stream(Arc<PublishedCore>),
}

impl ServeCore {
    /// The newest snapshot.
    pub fn latest(&self) -> Arc<EngineCore> {
        match self {
            ServeCore::Static(core) => Arc::clone(core),
            ServeCore::Stream(published) => published.latest(),
        }
    }

    fn published(&self) -> Option<Arc<PublishedCore>> {
        match self {
            ServeCore::Static(_) => None,
            ServeCore::Stream(published) => Some(Arc::clone(published)),
        }
    }

    fn monitor_target(&self) -> MonitorTarget {
        match self {
            ServeCore::Static(core) => MonitorTarget::Static(Arc::clone(core)),
            ServeCore::Stream(published) => MonitorTarget::Stream(Arc::clone(published)),
        }
    }
}

/// Server tuning knobs. The defaults suit a loopback development server;
/// production fronts raise the budgets.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads — one session shard each.
    pub workers: usize,
    /// Bounded depth of each worker's request queue; a full queue sheds
    /// with [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Concurrent-connection budget; excess connections are shed with
    /// [`ErrorCode::TooManyConnections`] and closed.
    pub max_connections: usize,
    /// Total session budget across all workers; per-worker shards evict
    /// least-recently-used sessions past their share.
    pub max_sessions: usize,
    /// Idle time after which a session expires (swept lazily by its
    /// worker).
    pub session_ttl: Duration,
    /// Enables the test-only `Sleep` command (shed tests use it to hold a
    /// worker deterministically). Off for real servers.
    pub enable_test_commands: bool,
    /// Runs the background monitor sampler (`false`, or
    /// `FORESIGHT_DISABLE_MONITOR=1`, falls back to on-demand health with
    /// an empty ring).
    pub enable_monitor: bool,
    /// Sampler cadence, ring capacity, and health/watchdog thresholds.
    pub monitor: MonitorConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            queue_depth: 256,
            max_connections: 1024,
            max_sessions: 4096,
            session_ttl: Duration::from_secs(600),
            enable_test_commands: false,
            enable_monitor: true,
            monitor: MonitorConfig::default(),
        }
    }
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    core: ServeCore,
    /// A pinned snapshot whose registries (metrics, tracer) are shared
    /// across republishes — the stable place to record serving telemetry.
    registry: Arc<EngineCore>,
    config: ServeConfig,
    /// The continuous monitor: ring of derived samples, watchdog alerts,
    /// and the health verdict (answered inline, never behind a worker).
    monitor: Monitor,
    shutdown: AtomicBool,
    live_connections: AtomicUsize,
    next_session: AtomicU64,
}

impl Shared {
    fn metrics(&self) -> &foresight_engine::Metrics {
        self.registry.metrics()
    }
}

/// One queued unit of session work.
struct Job {
    session: u64,
    cmd: Command,
    reply: SyncSender<Result<Reply, WireError>>,
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    worker_txs: Vec<SyncSender<Job>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the acceptor and worker threads.
    pub fn start(
        core: ServeCore,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let registry = core.latest();
        let monitor = if config.enable_monitor {
            Monitor::spawn(core.monitor_target(), config.monitor.clone())
        } else {
            Monitor::disabled(core.monitor_target(), config.monitor.clone())
        };
        let shared = Arc::new(Shared {
            core,
            registry,
            config: config.clone(),
            monitor,
            shutdown: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            next_session: AtomicU64::new(0),
        });
        let workers_n = config.workers.max(1);
        let mut workers = Vec::with_capacity(workers_n);
        let mut worker_txs = Vec::with_capacity(workers_n);
        for index in 0..workers_n {
            let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
            let shared_ = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{index}"))
                    .spawn(move || worker_loop(shared_, rx))?,
            );
            worker_txs.push(tx);
        }
        let connections = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let worker_txs = worker_txs.clone();
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || acceptor_loop(shared, listener, worker_txs, connections))?
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            worker_txs,
            connections,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins every thread.
    /// In-flight requests finish; idle connections close within the read
    /// poll interval.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.connections.lock().expect("connection registry"));
        for conn in conns {
            let _ = conn.join();
        }
        self.worker_txs.clear(); // disconnect the queues
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Polling interval for shutdown checks (accept loop and connection
/// reads).
const POLL: Duration = Duration::from_millis(50);

fn acceptor_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    worker_txs: Vec<SyncSender<Job>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if shared.live_connections.load(Ordering::SeqCst) >= shared.config.max_connections {
                    shared.metrics().record_connection_shed();
                    shed_connection(stream);
                    continue;
                }
                shared.metrics().record_connection();
                shared.live_connections.fetch_add(1, Ordering::SeqCst);
                let shared_ = Arc::clone(&shared);
                let txs = worker_txs.clone();
                let spawned =
                    std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || {
                            connection_loop(&shared_, stream, &txs);
                            shared_.live_connections.fetch_sub(1, Ordering::SeqCst);
                        });
                match spawned {
                    Ok(handle) => connections
                        .lock()
                        .expect("connection registry")
                        .push(handle),
                    Err(_) => {
                        shared.live_connections.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Tells an over-budget connection why it is being closed (best-effort —
/// the peer may already be gone).
fn shed_connection(mut stream: TcpStream) {
    let resp = Response::err(
        0,
        ErrorCode::TooManyConnections,
        "connection budget exhausted; retry later",
    );
    let _ = write_response(&mut stream, &resp);
}

/// One `write_all` per response line (with TCP_NODELAY on the stream):
/// split writes would hand Nagle + delayed-ACK a 40ms+ stall per request.
fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut line = serde_json::to_string(resp)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Reads request lines off one connection until EOF, error, oversized
/// line, or shutdown. Session-less commands are answered inline;
/// session-ful commands are dispatched to the owning worker's bounded
/// queue (full queue → typed shed, recorded, from right here).
fn connection_loop(shared: &Shared, stream: TcpStream, worker_txs: &[SyncSender<Job>]) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // a timeout can strike mid-line with partial bytes already
        // appended to `line` — keep them and resume the same line on the
        // next pass; clear only after a line is fully processed
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if line.len() > MAX_LINE_BYTES {
                    let resp = Response::err(0, ErrorCode::BadRequest, "request line too long");
                    shared.metrics().record_serve_error();
                    let _ = write_response(&mut writer, &resp);
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.len() > MAX_LINE_BYTES {
            let resp = Response::err(0, ErrorCode::BadRequest, "request line too long");
            shared.metrics().record_serve_error();
            let _ = write_response(&mut writer, &resp);
            return;
        }
        let request_line = std::mem::take(&mut line);
        if request_line.trim().is_empty() {
            continue;
        }
        // Plaintext HTTP fast path: a Prometheus scraper (or `curl`) opens
        // the same socket and sends `GET /metrics HTTP/1.1`. Sniffing the
        // verb before the JSON parse keeps the wire protocol untouched and
        // answers scrapes inline — no worker queue, so /healthz responds
        // even when every worker is saturated.
        if request_line.starts_with("GET ") {
            handle_http_get(shared, &mut writer, request_line.trim());
            return; // Connection: close — one response per HTTP connection
        }
        let request: Request = match serde_json::from_str(request_line.trim()) {
            Ok(req) => req,
            Err(e) => {
                shared.metrics().record_serve_error();
                let resp = Response::err(0, ErrorCode::BadRequest, format!("unparseable: {e}"));
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        let started = Instant::now();
        let endpoint = request.cmd.endpoint();
        let response = dispatch(shared, worker_txs, request);
        shared
            .metrics()
            .record_request(endpoint, started.elapsed().as_nanos() as u64);
        if response.err.is_some() {
            // sheds are separately accounted as load-shed, not errors
            match &response.err {
                Some(err) if err.code == ErrorCode::Overloaded => {
                    shared.metrics().record_load_shed()
                }
                _ => shared.metrics().record_serve_error(),
            }
        }
        if write_response(&mut writer, &response).is_err() {
            return;
        }
    }
}

/// Routes one parsed request: inline for session-less commands, through
/// the owning worker's queue otherwise.
fn dispatch(shared: &Shared, worker_txs: &[SyncSender<Job>], request: Request) -> Response {
    let id = request.id;
    match &request.cmd {
        Command::Hello => return Response::ok(id, Reply::Hello(hello_info(shared))),
        Command::Metrics => {
            return Response::ok(id, Reply::Metrics(shared.core.latest().metrics_snapshot()))
        }
        Command::Slowlog => {
            let lines = shared
                .core
                .latest()
                .tracer()
                .slow_queries()
                .iter()
                .map(|entry| entry.to_line())
                .collect();
            return Response::ok(id, Reply::Slowlog(lines));
        }
        Command::MetricsHistory { last } => {
            return Response::ok(id, Reply::MetricsHistory(shared.monitor.history(*last)))
        }
        Command::Health => return Response::ok(id, Reply::Health(shared.monitor.health())),
        Command::Alerts => return Response::ok(id, Reply::Alerts(shared.monitor.alerts())),
        Command::ResetMetrics => {
            shared.metrics().reset();
            // the monitor must not derive negative rates from the shrink
            shared.monitor.mark_discontinuity();
            return Response::ok(id, Reply::MetricsReset);
        }
        _ => {}
    }
    let session = match request.cmd {
        Command::Open => shared.next_session.fetch_add(1, Ordering::Relaxed) + 1,
        _ => match request.session {
            Some(session) => session,
            None => {
                return Response::err(
                    id,
                    ErrorCode::BadRequest,
                    "this command requires a session (send Open first)",
                )
            }
        },
    };
    let worker = &worker_txs[(session % worker_txs.len() as u64) as usize];
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job {
        session,
        cmd: request.cmd,
        reply: reply_tx,
    };
    match worker.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            return Response::err(
                id,
                ErrorCode::Overloaded,
                "worker queue full; retry with backoff",
            )
        }
        Err(TrySendError::Disconnected(_)) => {
            return Response::err(id, ErrorCode::ShuttingDown, "server is shutting down")
        }
    }
    match reply_rx.recv() {
        Ok(Ok(reply)) => Response::ok(id, reply),
        Ok(Err(err)) => Response {
            id,
            ok: None,
            err: Some(err),
        },
        Err(_) => Response::err(id, ErrorCode::ShuttingDown, "worker exited"),
    }
}

fn hello_info(shared: &Shared) -> HelloInfo {
    let core = shared.core.latest();
    let source = core.source();
    HelloInfo {
        server: "foresight-serve".to_owned(),
        protocol: PROTOCOL_VERSION,
        dataset: source.name().to_owned(),
        rows: core.snapshot_rows(),
        cols: source.n_cols(),
        columns: source.schema().names().map(str::to_owned).collect(),
        mode: core.mode().name().to_owned(),
        streaming: matches!(shared.core, ServeCore::Stream(_)),
        lsh_tables: core.lsh_index().map(|ix| ix.config().tables).unwrap_or(0),
        version: foresight_engine::build_version().to_owned(),
        kernel: foresight_engine::kernel_name().to_owned(),
        features: foresight_engine::build_features()
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
    }
}

/// Answers the HTTP GET fast path: `/metrics` with Prometheus text
/// exposition (format 0.0.4), `/healthz` with the monitor's verdict
/// (200 for healthy/degraded — degraded still serves — 503 for
/// unready), anything else 404. HTTP/1.0-style one-shot responses.
fn handle_http_get(shared: &Shared, stream: &mut TcpStream, request_line: &str) {
    let started = Instant::now();
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, reason, content_type, body) = match path {
        "/metrics" => (
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.core.latest().metrics_snapshot().to_prometheus(),
        ),
        "/healthz" => {
            let health = shared.monitor.health();
            let mut body = String::new();
            body.push_str(health.name());
            body.push('\n');
            for reason in health.reasons() {
                body.push_str(&reason.describe());
                body.push('\n');
            }
            let (status, reason) = if health.is_ready() {
                (200, "OK")
            } else {
                (503, "Service Unavailable")
            };
            (status, reason, "text/plain; charset=utf-8", body)
        }
        _ => (
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            format!("no such path: {path}\ntry /metrics or /healthz\n"),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    shared
        .metrics()
        .record_request(Endpoint::Metrics, started.elapsed().as_nanos() as u64);
}

/// One worker's session-shard entry.
struct Entry {
    handle: SessionHandle,
    last_used: Instant,
}

/// The worker loop: drain the queue, sweep expired sessions between jobs.
fn worker_loop(shared: Arc<Shared>, rx: Receiver<Job>) {
    let capacity = shared
        .config
        .max_sessions
        .div_ceil(shared.config.workers.max(1))
        .max(1);
    let mut sessions: HashMap<u64, Entry> = HashMap::new();
    let mut last_sweep = Instant::now();
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => {
                let result = handle_job(&shared, &mut sessions, capacity, &job);
                let _ = job.reply.send(result);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if last_sweep.elapsed() >= Duration::from_millis(500) {
            sweep_expired(&shared, &mut sessions);
            last_sweep = Instant::now();
        }
    }
}

/// Drops sessions idle past the TTL.
fn sweep_expired(shared: &Shared, sessions: &mut HashMap<u64, Entry>) {
    let ttl = shared.config.session_ttl;
    let before = sessions.len();
    sessions.retain(|_, entry| entry.last_used.elapsed() < ttl);
    for _ in sessions.len()..before {
        shared.metrics().record_session_expired();
    }
}

/// Evicts the least-recently-used session to make room for a new one.
fn evict_lru(shared: &Shared, sessions: &mut HashMap<u64, Entry>) {
    if let Some(&victim) = sessions
        .iter()
        .min_by_key(|(_, entry)| entry.last_used)
        .map(|(id, _)| id)
    {
        sessions.remove(&victim);
        shared.metrics().record_session_evicted();
    }
}

fn engine_error(err: EngineError) -> WireError {
    let code = match &err {
        EngineError::SessionMismatch(_) => ErrorCode::SessionMismatch,
        _ => ErrorCode::Engine,
    };
    WireError {
        code,
        message: err.to_string(),
    }
}

fn handle_job(
    shared: &Shared,
    sessions: &mut HashMap<u64, Entry>,
    capacity: usize,
    job: &Job,
) -> Result<Reply, WireError> {
    if let Command::Open = job.cmd {
        sweep_expired(shared, sessions);
        while sessions.len() >= capacity {
            evict_lru(shared, sessions);
        }
        let mut handle = shared.core.latest().handle();
        if let Some(published) = shared.core.published() {
            handle.bind_stream(published);
            handle.set_adopt_policy(AdoptPolicy::EveryQuery);
        }
        shared.metrics().record_session_created();
        sessions.insert(
            job.session,
            Entry {
                handle,
                last_used: Instant::now(),
            },
        );
        return Ok(Reply::Opened {
            session: job.session,
        });
    }
    if let Command::Close = job.cmd {
        return match sessions.remove(&job.session) {
            Some(_) => {
                shared.metrics().record_session_closed();
                Ok(Reply::Closed)
            }
            None => Err(unknown_session(job.session)),
        };
    }
    let Some(entry) = sessions.get_mut(&job.session) else {
        return Err(unknown_session(job.session));
    };
    entry.last_used = Instant::now();
    let handle = &mut entry.handle;
    match &job.cmd {
        Command::Query(query) => handle
            .query(query)
            .map(Reply::Results)
            .map_err(engine_error),
        Command::Explain(query) => handle
            .explain(query)
            .map(|explained| Reply::Explained {
                results: explained.results,
                trace: explained.trace.map(|t| (*t).clone()),
            })
            .map_err(engine_error),
        Command::Carousels { per_class } => handle
            .carousels(*per_class)
            .map(Reply::Carousels)
            .map_err(engine_error),
        Command::Focus(instance) => {
            handle.focus(instance.clone());
            Ok(Reply::Ack { changed: true })
        }
        Command::Unfocus(attrs) => Ok(Reply::Ack {
            changed: handle.unfocus(attrs),
        }),
        Command::ClearFocus => {
            handle.clear_focus();
            Ok(Reply::Ack { changed: true })
        }
        Command::Profile => handle.profile().map(Reply::Profile).map_err(engine_error),
        Command::Refresh => Ok(Reply::Refreshed {
            moved: handle.refresh(),
        }),
        Command::Staleness => Ok(Reply::Staleness(handle.staleness())),
        Command::Save => handle
            .session()
            .to_json()
            .map(|state| Reply::Saved { state })
            .map_err(engine_error),
        Command::Restore { state } => Session::from_json(state)
            .and_then(|session| handle.restore_session_checked(session))
            .map(|()| Reply::Restored)
            .map_err(engine_error),
        Command::SetMode { mode } => {
            let mode = match mode.as_str() {
                "exact" => Mode::Exact,
                "approximate" | "approx" => Mode::Approximate,
                other => {
                    return Err(WireError {
                        code: ErrorCode::BadRequest,
                        message: format!("unknown mode `{other}` (exact / approximate)"),
                    })
                }
            };
            handle
                .set_mode(mode)
                .map(|()| Reply::ModeSet)
                .map_err(engine_error)
        }
        Command::SetCandidates { strategy } => match CandidateStrategy::parse(strategy) {
            Some(parsed) => {
                handle.set_candidate_strategy(parsed);
                Ok(Reply::CandidatesSet {
                    strategy: parsed.name(),
                })
            }
            None => Err(WireError {
                code: ErrorCode::BadRequest,
                message: format!(
                    "unknown candidate strategy `{strategy}` (auto / exhaustive / lsh / lsh:<n>)"
                ),
            }),
        },
        Command::Sleep { ms } => {
            if !shared.config.enable_test_commands {
                return Err(WireError {
                    code: ErrorCode::Unsupported,
                    message: "test commands are disabled on this server".to_owned(),
                });
            }
            std::thread::sleep(Duration::from_millis(*ms));
            Ok(Reply::Slept)
        }
        // session-less commands are answered inline by the connection
        // thread and never reach a worker
        Command::Hello
        | Command::Open
        | Command::Close
        | Command::Metrics
        | Command::Slowlog
        | Command::MetricsHistory { .. }
        | Command::Health
        | Command::Alerts
        | Command::ResetMetrics => Err(WireError {
            code: ErrorCode::BadRequest,
            message: "command is not session-scoped".to_owned(),
        }),
    }
}

fn unknown_session(id: u64) -> WireError {
    WireError {
        code: ErrorCode::UnknownSession,
        message: format!("session {id} does not exist (never created, expired, or evicted)"),
    }
}
