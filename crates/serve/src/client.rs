//! A small blocking client for the wire protocol — used by the remote
//! explorer, the smoke test, and the load generator. One [`Client`] owns
//! one TCP connection and any number of server-side sessions (the
//! protocol multiplexes by session id, so a load generator can drive
//! thousands of sessions over a handful of sockets).

use crate::protocol::{Command, Reply, Request, Response, WireError};
use foresight_engine::{
    AlertEvent, Carousel, HealthState, InsightQuery, MetricsSnapshot, MonitorSample, Staleness,
};
use foresight_insight::{AttrTuple, InsightInstance};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Everything that can go wrong on a call.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed or closed.
    Io(std::io::Error),
    /// The server sent something that is not a protocol response, or the
    /// reply variant did not match the command.
    Protocol(String),
    /// The server answered with a typed error.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Server(err) => write!(f, "server: {err}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Client-side result alias.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A blocking protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

/// Matches one expected reply variant or produces a Protocol error.
macro_rules! expect_reply {
    ($reply:expr, $pat:pat => $out:expr, $what:literal) => {
        match $reply {
            $pat => Ok($out),
            other => Err(ClientError::Protocol(format!(
                concat!("expected ", $what, ", got {:?}"),
                other
            ))),
        }
    };
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 0,
        })
    }

    /// Sends one command (optionally session-scoped) and waits for its
    /// reply. Typed server errors come back as [`ClientError::Server`].
    pub fn call(&mut self, session: Option<u64>, cmd: Command) -> ClientResult<Reply> {
        self.next_id += 1;
        let request = Request {
            id: self.next_id,
            session,
            cmd,
        };
        let mut line = serde_json::to_string(&request)
            .map_err(|e| ClientError::Protocol(format!("encode: {e}")))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response: Response = serde_json::from_str(response.trim())
            .map_err(|e| ClientError::Protocol(format!("decode: {e}")))?;
        if let Some(err) = response.err {
            return Err(ClientError::Server(err));
        }
        response
            .ok
            .ok_or_else(|| ClientError::Protocol("response had neither ok nor err".to_owned()))
    }

    /// `hello`: server identity, dataset shape, mode, streaming flag.
    pub fn hello(&mut self) -> ClientResult<crate::protocol::HelloInfo> {
        expect_reply!(self.call(None, Command::Hello)?, Reply::Hello(info) => info, "Hello")
    }

    /// Opens a server-side session and returns its id.
    pub fn open(&mut self) -> ClientResult<u64> {
        expect_reply!(self.call(None, Command::Open)?, Reply::Opened { session } => session, "Opened")
    }

    /// Closes a session.
    pub fn close(&mut self, session: u64) -> ClientResult<()> {
        expect_reply!(self.call(Some(session), Command::Close)?, Reply::Closed => (), "Closed")
    }

    /// Runs an insight query in a session.
    pub fn query(
        &mut self,
        session: u64,
        query: InsightQuery,
    ) -> ClientResult<Vec<InsightInstance>> {
        expect_reply!(
            self.call(Some(session), Command::Query(query))?,
            Reply::Results(results) => results,
            "Results"
        )
    }

    /// Runs a query with tracing; the trace is `None` unless the server
    /// was built with the `trace` feature.
    pub fn explain(
        &mut self,
        session: u64,
        query: InsightQuery,
    ) -> ClientResult<(Vec<InsightInstance>, Option<foresight_engine::QueryTrace>)> {
        expect_reply!(
            self.call(Some(session), Command::Explain(query))?,
            Reply::Explained { results, trace } => (results, trace),
            "Explained"
        )
    }

    /// Figure-1 carousels, `per_class` instances each.
    pub fn carousels(&mut self, session: u64, per_class: usize) -> ClientResult<Vec<Carousel>> {
        expect_reply!(
            self.call(Some(session), Command::Carousels { per_class })?,
            Reply::Carousels(carousels) => carousels,
            "Carousels"
        )
    }

    /// Adds an insight to the session's focus set.
    pub fn focus(&mut self, session: u64, instance: InsightInstance) -> ClientResult<()> {
        expect_reply!(
            self.call(Some(session), Command::Focus(instance))?,
            Reply::Ack { .. } => (),
            "Ack"
        )
    }

    /// Drops one focused attribute tuple; returns whether it was present.
    pub fn unfocus(&mut self, session: u64, attrs: AttrTuple) -> ClientResult<bool> {
        expect_reply!(
            self.call(Some(session), Command::Unfocus(attrs))?,
            Reply::Ack { changed } => changed,
            "Ack"
        )
    }

    /// Clears the focus set.
    pub fn clear_focus(&mut self, session: u64) -> ClientResult<()> {
        expect_reply!(
            self.call(Some(session), Command::ClearFocus)?,
            Reply::Ack { .. } => (),
            "Ack"
        )
    }

    /// Dataset profile as seen by the session's snapshot.
    pub fn profile(&mut self, session: u64) -> ClientResult<foresight_engine::DatasetProfile> {
        expect_reply!(
            self.call(Some(session), Command::Profile)?,
            Reply::Profile(profile) => profile,
            "Profile"
        )
    }

    /// Server-wide metrics snapshot.
    pub fn metrics(&mut self) -> ClientResult<MetricsSnapshot> {
        expect_reply!(
            self.call(None, Command::Metrics)?,
            Reply::Metrics(snapshot) => snapshot,
            "Metrics"
        )
    }

    /// Server-side slow-query log, one formatted line per entry.
    pub fn slowlog(&mut self) -> ClientResult<Vec<String>> {
        expect_reply!(self.call(None, Command::Slowlog)?, Reply::Slowlog(lines) => lines, "Slowlog")
    }

    /// The newest `last` monitor ring samples, oldest first (0 = all).
    pub fn metrics_history(&mut self, last: usize) -> ClientResult<Vec<MonitorSample>> {
        expect_reply!(
            self.call(None, Command::MetricsHistory { last })?,
            Reply::MetricsHistory(samples) => samples,
            "MetricsHistory"
        )
    }

    /// The server's health verdict (healthy / degraded / unready).
    pub fn health(&mut self) -> ClientResult<HealthState> {
        expect_reply!(self.call(None, Command::Health)?, Reply::Health(state) => state, "Health")
    }

    /// The watchdog's alert log, oldest first.
    pub fn alerts(&mut self) -> ClientResult<Vec<AlertEvent>> {
        expect_reply!(self.call(None, Command::Alerts)?, Reply::Alerts(events) => events, "Alerts")
    }

    /// Zeroes the server's metric counters; the monitor records a
    /// discontinuity so derived rates never go negative.
    pub fn reset_metrics(&mut self) -> ClientResult<()> {
        expect_reply!(
            self.call(None, Command::ResetMetrics)?,
            Reply::MetricsReset => (),
            "MetricsReset"
        )
    }

    /// Manually adopts the newest published snapshot (stream-backed
    /// servers); returns whether the session moved.
    pub fn refresh(&mut self, session: u64) -> ClientResult<bool> {
        expect_reply!(
            self.call(Some(session), Command::Refresh)?,
            Reply::Refreshed { moved } => moved,
            "Refreshed"
        )
    }

    /// How far the session's snapshot trails the stream head.
    pub fn staleness(&mut self, session: u64) -> ClientResult<Staleness> {
        expect_reply!(
            self.call(Some(session), Command::Staleness)?,
            Reply::Staleness(staleness) => staleness,
            "Staleness"
        )
    }

    /// Serializes the session state (focus set + history) to JSON.
    pub fn save(&mut self, session: u64) -> ClientResult<String> {
        expect_reply!(self.call(Some(session), Command::Save)?, Reply::Saved { state } => state, "Saved")
    }

    /// Restores previously saved state into a session; the server
    /// re-validates it against the adopting core first.
    pub fn restore(&mut self, session: u64, state: String) -> ClientResult<()> {
        expect_reply!(
            self.call(Some(session), Command::Restore { state })?,
            Reply::Restored => (),
            "Restored"
        )
    }

    /// Switches the session's execution mode ("exact" / "approximate").
    pub fn set_mode(&mut self, session: u64, mode: &str) -> ClientResult<()> {
        expect_reply!(
            self.call(
                Some(session),
                Command::SetMode {
                    mode: mode.to_owned()
                }
            )?,
            Reply::ModeSet => (),
            "ModeSet"
        )
    }

    /// Switches the session's candidate-generation strategy ("auto" /
    /// "exhaustive" / "lsh" / "lsh:<probes>"); returns the canonical
    /// spelling now in effect.
    pub fn set_candidates(&mut self, session: u64, strategy: &str) -> ClientResult<String> {
        expect_reply!(
            self.call(
                Some(session),
                Command::SetCandidates {
                    strategy: strategy.to_owned()
                }
            )?,
            Reply::CandidatesSet { strategy } => strategy,
            "CandidatesSet"
        )
    }
}
