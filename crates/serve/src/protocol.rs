//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line, every response one JSON
//! object on one line, matched by the client-chosen `id`. The encoding is
//! serde's externally-tagged default for the [`Command`] and [`Reply`]
//! enums, so a query request looks like
//!
//! ```text
//! {"id":7,"session":3,"cmd":{"Query":{"class_id":"skew","top_k":5,...}}}
//! {"id":7,"ok":{"Results":[...]},"err":null}
//! ```
//!
//! Errors are *typed*: a [`WireError`] carries a machine-readable
//! [`ErrorCode`] (admission-control sheds are `Overloaded` /
//! `TooManyConnections`, a stale save is `SessionMismatch`, …) plus a
//! human-readable message. The framing is deliberately trivial — one line,
//! one message — leaving room for a compact binary framing later without
//! touching the command set.
//!
//! Payload types are the engine's own (`InsightQuery`, `InsightInstance`,
//! `Carousel`, `MetricsSnapshot`, …): the serde stub's `float_roundtrip`
//! JSON keeps every `f64` exact, which is what makes wire-served results
//! bit-identical to in-process [`SessionHandle`] answers (see the
//! `loopback` tests).
//!
//! [`SessionHandle`]: foresight_engine::SessionHandle

use foresight_engine::profile::DatasetProfile;
use foresight_engine::trace::QueryTrace;
use foresight_engine::{
    AlertEvent, Carousel, HealthState, InsightQuery, MetricsSnapshot, MonitorSample, Staleness,
};
use foresight_insight::{AttrTuple, InsightInstance};
use serde::{Deserialize, Serialize};

/// The protocol revision this build speaks; reported in [`HelloInfo`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one request line, bytes. Longer lines are answered with
/// a `BadRequest` error and the connection is closed (a runaway line is
/// indistinguishable from a framing bug).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// One request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    #[serde(default)]
    pub id: u64,
    /// The server-side session the command addresses (`None` for
    /// session-less commands: `Hello`, `Open`, `Metrics`, `Slowlog`).
    #[serde(default)]
    pub session: Option<u64>,
    /// The command to execute.
    pub cmd: Command,
}

/// Every command the server understands.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Command {
    /// Handshake: server, protocol, and dataset info.
    Hello,
    /// Create a server-side session; the reply carries its id.
    Open,
    /// Drop the addressed session.
    Close,
    /// Run an insight query in the session.
    Query(InsightQuery),
    /// Run an insight query with a forced trace.
    Explain(InsightQuery),
    /// Assemble all carousels, re-ranked toward the session's focus.
    Carousels {
        /// Instances per class strip.
        per_class: usize,
    },
    /// Add an insight to the session's focus set.
    Focus(InsightInstance),
    /// Remove a focused insight by its attribute tuple.
    Unfocus(AttrTuple),
    /// Clear the session's focus set.
    ClearFocus,
    /// Profile the dataset under the session's mode.
    Profile,
    /// A deterministic snapshot of the engine + serving telemetry.
    Metrics,
    /// The monitor ring's most recent samples (derived rate/latency
    /// series), oldest first; `last: 0` returns every retained sample.
    MetricsHistory {
        /// How many trailing samples to return (0 = all).
        last: usize,
    },
    /// The replica's health verdict. Answered inline by the reactor —
    /// never queued behind saturated workers — so a load balancer's probe
    /// still gets an answer mid-incident.
    Health,
    /// The watchdog's retained alert transitions, oldest first.
    Alerts,
    /// Zero every metrics counter and histogram, marking a discontinuity
    /// in the monitor ring so rates never go negative across the reset.
    ResetMetrics,
    /// The slow-query log, rendered one line per entry.
    Slowlog,
    /// Adopt the latest published stream snapshot.
    Refresh,
    /// How far the session's snapshot lags the ingest head.
    Staleness,
    /// Serialize the session's exploration state (focus + history).
    Save,
    /// Replace the session's state with a prior `Save` payload, validated
    /// against the adopting core (`SessionMismatch` on schema/dataset
    /// drift).
    Restore {
        /// The `Save` reply's `state` payload.
        state: String,
    },
    /// Override the session's scoring mode (`"exact"` / `"approximate"`).
    SetMode {
        /// The mode name.
        mode: String,
    },
    /// Override the session's candidate-generation strategy — the
    /// recall-vs-speed knob for pairwise classes (`"auto"`,
    /// `"exhaustive"`, `"lsh"`, `"lsh:<probes>"`).
    SetCandidates {
        /// The strategy spelling, parsed by
        /// [`CandidateStrategy::parse`](foresight_engine::CandidateStrategy::parse).
        strategy: String,
    },
    /// Test-only: hold the addressed session's worker for `ms`
    /// milliseconds, so shed behavior is deterministic under test.
    /// Rejected (`Unsupported`) unless the server enables test commands.
    Sleep {
        /// How long to block the worker.
        ms: u64,
    },
}

impl Command {
    /// Whether the command addresses a session (and therefore routes
    /// through a worker queue rather than being answered inline).
    pub fn needs_session(&self) -> bool {
        !matches!(
            self,
            Command::Hello
                | Command::Open
                | Command::Metrics
                | Command::MetricsHistory { .. }
                | Command::Health
                | Command::Alerts
                | Command::ResetMetrics
                | Command::Slowlog
        )
    }

    /// The telemetry endpoint family this command is accounted under.
    pub fn endpoint(&self) -> foresight_engine::Endpoint {
        use foresight_engine::Endpoint;
        match self {
            Command::Hello => Endpoint::Hello,
            Command::Open
            | Command::Close
            | Command::Save
            | Command::Restore { .. }
            | Command::SetMode { .. }
            | Command::SetCandidates { .. }
            | Command::Sleep { .. } => Endpoint::Session,
            Command::Query(_) => Endpoint::Query,
            Command::Explain(_) => Endpoint::Explain,
            Command::Carousels { .. } => Endpoint::Carousels,
            Command::Focus(_) | Command::Unfocus(_) | Command::ClearFocus => Endpoint::Focus,
            Command::Profile => Endpoint::Profile,
            Command::Metrics
            | Command::MetricsHistory { .. }
            | Command::Health
            | Command::Alerts
            | Command::ResetMetrics
            | Command::Slowlog => Endpoint::Metrics,
            Command::Refresh | Command::Staleness => Endpoint::Stream,
        }
    }
}

/// One response line: `id` echoes the request, exactly one of `ok` / `err`
/// is set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id (0 when the request was unparseable).
    #[serde(default)]
    pub id: u64,
    /// The successful reply.
    #[serde(default)]
    pub ok: Option<Reply>,
    /// The typed error.
    #[serde(default)]
    pub err: Option<WireError>,
}

impl Response {
    /// A success response.
    pub fn ok(id: u64, reply: Reply) -> Self {
        Self {
            id,
            ok: Some(reply),
            err: None,
        }
    }

    /// A typed-error response.
    pub fn err(id: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            id,
            ok: None,
            err: Some(WireError {
                code,
                message: message.into(),
            }),
        }
    }
}

/// Every successful reply payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Reply {
    /// Handshake info.
    Hello(HelloInfo),
    /// A session was created.
    Opened {
        /// The new session's id; pass it as `Request::session`.
        session: u64,
    },
    /// The session was dropped.
    Closed,
    /// Ranked query results.
    Results(Vec<InsightInstance>),
    /// Query results plus the captured trace (`None` when the server was
    /// built without the `trace` feature).
    Explained {
        /// Ranked results, bit-identical to a `Query` of the same shape.
        results: Vec<InsightInstance>,
        /// The span tree.
        trace: Option<QueryTrace>,
    },
    /// One carousel per class.
    Carousels(Vec<Carousel>),
    /// A focus-set edit was applied.
    Ack {
        /// Whether the edit changed anything (e.g. `Unfocus` of an
        /// unfocused tuple reports `false`).
        changed: bool,
    },
    /// The dataset profile.
    Profile(DatasetProfile),
    /// The telemetry snapshot.
    Metrics(MetricsSnapshot),
    /// The monitor ring's samples, oldest first (empty when the monitor
    /// is disabled).
    MetricsHistory(Vec<MonitorSample>),
    /// The health verdict.
    Health(HealthState),
    /// The watchdog's alert transitions, oldest first.
    Alerts(Vec<AlertEvent>),
    /// Metrics were reset and the monitor discontinuity was marked.
    MetricsReset,
    /// Slow-query log lines, oldest first.
    Slowlog(Vec<String>),
    /// A refresh ran.
    Refreshed {
        /// Whether the session actually moved to a newer snapshot.
        moved: bool,
    },
    /// The staleness reading.
    Staleness(Staleness),
    /// The serialized session state.
    Saved {
        /// JSON accepted by `Command::Restore`.
        state: String,
    },
    /// A checked restore succeeded.
    Restored,
    /// The mode was switched.
    ModeSet,
    /// The candidate strategy was switched; echoes the canonical spelling.
    CandidatesSet {
        /// The strategy now in effect, in its stable spelling.
        strategy: String,
    },
    /// A test-only `Sleep` completed.
    Slept,
}

/// A machine-readable failure category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// A worker queue was full; retry with backoff.
    Overloaded,
    /// The connection budget was exhausted; the connection is closed.
    TooManyConnections,
    /// The addressed session does not exist (never created, expired, or
    /// evicted).
    UnknownSession,
    /// The request was malformed (unparseable line, missing session,
    /// oversized line, unknown mode name).
    BadRequest,
    /// A `Restore` payload failed validation against the adopting core.
    SessionMismatch,
    /// The engine rejected the command (unknown class, no catalog, …).
    Engine,
    /// The command is not enabled on this server (e.g. `Sleep` without
    /// test commands).
    Unsupported,
    /// The server is shutting down.
    ShuttingDown,
}

impl ErrorCode {
    /// The stable snake-case name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::TooManyConnections => "too_many_connections",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::SessionMismatch => "session_mismatch",
            ErrorCode::Engine => "engine",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

/// A typed protocol error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireError {
    /// The failure category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

/// The handshake payload: enough for a remote client to drive every REPL
/// command (the column list feeds client-side `fix <name>` resolution).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HelloInfo {
    /// Always `"foresight-serve"`.
    pub server: String,
    /// The protocol revision (see [`PROTOCOL_VERSION`]).
    pub protocol: u32,
    /// The served dataset's name.
    pub dataset: String,
    /// Rows in the currently published snapshot.
    pub rows: u64,
    /// Columns in the schema.
    pub cols: usize,
    /// Column names, in schema order.
    pub columns: Vec<String>,
    /// The published default scoring mode (`exact` / `approximate`).
    pub mode: String,
    /// Whether sessions bind to a live stream publication slot (staleness
    /// and `Refresh` are then meaningful).
    pub streaming: bool,
    /// LSH candidate-index tables built over the catalog's signatures
    /// (0 = no index; `SetCandidates "lsh"` would fall back to the scan).
    #[serde(default)]
    pub lsh_tables: usize,
    /// The server's crate version (`default` so older servers parse).
    #[serde(default)]
    pub version: String,
    /// The stats-kernel mode serving this core (`vectorized` / `scalar`).
    #[serde(default)]
    pub kernel: String,
    /// Observability features compiled into the server binary
    /// (`telemetry`, `trace`).
    #[serde(default)]
    pub features: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_responses_round_trip_one_line() {
        let req = Request {
            id: 7,
            session: Some(3),
            cmd: Command::Query(InsightQuery::class("skew").top_k(5)),
        };
        let line = serde_json::to_string(&req).unwrap();
        assert!(!line.contains('\n'), "one request, one line");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.session, Some(3));
        assert!(matches!(back.cmd, Command::Query(q) if q.class_id == "skew"));

        let resp = Response::err(7, ErrorCode::Overloaded, "queue full");
        let line = serde_json::to_string(&resp).unwrap();
        assert!(!line.contains('\n'));
        let back: Response = serde_json::from_str(&line).unwrap();
        let err = back.err.expect("typed error survives the wire");
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert_eq!(err.code.name(), "overloaded");
    }

    #[test]
    fn endpoint_families_cover_every_command() {
        use foresight_engine::Endpoint;
        assert_eq!(Command::Hello.endpoint(), Endpoint::Hello);
        assert_eq!(Command::Open.endpoint(), Endpoint::Session);
        assert_eq!(
            Command::Query(InsightQuery::class("skew")).endpoint(),
            Endpoint::Query
        );
        assert_eq!(Command::ClearFocus.endpoint(), Endpoint::Focus);
        assert_eq!(Command::Slowlog.endpoint(), Endpoint::Metrics);
        assert_eq!(Command::Staleness.endpoint(), Endpoint::Stream);
        assert!(!Command::Hello.needs_session());
        assert!(!Command::Open.needs_session());
        assert!(Command::Close.needs_session());
        assert!(Command::Save.needs_session());
    }

    #[test]
    fn monitor_commands_are_session_less_metrics_endpoints() {
        use foresight_engine::Endpoint;
        for cmd in [
            Command::MetricsHistory { last: 10 },
            Command::Health,
            Command::Alerts,
            Command::ResetMetrics,
        ] {
            assert_eq!(cmd.endpoint(), Endpoint::Metrics);
            assert!(!cmd.needs_session(), "{cmd:?} is answered inline");
            // every monitor command survives the wire
            let req = Request {
                id: 1,
                session: None,
                cmd,
            };
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'));
            let _: Request = serde_json::from_str(&line).unwrap();
        }
    }
}
