//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stub.
//!
//! Parses the deriving item from the raw `TokenStream` (no syn/quote
//! available offline) and generates impls of the stub's `Content`-tree
//! traits. Supported shapes — the full inventory used by this workspace:
//!
//! * structs with named fields (incl. `#[serde(default)]` and
//!   `#[serde(skip, default = "path")]`);
//! * enums with unit, newtype, tuple, and struct variants, encoded with
//!   serde's externally-tagged default representation.
//!
//! Anything else (generics, tuple structs, renames) panics at expansion
//! time so unsupported syntax fails the build loudly.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }
}

#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip: bool,
    /// Path from `default = "path"`, without the quotes.
    default_path: Option<String>,
}

/// Consume leading attributes, folding any `#[serde(...)]` markers into a
/// single `SerdeAttrs`.
fn parse_attrs(c: &mut Cursor) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    while matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        c.bump();
        let Some(TokenTree::Group(g)) = c.bump() else {
            panic!("serde derive: malformed attribute");
        };
        let mut inner = Cursor::new(g.stream());
        if !inner.eat_ident("serde") {
            continue; // #[doc], #[derive], etc.
        }
        let Some(TokenTree::Group(payload)) = inner.bump() else {
            continue;
        };
        let mut p = Cursor::new(payload.stream());
        while p.peek().is_some() {
            let name = p.expect_ident("serde attribute");
            match name.as_str() {
                "default" => {
                    if p.eat_punct('=') {
                        match p.bump() {
                            Some(TokenTree::Literal(l)) => {
                                let s = l.to_string();
                                out.default_path =
                                    Some(s.trim_matches('"').to_string());
                            }
                            other => panic!("serde derive: expected path literal, found {other:?}"),
                        }
                    } else {
                        out.default = true;
                    }
                }
                "skip" => out.skip = true,
                other => panic!("serde derive: unsupported attribute `{other}` (offline stub)"),
            }
            p.eat_punct(',');
        }
    }
    out
}

fn skip_visibility(c: &mut Cursor) {
    if c.eat_ident("pub") {
        if let Some(TokenTree::Group(g)) = c.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                c.bump();
            }
        }
    }
}

/// Skip a field's type: consume until a top-level comma, tracking angle
/// bracket depth (the stub's generated code never needs the type itself —
/// inference supplies it at every use site).
fn skip_type_until_comma(c: &mut Cursor) {
    let mut depth = 0i32;
    while let Some(tt) = c.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        c.bump();
    }
    c.eat_punct(',');
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Input {
    Struct(Vec<Field>),
    /// Tuple struct with N fields (newtype when N == 1).
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

fn parse_named_fields(group: &Group) -> Vec<Field> {
    let mut c = Cursor::new(group.stream());
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = parse_attrs(&mut c);
        skip_visibility(&mut c);
        let name = c.expect_ident("field name");
        assert!(c.eat_punct(':'), "serde derive: expected `:` after field `{name}`");
        skip_type_until_comma(&mut c);
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(group: &Group) -> usize {
    let mut c = Cursor::new(group.stream());
    let mut n = 0;
    while c.peek().is_some() {
        let _ = parse_attrs(&mut c);
        skip_visibility(&mut c);
        skip_type_until_comma(&mut c);
        n += 1;
    }
    n
}

fn parse_input(input: TokenStream) -> (String, Input) {
    let mut c = Cursor::new(input);
    let _ = parse_attrs(&mut c);
    skip_visibility(&mut c);
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    let body = match c.bump() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && kind == "struct" => {
            return (name, Input::TupleStruct(count_tuple_fields(&g)));
        }
        other => panic!(
            "serde derive: only brace-bodied non-generic types are supported \
             (offline stub), found {other:?} after `{name}`"
        ),
    };
    match kind.as_str() {
        "struct" => (name, Input::Struct(parse_named_fields(&body))),
        "enum" => {
            let mut vc = Cursor::new(body.stream());
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                let _ = parse_attrs(&mut vc);
                let vname = vc.expect_ident("variant name");
                let shape = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g);
                        vc.bump();
                        VariantShape::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g);
                        vc.bump();
                        VariantShape::Struct(fields)
                    }
                    _ => VariantShape::Unit,
                };
                vc.eat_punct(',');
                variants.push(Variant { name: vname, shape });
            }
            (name, Input::Enum(variants))
        }
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

fn struct_serialize_body(fields: &[Field], access_prefix: &str) -> String {
    let mut body = String::from(
        "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let fname = &f.name;
        body.push_str(&format!(
            "__o.push((::std::string::String::from(\"{fname}\"), \
             ::serde::Serialize::serialize(&{access_prefix}{fname})));\n"
        ));
    }
    body.push_str("::serde::Content::Obj(__o)\n");
    body
}

fn struct_deserialize_fields(fields: &[Field], type_name: &str) -> String {
    let mut body = String::new();
    for f in fields {
        let fname = &f.name;
        if f.attrs.skip {
            let init = match &f.attrs.default_path {
                Some(path) => format!("{path}()"),
                None => "::std::default::Default::default()".to_string(),
            };
            body.push_str(&format!("{fname}: {init},\n"));
            continue;
        }
        let missing = match (&f.attrs.default_path, f.attrs.default) {
            (Some(path), _) => format!("{path}()"),
            (None, true) => "::std::default::Default::default()".to_string(),
            (None, false) => format!(
                "return ::std::result::Result::Err(::serde::DeError::custom(\
                 \"missing field `{fname}` in {type_name}\"))"
            ),
        };
        body.push_str(&format!(
            "{fname}: match ::serde::obj_get(__obj, \"{fname}\") {{\n\
             ::std::option::Option::Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n"
        ));
    }
    body
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, input) = parse_input(input);
    let body = match input {
        Input::Struct(fields) => struct_serialize_body(&fields, "self."),
        // Newtype structs serialize transparently; wider tuple structs as
        // arrays — serde's default representations.
        Input::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)\n".to_string(),
        Input::TupleStruct(n) => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "::serde::Content::Seq(::std::vec![{}])\n",
                items.join(", ")
            )
        }
        Input::Enum(variants) => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__v0) => ::serde::Content::Obj(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::serialize(__v0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Obj(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Content::Seq(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = struct_serialize_body(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let __payload = {{ {inner} }};\n\
                             ::serde::Content::Obj(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), __payload)])\n\
                             }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         #[allow(clippy::all)]\n\
         fn serialize(&self) -> ::serde::Content {{\n{body}}}\n\
         }}\n"
    );
    out.parse().expect("serde derive: generated Serialize failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, input) = parse_input(input);
    let body = match input {
        Input::Struct(fields) => {
            let field_inits = struct_deserialize_fields(&fields, &name);
            format!(
                "let __obj = match __c.as_obj() {{\n\
                 ::std::option::Option::Some(__o) => __o,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::DeError::unexpected(\"object for {name}\", __c)),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n{field_inits}}})\n"
            )
        }
        Input::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__c)?))\n")
        }
        Input::TupleStruct(n) => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = match __c.as_seq() {{\n\
                 ::std::option::Option::Some(__s) if __s.len() == {n} => __s,\n\
                 _ => return ::std::result::Result::Err(::serde::DeError::custom(\
                 \"{name} expects a {n}-element array\")),\n\
                 }};\n\
                 ::std::result::Result::Ok({name}({}))\n",
                items.join(", ")
            )
        }
        Input::Enum(variants) => {
            let mut str_arms = String::new();
            let mut tag_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => str_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(1) => tag_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize(__payload)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                            .collect();
                        tag_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __seq = match __payload.as_seq() {{\n\
                             ::std::option::Option::Some(__s) if __s.len() == {n} => __s,\n\
                             _ => return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"variant {name}::{vn} expects a {n}-element array\")),\n\
                             }};\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let field_inits = struct_deserialize_fields(fields, &format!("{name}::{vn}"));
                        tag_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __obj = match __payload.as_obj() {{\n\
                             ::std::option::Option::Some(__o) => __o,\n\
                             ::std::option::Option::None => return ::std::result::Result::Err(\
                             ::serde::DeError::unexpected(\"object for {name}::{vn}\", __payload)),\n\
                             }};\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{field_inits}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {str_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Obj(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __payload) = &__o[0];\n\
                 match __tag.as_str() {{\n\
                 {tag_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unexpected(\"enum {name}\", __other)),\n\
                 }}\n"
            )
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         #[allow(clippy::all)]\n\
         fn deserialize(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}}}\n\
         }}\n"
    );
    out.parse().expect("serde derive: generated Deserialize failed to parse")
}
