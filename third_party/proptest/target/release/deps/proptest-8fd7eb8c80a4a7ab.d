/root/repo/third_party/proptest/target/release/deps/proptest-8fd7eb8c80a4a7ab.d: src/lib.rs src/collection.rs src/string.rs src/strategy.rs

/root/repo/third_party/proptest/target/release/deps/libproptest-8fd7eb8c80a4a7ab.rlib: src/lib.rs src/collection.rs src/string.rs src/strategy.rs

/root/repo/third_party/proptest/target/release/deps/libproptest-8fd7eb8c80a4a7ab.rmeta: src/lib.rs src/collection.rs src/string.rs src/strategy.rs

src/lib.rs:
src/collection.rs:
src/string.rs:
src/strategy.rs:
