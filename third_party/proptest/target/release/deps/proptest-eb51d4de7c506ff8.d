/root/repo/third_party/proptest/target/release/deps/proptest-eb51d4de7c506ff8.d: src/lib.rs src/collection.rs src/string.rs src/strategy.rs

/root/repo/third_party/proptest/target/release/deps/proptest-eb51d4de7c506ff8: src/lib.rs src/collection.rs src/string.rs src/strategy.rs

src/lib.rs:
src/collection.rs:
src/string.rs:
src/strategy.rs:
