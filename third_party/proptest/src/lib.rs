//! Offline stand-in for the `proptest` crate.
//!
//! Implements the sampling side of the proptest API this workspace uses:
//! strategies for ranges, `Just`, tuples, `collection::vec`, character-class
//! regex strings, `prop_map` / `prop_flat_map`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert*` macros. Failing cases are reported with
//! their inputs' debug representation but are **not shrunk** — an
//! acceptable trade for a hermetic, dependency-free build.
//!
//! Case generation is deterministic per test (seeded from the test name),
//! so failures reproduce across runs.

pub mod collection;
pub mod string;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

use std::fmt;

/// Deterministic splitmix64 RNG driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this offline stub trims to keep the
        // single-core test suite quick while still exercising variety.
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestRng,
    };
}

/// Define property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __config.cases,
                        __e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// Assert inside a `proptest!` body, failing the case (not panicking
/// directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Discard the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
