//! Core strategy trait and combinators.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values (sampling subset of `proptest::Strategy`).
pub trait Strategy {
    type Value;

    /// Produce one random value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of a strategy, used by [`BoxedStrategy`] / [`Union`].
trait DynStrategy<V> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// Uniform choice among several strategies (backs `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        ((self.start as f64)..(self.end as f64)).new_value(rng) as f32
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as character-class regex strategies
/// (`"[a-z]{1,5}"`), matching proptest's `&str → String` behavior.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::compile(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy `{self}`: {e}"))
            .new_value(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
