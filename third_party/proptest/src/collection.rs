//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Length specification for [`vec`]: an exact `usize` or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy producing a `Vec` of values from an element strategy.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + if span > 0 { rng.below(span) as usize } else { 0 };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
