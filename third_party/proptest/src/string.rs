//! Character-class regex strategies (`"[a-z]{1,5}"`, `string_regex`).
//!
//! Supports the `[class]{min,max}` shape this workspace's tests use:
//! literal characters, `a-z` ranges, escapes (`\n`, `\t`, `\"`, `\\`),
//! and the Unicode-category shorthand `\PC` ("not control"), which is
//! approximated by a printable pool mixing ASCII with multibyte
//! characters so width/escaping logic still gets exercised.

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy generating strings from one character class with a length range.
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    pool: Vec<char>,
    min_len: usize,
    max_len: usize,
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let span = (self.max_len - self.min_len) as u64 + 1;
        let len = self.min_len + rng.below(span) as usize;
        (0..len)
            .map(|_| self.pool[rng.below(self.pool.len() as u64) as usize])
            .collect()
    }
}

/// Printable pool standing in for `\PC` (any non-control character).
fn not_control_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
    // A few multibyte characters so Unicode handling is exercised too.
    pool.extend("éüñßΩλ中✓€😀".chars());
    pool
}

/// Build a strategy from a `[class]{min,max}` pattern.
pub fn compile(pattern: &str) -> Result<RegexStrategy, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    if chars.get(pos) != Some(&'[') {
        return Err("pattern must start with a character class `[...]`".into());
    }
    pos += 1;
    let mut pool: Vec<char> = Vec::new();
    loop {
        let c = *chars
            .get(pos)
            .ok_or_else(|| "unterminated character class".to_string())?;
        pos += 1;
        match c {
            ']' => break,
            '\\' => {
                let esc = *chars
                    .get(pos)
                    .ok_or_else(|| "dangling escape".to_string())?;
                pos += 1;
                match esc {
                    'n' => pool.push('\n'),
                    't' => pool.push('\t'),
                    'r' => pool.push('\r'),
                    'P' | 'p' => {
                        // Category shorthand: consume the category letter.
                        if chars.get(pos).is_none() {
                            return Err("dangling \\P category".into());
                        }
                        pos += 1;
                        pool.extend(not_control_pool());
                    }
                    other => pool.push(other),
                }
            }
            lo => {
                // Range `a-z`? Only if a `-` follows and is not class-final.
                if chars.get(pos) == Some(&'-') && chars.get(pos + 1).is_some_and(|&c| c != ']') {
                    let hi = chars[pos + 1];
                    pos += 2;
                    if (hi as u32) < (lo as u32) {
                        return Err(format!("inverted range {lo}-{hi}"));
                    }
                    pool.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                } else {
                    pool.push(lo);
                }
            }
        }
    }
    if pool.is_empty() {
        return Err("empty character class".into());
    }
    if chars.get(pos) != Some(&'{') {
        return Err("expected `{min,max}` repetition after class".into());
    }
    pos += 1;
    let rest: String = chars[pos..].iter().collect();
    let close = rest
        .find('}')
        .ok_or_else(|| "unterminated repetition".to_string())?;
    if rest[close + 1..].chars().any(|c| !c.is_whitespace()) {
        return Err("trailing characters after repetition".into());
    }
    let body = &rest[..close];
    let (min_len, max_len) = match body.split_once(',') {
        Some((a, b)) => (
            a.trim().parse::<usize>().map_err(|e| e.to_string())?,
            b.trim().parse::<usize>().map_err(|e| e.to_string())?,
        ),
        None => {
            let n = body.trim().parse::<usize>().map_err(|e| e.to_string())?;
            (n, n)
        }
    };
    if max_len < min_len {
        return Err("repetition max below min".into());
    }
    Ok(RegexStrategy {
        pool,
        min_len,
        max_len,
    })
}

/// Public constructor mirroring `proptest::string::string_regex`.
pub fn string_regex(pattern: &str) -> Result<RegexStrategy, String> {
    compile(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::TestRng;

    #[test]
    fn class_with_ranges_and_escapes() {
        let s = compile("[a-zA-Z0-9 ,\"\n_.-]{0,12}").expect("valid regex");
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v.chars().count() <= 12);
            assert!(v
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ,\"\n_.-".contains(c)));
        }
    }

    #[test]
    fn not_control_shorthand() {
        let s = compile("[\\PC]{0,30}").expect("valid regex");
        let mut rng = TestRng::new(4);
        for _ in 0..200 {
            assert!(s.new_value(&mut rng).chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn exact_lengths_respected() {
        let s = compile("[a-z]{1,5}").expect("valid regex");
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let n = s.new_value(&mut rng).chars().count();
            assert!((1..=5).contains(&n), "bad length {n}");
        }
    }
}
