//! Offline stand-in for the `serde_json` crate.
//!
//! Bridges the serde stub's `Content` tree to JSON text. Provides the
//! API surface this workspace uses: `to_string` / `to_string_pretty` /
//! `to_writer` / `from_str` / `from_reader`, the [`Value`] model with
//! indexing and `as_*` accessors, and the [`json!`] macro.
//!
//! Matches real serde_json behavior where the workspace can observe it:
//! floats print via Rust's shortest round-trip formatting, non-finite
//! floats serialize as `null`, object keys are ordered (BTreeMap), and
//! string escapes cover `\u` sequences including surrogate pairs.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

mod parse;
mod value;
mod write;

pub use value::{Map, Value};

/// Error raised by JSON serialization, deserialization, or I/O.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("i/o: {e}"))
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(write::compact(&value.serialize()))
}

/// Serialize a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(write::pretty(&value.serialize()))
}

/// Serialize a value as JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(write::compact(&value.serialize()).as_bytes())?;
    Ok(())
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse::parse(s)?;
    Ok(T::deserialize(&content)?)
}

/// Deserialize a value from a reader producing JSON text.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value::content_to_value(value.serialize()))
}

/// Convert a [`Value`] tree into any deserializable type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    let content = value.serialize();
    Ok(T::deserialize(&content)?)
}

#[doc(hidden)]
pub fn __to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value::content_to_value(value.serialize())
}

/// Construct a [`Value`] from a JSON-like literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::__json_items!(__arr; []; $($tt)+);
        $crate::Value::Array(__arr)
    }};
    ({ $($tt:tt)+ }) => {{
        let mut __map: $crate::Map<::std::string::String, $crate::Value> = $crate::Map::new();
        $crate::__json_entries!(__map; $($tt)+);
        $crate::Value::Object(__map)
    }};
    ($e:expr) => { $crate::__to_value(&$e) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_items {
    ($arr:ident; [];) => {};
    ($arr:ident; [$($v:tt)+]; , $($rest:tt)*) => {
        $arr.push($crate::json!($($v)+));
        $crate::__json_items!($arr; []; $($rest)*);
    };
    ($arr:ident; [$($v:tt)+];) => {
        $arr.push($crate::json!($($v)+));
    };
    ($arr:ident; [$($v:tt)*]; $t:tt $($rest:tt)*) => {
        $crate::__json_items!($arr; [$($v)* $t]; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_entries {
    ($map:ident;) => {};
    ($map:ident; $k:literal : $($rest:tt)*) => {
        $crate::__json_entry_value!($map; $k; []; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_entry_value {
    ($map:ident; $k:literal; [$($v:tt)+]; , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($k), $crate::json!($($v)+));
        $crate::__json_entries!($map; $($rest)*);
    };
    ($map:ident; $k:literal; [$($v:tt)+];) => {
        $map.insert(::std::string::String::from($k), $crate::json!($($v)+));
    };
    ($map:ident; $k:literal; [$($v:tt)*]; $t:tt $($rest:tt)*) => {
        $crate::__json_entry_value!($map; $k; [$($v)* $t]; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "a": 1,
            "b": [1.5, null, "x"],
            "nested": {"k": true},
            "expr": 2 + 2,
        });
        assert_eq!(v["a"], 1.0);
        assert_eq!(v["b"][0], 1.5);
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2], "x");
        assert_eq!(v["nested"]["k"], true);
        assert_eq!(v["expr"], 4.0);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn string_round_trip() {
        let v = json!({"s": "a\"b\\c\nd\te\u{1F600}", "n": -0.125, "big": 123456789});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nan_serializes_as_null() {
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_is_parseable() {
        let v = json!([{"a": [1, 2]}, "txt"]);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(v, "Aé😀");
    }
}
