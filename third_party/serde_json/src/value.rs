//! The dynamic JSON [`Value`] model.

use serde::{Content, DeError, Deserialize, Serialize};
use std::ops::Index;

/// Ordered map used for JSON objects (key-sorted, like default serde_json).
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers are carried as `f64`, ample for this workspace's
    /// statistics-sized payloads.
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Null
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! num_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other.as_f64() == Some(*self as f64)
            }
        }
    )*};
}

num_eq!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::write::compact(&self.serialize()))
    }
}

pub(crate) fn content_to_value(c: Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::U64(v) => Value::Number(v as f64),
        Content::I64(v) => Value::Number(v as f64),
        Content::F64(v) => {
            if v.is_finite() {
                Value::Number(v)
            } else {
                Value::Null
            }
        }
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Obj(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k, content_to_value(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => {
                if n.is_finite() {
                    Content::F64(*n)
                } else {
                    Content::Null
                }
            }
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::serialize).collect()),
            Value::Object(o) => Content::Obj(
                o.iter()
                    .map(|(k, v)| (k.clone(), v.serialize()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        Ok(content_to_value(c.clone()))
    }
}
