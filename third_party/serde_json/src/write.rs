//! Content-tree → JSON text.

use serde::Content;

pub(crate) fn compact(c: &Content) -> String {
    let mut out = String::new();
    write_content(c, &mut out, None, 0);
    out
}

pub(crate) fn pretty(c: &Content) -> String {
    let mut out = String::new();
    write_content(c, &mut out, Some(2), 0);
    out
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form ("4.0",
                // "0.1"), matching serde_json's ryu output closely enough.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push(']');
        }
        Content::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
