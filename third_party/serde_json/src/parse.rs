//! JSON text → Content tree (recursive-descent parser).

use crate::Error;
use serde::Content;

pub(crate) fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Content::Seq(items));
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Content::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Content::Obj(entries));
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.eat(b'-') {}
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: raw UTF-8 run up to the next quote or escape
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // surrogate pair
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("lone high surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}
