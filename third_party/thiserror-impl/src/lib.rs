//! Hand-rolled `#[derive(Error)]` for the offline thiserror stub.
//!
//! Parses the deriving enum straight from the raw `TokenStream` (no
//! syn/quote in this offline environment) and emits `Display`,
//! `std::error::Error`, and `From` impls covering the subset of
//! thiserror syntax this workspace uses:
//!
//! * `#[error("literal with {0} / {named} placeholders")]`
//! * `#[error(transparent)]`
//! * `#[from]` / `#[source]` on newtype or named fields
//!
//! Unsupported shapes panic at expansion time with a clear message, so a
//! drift between this stub and a future call site fails loudly at build
//! time rather than silently misformatting.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("derive(Error): expected {what}, found {other:?}"),
        }
    }
}

struct Attr {
    name: String,
    payload: Option<Group>,
}

fn parse_attrs(c: &mut Cursor) -> Vec<Attr> {
    let mut out = Vec::new();
    while matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        c.bump();
        let Some(TokenTree::Group(g)) = c.bump() else {
            panic!("derive(Error): malformed attribute");
        };
        let mut inner = Cursor::new(g.stream());
        let name = inner.expect_ident("attribute name");
        let payload = match inner.bump() {
            Some(TokenTree::Group(pg)) if pg.delimiter() == Delimiter::Parenthesis => Some(pg),
            _ => None,
        };
        out.push(Attr { name, payload });
    }
    out
}

fn skip_visibility(c: &mut Cursor) {
    if c.eat_ident("pub") {
        if let Some(TokenTree::Group(g)) = c.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                c.bump();
            }
        }
    }
}

/// Collect tokens until a top-level comma (tracking `<...>` depth so
/// generic argument commas stay inside one field).
fn take_type_until_comma(c: &mut Cursor) -> String {
    let mut depth = 0i32;
    let mut out: Vec<TokenTree> = Vec::new();
    while let Some(tt) = c.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        out.push(c.bump().unwrap());
    }
    c.eat_punct(',');
    out.into_iter().collect::<TokenStream>().to_string()
}

enum DisplayAttr {
    /// Format-string literal, stored with its surrounding quotes/escapes.
    Fmt(String),
    Transparent,
}

struct Field {
    name: Option<String>,
    ty: String,
    is_source: bool,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
    display: DisplayAttr,
}

fn parse_display_attr(attrs: &[Attr], variant: &str) -> DisplayAttr {
    let payload = attrs
        .iter()
        .find(|a| a.name == "error")
        .unwrap_or_else(|| panic!("derive(Error): variant `{variant}` lacks #[error(...)]"))
        .payload
        .as_ref()
        .unwrap_or_else(|| panic!("derive(Error): #[error] on `{variant}` needs arguments"));
    let mut inner = Cursor::new(payload.stream());
    match inner.bump() {
        Some(TokenTree::Ident(i)) if i.to_string() == "transparent" => DisplayAttr::Transparent,
        Some(TokenTree::Literal(l)) => {
            if inner.peek().is_some() {
                panic!("derive(Error): explicit format args in #[error] are not supported by the offline stub (variant `{variant}`)");
            }
            DisplayAttr::Fmt(l.to_string())
        }
        other => panic!("derive(Error): unsupported #[error] payload on `{variant}`: {other:?}"),
    }
}

fn parse_fields(group: &Group, named: bool) -> Vec<Field> {
    let mut c = Cursor::new(group.stream());
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = parse_attrs(&mut c);
        let is_source = attrs.iter().any(|a| a.name == "from" || a.name == "source");
        skip_visibility(&mut c);
        let name = if named {
            let n = c.expect_ident("field name");
            assert!(c.eat_punct(':'), "derive(Error): expected `:` after field");
            Some(n)
        } else {
            None
        };
        let ty = take_type_until_comma(&mut c);
        // `#[from]` implies the variant is constructible from the field,
        // which only makes sense for that exact field type.
        fields.push(Field { name, ty, is_source });
    }
    fields
}

fn parse_enum(input: TokenStream) -> (String, Vec<Variant>) {
    let mut c = Cursor::new(input);
    let _ = parse_attrs(&mut c);
    skip_visibility(&mut c);
    assert!(
        c.eat_ident("enum"),
        "derive(Error): the offline stub only supports enums"
    );
    let name = c.expect_ident("enum name");
    let body = match c.bump() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        _ => panic!("derive(Error): generics are not supported by the offline stub"),
    };
    let mut vc = Cursor::new(body.stream());
    let mut variants = Vec::new();
    while vc.peek().is_some() {
        let attrs = parse_attrs(&mut vc);
        let vname = vc.expect_ident("variant name");
        let display = parse_display_attr(&attrs, &vname);
        let shape = match vc.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_fields(g, false);
                vc.bump();
                Shape::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g, true);
                vc.bump();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        vc.eat_punct(',');
        variants.push(Variant {
            name: vname,
            shape,
            display,
        });
    }
    (name, variants)
}

/// Highest positional `{N…}` placeholder used in a format literal, if any.
fn max_positional_used(lit: &str, n_fields: usize) -> usize {
    let mut used = 0;
    for i in 0..n_fields {
        let open = format!("{{{i}");
        if lit.contains(&open) {
            used = used.max(i + 1);
        }
    }
    used
}

#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let (name, variants) = parse_enum(input);
    let mut display_arms = String::new();
    let mut source_arms = String::new();
    let mut from_impls = String::new();
    let mut any_without_source = false;

    for v in &variants {
        let vn = &v.name;
        let (pattern, bindings): (String, Vec<String>) = match &v.shape {
            Shape::Unit => (format!("{name}::{vn}"), Vec::new()),
            Shape::Tuple(fields) => {
                let binds: Vec<String> = (0..fields.len()).map(|i| format!("v{i}")).collect();
                (format!("{name}::{vn}({})", binds.join(", ")), binds)
            }
            Shape::Named(fields) => {
                let binds: Vec<String> =
                    fields.iter().map(|f| f.name.clone().unwrap()).collect();
                (format!("{name}::{vn} {{ {} }}", binds.join(", ")), binds)
            }
        };

        match &v.display {
            DisplayAttr::Transparent => {
                let inner = bindings.first().unwrap_or_else(|| {
                    panic!("derive(Error): #[error(transparent)] on `{vn}` needs one field")
                });
                display_arms.push_str(&format!(
                    "{pattern} => ::core::fmt::Display::fmt({inner}, __f),\n"
                ));
            }
            DisplayAttr::Fmt(lit) => {
                let args = match &v.shape {
                    Shape::Tuple(fields) => {
                        let n = max_positional_used(lit, fields.len());
                        bindings[..n].join(", ")
                    }
                    // Named fields rely on implicit format captures.
                    _ => String::new(),
                };
                if args.is_empty() {
                    display_arms.push_str(&format!("{pattern} => ::core::write!(__f, {lit}),\n"));
                } else {
                    display_arms
                        .push_str(&format!("{pattern} => ::core::write!(__f, {lit}, {args}),\n"));
                }
            }
        }

        let fields = match &v.shape {
            Shape::Unit => &[][..],
            Shape::Tuple(f) | Shape::Named(f) => f.as_slice(),
        };
        if let Some(idx) = fields.iter().position(|f| f.is_source) {
            let bind = &bindings[idx];
            source_arms.push_str(&format!(
                "{pattern} => ::core::option::Option::Some({bind}),\n"
            ));
            let field = &fields[idx];
            assert!(
                fields.len() == 1,
                "derive(Error): #[from] variants must have exactly one field (`{vn}`)"
            );
            let ty = &field.ty;
            let construct = match &field.name {
                Some(fname) => format!("{name}::{vn} {{ {fname}: value }}"),
                None => format!("{name}::{vn}(value)"),
            };
            from_impls.push_str(&format!(
                "impl ::core::convert::From<{ty}> for {name} {{\n\
                 fn from(value: {ty}) -> Self {{ {construct} }}\n\
                 }}\n"
            ));
        } else {
            any_without_source = true;
        }
    }

    let source_body = if source_arms.is_empty() {
        "::core::option::Option::None".to_string()
    } else {
        let fallback = if any_without_source {
            "_ => ::core::option::Option::None,\n"
        } else {
            ""
        };
        format!("match self {{\n{source_arms}{fallback}}}")
    };

    let out = format!(
        "#[automatically_derived]\n\
         impl ::core::fmt::Display for {name} {{\n\
         #[allow(unused_variables, clippy::all)]\n\
         fn fmt(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         match self {{\n{display_arms}}}\n\
         }}\n\
         }}\n\
         #[automatically_derived]\n\
         impl ::std::error::Error for {name} {{\n\
         #[allow(unused_variables, clippy::all)]\n\
         fn source(&self) -> ::core::option::Option<&(dyn ::std::error::Error + 'static)> {{\n\
         {source_body}\n\
         }}\n\
         }}\n\
         {from_impls}"
    );
    out.parse().expect("derive(Error): generated code failed to parse")
}
