//! Offline stand-in for the `thiserror` crate: re-exports the derive
//! macro implemented in `thiserror-impl`.

pub use thiserror_impl::Error;
