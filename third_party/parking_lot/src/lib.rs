//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset of the API this workspace uses (`RwLock`,
//! `Mutex`) on top of `std::sync`, with parking_lot's no-poisoning
//! semantics: a poisoned std lock is recovered transparently instead of
//! propagating a `PoisonError`.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with the `parking_lot` calling convention
/// (`read()` / `write()` return guards directly, never a `Result`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutex with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
