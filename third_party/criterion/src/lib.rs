//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!` / `criterion_main!` / `Criterion` API so
//! the workspace's benches compile and run hermetically, but replaces
//! criterion's statistical machinery with a simple
//! median-of-measurements loop printed to stdout.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    elapsed: Option<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup, then `sample_size` timed runs; report the median so
        // a stray scheduler hiccup doesn't skew the printed number.
        black_box(f());
        let mut samples: Vec<Duration> = (0..self.sample_size.max(1))
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort();
        self.elapsed = Some(samples[samples.len() / 2]);
    }
}

/// Top-level driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: None,
        // The stub keeps wall-clock cost bounded regardless of the
        // requested statistical sample size.
        sample_size: sample_size.min(10),
    };
    f(&mut b);
    match b.elapsed {
        Some(d) => println!("  {label}: {d:?} / iter (median)"),
        None => println!("  {label}: no measurement (iter not called)"),
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
