//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy model, this stub routes
//! everything through a small self-describing [`Content`] tree: types
//! serialize *into* a `Content` and deserialize *from* one. Data formats
//! (here: the sibling `serde_json` stub) convert `Content` to and from
//! text. This loses streaming but keeps the exact `derive` +
//! `to_string`/`from_str` surface the workspace uses, with round-trip
//! fidelity for every type in the repo.
//!
//! Representation choices mirror serde's defaults so persisted state
//! stays interoperable with real serde_json output:
//! * structs → objects keyed by field name;
//! * unit enum variants → the variant name as a string;
//! * newtype/tuple/struct variants → externally tagged single-key objects;
//! * maps → objects with stringified keys;
//! * non-finite floats → `null` (and `null` deserializes to `f64::NAN`).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value: the interchange format between
/// `derive`d impls and data formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Struct / map / externally-tagged enum payload. Order-preserving so
    /// emitted JSON keeps field declaration order, like real serde.
    Obj(Vec<(String, Content)>),
}

impl Content {
    pub fn as_obj(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Obj(_) => "object",
        }
    }
}

/// Lookup helper used by derive-generated code.
pub fn obj_get<'a>(obj: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    pub fn unexpected(expected: &str, found: &Content) -> Self {
        DeError(format!("expected {expected}, found {}", found.type_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] tree (subset of `serde::Serialize`).
pub trait Serialize {
    fn serialize(&self) -> Content;
}

/// Deserialization from a [`Content`] tree (subset of `serde::Deserialize`).
pub trait Deserialize: Sized {
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

// Shared-ownership transparency, as under real serde's `rc` feature: an
// `Arc<T>` serializes as a plain `T` (sharing is not preserved).
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        T::deserialize(c).map(std::sync::Arc::new)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(DeError::unexpected("unsigned integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) if *v <= i64::MAX as u64 => *v as i64,
                    other => return Err(DeError::unexpected("integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        // JSON has no NaN/±inf; serde_json emits null for them.
        if self.is_finite() {
            Content::F64(*self)
        } else {
            Content::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        (*self as f64).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        f64::deserialize(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::unexpected("single-char string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::unexpected("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::deserialize(c)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let seq = c
                    .as_seq()
                    .ok_or_else(|| DeError::unexpected("tuple array", c))?;
                if seq.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {LEN}, found {}",
                        seq.len()
                    )));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys serializable as JSON object keys.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError::custom(format!("invalid integer map key `{key}`")))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S: ::std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Content {
        // Sort keys so output is deterministic (HashMap iteration is not).
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Obj(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let obj = c.as_obj().ok_or_else(|| DeError::unexpected("object", c))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        Content::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let obj = c.as_obj().ok_or_else(|| DeError::unexpected("object", c))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(f64::deserialize(&f64::NAN.serialize()).unwrap().is_nan());
        assert_eq!(
            String::deserialize(&"hi".serialize()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            Option::<u32>::deserialize(&Content::Null).unwrap(),
            None::<u32>
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let arr = [0.5f64, 0.25];
        assert_eq!(<[f64; 2]>::deserialize(&arr.serialize()).unwrap(), arr);
        let mut m = HashMap::new();
        m.insert(3usize, "x".to_string());
        let back = HashMap::<usize, String>::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);
        let t = ("a".to_string(), 9u64);
        assert_eq!(
            <(String, u64)>::deserialize(&t.serialize()).unwrap(),
            t
        );
    }
}
