//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of the rayon API this workspace uses:
//! `par_iter` / `par_chunks` / `into_par_iter` with `map` / `filter_map` /
//! `flat_map` adapters and order-preserving `collect`, plus
//! [`current_num_threads`]. Unlike rayon's lazy work-stealing model, each
//! adapter here is an *eager* pass: the input is split into contiguous
//! chunks, one scoped `std::thread` per chunk, and results are re-joined
//! in input order. On a single-core host (or tiny inputs) everything runs
//! inline with zero thread overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Explicit pool-size override set via [`set_num_threads`]; 0 = unset.
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pins the worker-thread count for all subsequent parallel passes
/// (rayon expresses this through `ThreadPoolBuilder::num_threads`; the
/// stub exposes it as a process-wide setter). Pass 0 to reset to the
/// automatic size.
pub fn set_num_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

/// Number of worker threads a parallel pass will use: the
/// [`set_num_threads`] override if set, else the `RAYON_NUM_THREADS`
/// environment variable (matching rayon's convention), else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Inputs below this size are never worth a thread spawn.
const MIN_ITEMS_PER_THREAD: usize = 16;

/// Run `f` over `items`, preserving order, using up to
/// [`current_num_threads`] scoped threads. `None` results are dropped
/// (this single primitive backs `map`, `filter_map`, and `flat_map`).
fn run_pass<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Option<R> + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() < 2 * MIN_ITEMS_PER_THREAD {
        return items.into_iter().filter_map(f).collect();
    }
    let n_chunks = threads.min(items.len() / MIN_ITEMS_PER_THREAD).max(1);
    let chunk_size = items.len().div_ceil(n_chunks);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(n_chunks);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut out: Vec<Vec<R>> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().filter_map(f).collect::<Vec<R>>()))
            .collect();
        out = handles
            .into_iter()
            .map(|h| h.join().expect("rayon-stub worker panicked"))
            .collect();
    });
    let mut flat = Vec::with_capacity(out.iter().map(Vec::len).sum());
    for part in out {
        flat.extend(part);
    }
    flat
}

/// An eagerly-evaluated "parallel iterator": adapters each run one
/// threaded pass and store the materialized, order-preserved results.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_pass(self.items, |x| Some(f(x))),
        }
    }

    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        ParIter {
            items: run_pass(self.items, f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        ParIter {
            items: run_pass(self.items, |x| if f(&x) { Some(x) } else { None }),
        }
    }

    pub fn flat_map<R, I, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        I: IntoIterator<Item = R>,
        F: Fn(T) -> I + Sync,
    {
        let nested = run_pass(self.items, |x| Some(f(x).into_iter().collect::<Vec<R>>()));
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter` / `par_chunks` over slices (and anything that derefs to a
/// slice, e.g. `Vec`).
pub trait ParallelSlice<T: Sync> {
    fn as_parallel_slice(&self) -> &[T];

    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.as_parallel_slice().iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        ParIter {
            items: self.as_parallel_slice().chunks(chunk_size).collect(),
        }
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x as u64 * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x as u64 * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_and_flat_map() {
        let v: Vec<i64> = (0..100).collect();
        let evens: Vec<i64> = v
            .par_iter()
            .filter_map(|&x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(evens.len(), 50);
        let doubled: Vec<i64> = v.par_chunks(7).flat_map(|c| c.to_vec()).collect();
        assert_eq!(doubled, v);
    }

    #[test]
    fn collect_into_hashmap() {
        let pairs: Vec<(usize, usize)> = (0..50).map(|i| (i, i * i)).collect();
        let m: HashMap<usize, usize> = pairs.into_par_iter().map(|(k, v)| (k, v)).collect();
        assert_eq!(m[&7], 49);
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn set_num_threads_overrides_and_resets() {
        super::set_num_threads(4);
        assert_eq!(super::current_num_threads(), 4);
        // a parallel pass under the forced pool size still works
        let v: Vec<u32> = (0..500).collect();
        let out: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out.len(), 500);
        super::set_num_threads(0);
        assert!(super::current_num_threads() >= 1);
    }
}
