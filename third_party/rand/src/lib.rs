//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses: the
//! [`Rng`] and [`SeedableRng`] traits and a deterministic [`rngs::StdRng`].
//! The generator is xoshiro256** seeded through splitmix64 — a
//! high-quality, reproducible PRNG. Stream values differ from upstream
//! rand, which is fine: every call site seeds explicitly and only relies
//! on determinism, not on a particular stream.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructor trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling trait (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`; integers uniform over the full
    /// range; `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive f64 range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo sampling: bias is < 2^-64 per draw for the spans
                // used in this workspace, well below statistical noise.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let i = r.gen_range(0usize..7);
            assert!(i < 7);
            let s = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&s));
            let inc = r.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_and_gen() {
        let mut r = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
        let _: bool = r.gen();
        let mut borrowed: &mut StdRng = &mut r;
        let _ = borrowed.next_u64();
    }
}
