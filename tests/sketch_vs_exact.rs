//! Cross-mode integration tests: the sketch-backed (approximate) engine
//! must broadly agree with the exact engine on what the strongest insights
//! are — the property that makes interactive exploration trustworthy.

use foresight::data::datasets::{synth, SynthConfig};
use foresight::prelude::*;

fn setup() -> (Foresight, foresight::data::datasets::SynthGroundTruth) {
    let (table, truth) = synth(&SynthConfig {
        rows: 3_000,
        numeric_cols: 16,
        categorical_cols: 3,
        correlated_fraction: 0.5,
        seed: 99,
        ..Default::default()
    });
    (Foresight::new(table), truth)
}

#[test]
fn top_correlations_agree_between_modes() {
    let (mut fs, _) = setup();
    let exact: Vec<AttrTuple> = fs
        .query(&InsightQuery::class("linear-relationship").top_k(4))
        .unwrap()
        .into_iter()
        .map(|i| i.attrs)
        .collect();
    fs.preprocess(&CatalogConfig {
        hyperplane_k: Some(1024),
        ..Default::default()
    })
    .unwrap();
    let approx: Vec<AttrTuple> = fs
        .query(&InsightQuery::class("linear-relationship").top_k(4))
        .unwrap()
        .into_iter()
        .map(|i| i.attrs)
        .collect();
    let overlap = exact.iter().filter(|a| approx.contains(a)).count();
    assert!(overlap >= 3, "exact {exact:?} vs approx {approx:?}");
}

#[test]
fn planted_pairs_dominate_both_rankings() {
    let (mut fs, truth) = setup();
    let planted: Vec<AttrTuple> = truth
        .correlated_pairs
        .iter()
        .filter(|&&(_, _, rho)| rho.abs() > 0.5)
        .map(|&(i, j, _)| AttrTuple::Two(i, j))
        .collect();
    assert!(!planted.is_empty());
    for preprocess in [false, true] {
        if preprocess {
            fs.preprocess(&CatalogConfig {
                hyperplane_k: Some(1024),
                ..Default::default()
            })
            .unwrap();
        }
        let top = fs
            .query(&InsightQuery::class("linear-relationship").top_k(planted.len()))
            .unwrap();
        let hits = top.iter().filter(|t| planted.contains(&t.attrs)).count();
        assert!(
            hits * 2 >= planted.len(),
            "mode preprocess={preprocess}: only {hits}/{} planted pairs in top",
            planted.len()
        );
    }
}

#[test]
fn moment_insights_identical_between_modes() {
    // moments are maintained exactly, so dispersion/skew/kurtosis rankings
    // must match exactly
    let (mut fs, _) = setup();
    let classes = ["dispersion", "skew", "heavy-tails", "normality"];
    let mut exact = Vec::new();
    for c in classes {
        exact.push(fs.query(&InsightQuery::class(c).top_k(5)).unwrap());
    }
    fs.preprocess(&CatalogConfig::default()).unwrap();
    for (c, expected) in classes.iter().zip(exact) {
        let approx = fs.query(&InsightQuery::class(*c).top_k(5)).unwrap();
        let ea: Vec<AttrTuple> = expected.iter().map(|i| i.attrs).collect();
        let aa: Vec<AttrTuple> = approx.iter().map(|i| i.attrs).collect();
        assert_eq!(ea, aa, "class {c} disagrees");
        for (e, a) in expected.iter().zip(&approx) {
            assert!((e.score - a.score).abs() < 1e-9, "class {c} score drift");
        }
    }
}

#[test]
fn rel_freq_agrees_between_modes() {
    let (mut fs, _) = setup();
    let exact = fs
        .query(&InsightQuery::class("heterogeneous-frequencies").top_k(3))
        .unwrap();
    fs.preprocess(&CatalogConfig::default()).unwrap();
    let approx = fs
        .query(&InsightQuery::class("heterogeneous-frequencies").top_k(3))
        .unwrap();
    assert_eq!(exact.len(), approx.len());
    for (e, a) in exact.iter().zip(&approx) {
        assert!(
            (e.score - a.score).abs() < 0.05,
            "exact {} vs approx {}",
            e.score,
            a.score
        );
    }
}

#[test]
fn spearman_sketch_ranks_monotonic_pairs() {
    let (mut fs, truth) = setup();
    fs.preprocess(&CatalogConfig {
        hyperplane_k: Some(1024),
        ..Default::default()
    })
    .unwrap();
    let top = fs
        .query(&InsightQuery::class("monotonic-relationship").top_k(3))
        .unwrap();
    let planted: Vec<AttrTuple> = truth
        .correlated_pairs
        .iter()
        .map(|&(i, j, _)| AttrTuple::Two(i, j))
        .collect();
    assert!(
        top.iter().any(|t| planted.contains(&t.attrs)),
        "no planted pair in sketch-ranked monotonic top-3"
    );
}

#[test]
fn fixed_attr_queries_work_in_approx_mode() {
    let (mut fs, truth) = setup();
    fs.preprocess(&CatalogConfig {
        hyperplane_k: Some(1024),
        ..Default::default()
    })
    .unwrap();
    let (i, j, _) = truth.correlated_pairs[0];
    let out = fs
        .query(
            &InsightQuery::class("linear-relationship")
                .top_k(1)
                .fix_attr(i),
        )
        .unwrap();
    assert_eq!(out[0].attrs, AttrTuple::Two(i.min(j), i.max(j)));
}
