//! Missing-data behavior end to end: every insight class must tolerate
//! substantial missingness (pairwise/listwise deletion per metric), and
//! results must track the complete-data results on the planted structure.

use foresight::data::datasets::{synth, SynthConfig};
use foresight::prelude::*;

fn dataset(missing_rate: f64) -> (Table, foresight::data::datasets::SynthGroundTruth) {
    synth(&SynthConfig {
        rows: 4_000,
        numeric_cols: 14,
        categorical_cols: 2,
        correlated_fraction: 0.5,
        missing_rate,
        seed: 31,
        ..Default::default()
    })
}

#[test]
fn all_classes_survive_twenty_percent_missing() {
    let (table, _) = dataset(0.2);
    // sanity: the missingness is real
    let nulls = table.numeric(0).unwrap().null_count();
    assert!(nulls > 500, "only {nulls} nulls planted");

    let mut fs = Foresight::new(table);
    for class in fs.registry().classes().to_vec() {
        let out = fs
            .query(&InsightQuery::class(class.id()).top_k(3))
            .unwrap_or_else(|e| panic!("{}: {e}", class.id()));
        for inst in out {
            assert!(inst.score.is_finite(), "{} non-finite score", class.id());
        }
    }
}

#[test]
fn planted_correlations_survive_missingness() {
    let (table, truth) = dataset(0.15);
    let planted: Vec<AttrTuple> = truth
        .correlated_pairs
        .iter()
        .filter(|&&(_, _, rho)| rho.abs() > 0.6)
        .map(|&(i, j, _)| AttrTuple::Two(i, j))
        .collect();
    assert!(!planted.is_empty());
    let mut fs = Foresight::new(table);
    let top = fs
        .query(&InsightQuery::class("linear-relationship").top_k(planted.len() + 2))
        .unwrap();
    let hits = top.iter().filter(|t| planted.contains(&t.attrs)).count();
    assert!(
        hits >= planted.len().div_ceil(2),
        "only {hits}/{} planted pairs found under missingness",
        planted.len()
    );
}

#[test]
fn sketch_mode_tolerates_missingness() {
    let (table, truth) = dataset(0.15);
    let (i, j, rho) = *truth
        .correlated_pairs
        .iter()
        .max_by(|a, b| a.2.abs().partial_cmp(&b.2.abs()).unwrap())
        .unwrap();
    let mut fs = Foresight::new(table);
    fs.preprocess(&CatalogConfig {
        hyperplane_k: Some(1024),
        ..Default::default()
    })
    .unwrap();
    let est = fs.catalog().unwrap().correlation(i, j).unwrap();
    assert!(
        (est - rho).abs() < 0.2,
        "sketch ρ̂ {est} far from planted {rho} under missingness"
    );
}
