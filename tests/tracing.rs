//! Integration tests for the request-tracing layer: EXPLAIN span trees,
//! per-query cache attribution, sketch-vs-exact path provenance, seeded
//! sampling, the trace ring, the slow-query log, and the exporters.
//!
//! Every test passes both with and without `--features trace`: the
//! feature-off build asserts the layer stays inert (results intact, no
//! trace attached, nothing captured).

use foresight::engine::{SLOW_LOG_CAPACITY, TRACE_RING_CAPACITY};
use foresight::prelude::*;
use serde_json::Value;

const TRACE_ON: bool = cfg!(feature = "trace");

fn oecd_corr_query() -> InsightQuery {
    InsightQuery::class("linear-relationship").top_k(5)
}

#[test]
fn explain_pinned_oecd_exact_query() {
    let mut fs = Foresight::new(datasets::oecd());
    let q = oecd_corr_query();
    let plain = fs.query(&q).unwrap();
    let explained = fs.explain(&q).unwrap();
    assert_eq!(
        explained.results, plain,
        "explain returns bit-identical results"
    );
    if !TRACE_ON {
        assert!(explained.trace.is_none(), "no trace without the feature");
        return;
    }
    let trace = explained.trace.expect("forced trace captured");
    assert_eq!(trace.class_id, "linear-relationship");
    assert_eq!(trace.metric, "|pearson|");
    assert_eq!(trace.mode, "exact");
    assert!(trace.forced);
    assert!(!trace.index_served);
    // the deterministic span-tree shape of an executor-served query
    assert_eq!(trace.root.name, "query");
    let children: Vec<&str> = trace
        .root
        .children
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(children, vec!["candidates", "score", "rank", "describe"]);
    // OECD: 24 numeric columns → C(24, 2) = 276 correlation candidates
    assert_eq!(trace.candidates_generated, 276);
    assert_eq!(trace.candidates_eligible, 276);
    assert_eq!(
        trace.root.child("candidates").unwrap().attr("generated"),
        Some("276")
    );
    // the facade's plain query() above already warmed the cache, so the
    // explained run is served entirely from it
    assert_eq!(trace.cache_hits, 276);
    assert_eq!(trace.cache_misses, 0);
    assert_eq!(trace.cache_stored, 0);
    assert_eq!(trace.results.len(), 5);
    for (i, (traced, inst)) in trace.results.iter().zip(&plain).enumerate() {
        assert_eq!(traced.rank, i + 1);
        assert_eq!(traced.score, inst.score);
        assert_eq!(traced.metric, "|pearson|");
        assert!(traced.cache_hit, "warm explain hits the cache");
        assert_eq!(traced.path, "cache");
        assert_eq!(traced.rank_delta, 0, "no diversification, no movement");
        assert!(traced.attrs.contains(" × "), "two column names joined");
    }
    // the acceptance rendering: per top-k insight, score + metric +
    // cache hit/miss + scoring path all visible in one report
    let text = trace.to_text();
    assert!(text.contains("276 hits / 0 misses"));
    assert!(text.contains("path=cache"));
    assert!(text.contains("|pearson|"));

    // a cold core shows precise per-candidate provenance instead
    let mut cold = Foresight::new(datasets::oecd());
    let cold_trace = cold.explain(&q).unwrap().trace.expect("trace captured");
    assert_eq!(cold_trace.cache_hits, 0);
    assert_eq!(cold_trace.cache_misses, 276);
    assert_eq!(cold_trace.cache_stored, 276);
    for traced in &cold_trace.results {
        assert!(!traced.cache_hit);
        assert_eq!(traced.path, "exact");
    }
}

#[test]
fn explain_reports_sketch_paths_and_skip_reasons() {
    // a sharded source, preprocessed, with the raw rows dropped afterwards:
    // queries run sketch-only, so provenance must say so
    let whole = datasets::oecd();
    let shards: Vec<Table> = vec![
        whole.filter_rows(|r| r < 18),
        whole.filter_rows(|r| r >= 18),
    ];
    let mut source = TableSource::sharded(shards).unwrap();
    let mut fs = Foresight::from_source(source.clone());
    fs.preprocess(&CatalogConfig::default()).unwrap();
    let mut buf = Vec::new();
    fs.save_state(&mut buf).unwrap();
    source.drop_raw();
    let mut lean = Foresight::from_source(source);
    lean.load_state(buf.as_slice()).unwrap();

    let explained = lean.explain(&oecd_corr_query()).unwrap();
    assert!(!explained.results.is_empty());
    if !TRACE_ON {
        assert!(explained.trace.is_none());
        return;
    }
    let trace = explained.trace.expect("trace captured");
    assert_eq!(trace.mode, "approximate");
    for traced in &trace.results {
        assert_eq!(traced.path, "sketch", "sketch-only scoring is visible");
        assert!(!traced.cache_hit);
    }

    // a class with no sketch estimator drops every candidate, and the
    // trace says why, with example tuples
    let none = lean
        .explain(&InsightQuery::class("statistical-dependence").top_k(3))
        .unwrap();
    assert!(none.results.is_empty());
    let trace = none.trace.expect("trace captured");
    assert!(trace.candidates_generated > 0);
    let skip = trace
        .skips
        .iter()
        .find(|s| s.reason == "no-sketch-estimator")
        .expect("typed skip reason recorded");
    assert_eq!(skip.count as usize, trace.candidates_eligible);
    assert!(!skip.samples.is_empty());
}

#[test]
fn diversified_explain_reports_rank_deltas() {
    // hub column 0 correlates perfectly with 1, 2, 3; 4~5 is an
    // independent pair that only diversification promotes into the top 3
    let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
    let indep: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
    let t = TableBuilder::new("t")
        .numeric("hub", base.clone())
        .numeric("a", base.iter().map(|v| 2.0 * v).collect())
        .numeric("b", base.iter().map(|v| 3.0 * v + 1.0).collect())
        .numeric("c", base.iter().map(|v| 0.5 * v - 9.0).collect())
        .numeric("x", indep.clone())
        .numeric("y", indep.iter().map(|v| v + 0.5).collect())
        .build()
        .unwrap();
    let mut fs = Foresight::new(t);
    let q = InsightQuery::class("linear-relationship")
        .top_k(3)
        .diversify(0.6);
    let explained = fs.explain(&q).unwrap();
    if !TRACE_ON {
        assert!(explained.trace.is_none());
        return;
    }
    let trace = explained.trace.expect("trace captured");
    let children: Vec<&str> = trace
        .root
        .children
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(
        children,
        vec!["candidates", "score", "diversify", "describe"]
    );
    let div = trace.root.child("diversify").unwrap();
    assert_eq!(div.attr("lambda"), Some("0.6"));
    assert_eq!(div.attr("k"), Some("3"));
    // the promoted independent pair moved up relative to the plain ranking
    let promoted = trace
        .results
        .iter()
        .find(|r| r.attrs == "x × y")
        .expect("diversification promotes the independent pair");
    assert!(
        promoted.rank_delta > 0,
        "promoted insight has a positive rank delta: {promoted:?}"
    );
    // the overall strongest insight holds rank 1 with no movement
    assert_eq!(trace.results[0].rank_delta, 0);
}

#[test]
fn sampling_is_seeded_and_reproducible() {
    let traced_set = |seed: u64| -> Vec<(String, usize)> {
        let core = EngineCore::builder(TableSource::materialized(datasets::oecd())).freeze();
        let mut h = core.handle();
        h.set_trace_sampling(0.25, seed);
        for k in 1..=12 {
            h.query(&InsightQuery::class("skew").top_k(k)).unwrap();
        }
        let mut traces: Vec<(String, usize)> = core
            .tracer()
            .recent(TRACE_RING_CAPACITY)
            .iter()
            .map(|t| (t.class_id.clone(), t.results.len()))
            .collect();
        traces.reverse(); // oldest-first for comparison
        traces
    };
    if !TRACE_ON {
        assert!(
            traced_set(7).is_empty(),
            "sampling is inert without the feature"
        );
        return;
    }
    let a = traced_set(7);
    let b = traced_set(7);
    assert_eq!(a, b, "same (rate, seed, queries) traces the same subset");
    assert_eq!(a.len(), 3, "rate 0.25 over 12 queries traces exactly 3");
    // a different seed still traces 3, at a (deterministically) shifted phase
    assert_eq!(traced_set(8).len(), 3);
    assert_ne!(
        traced_set(7).first().map(|t| t.1),
        traced_set(8).first().map(|t| t.1),
        "adjacent seeds select different residues"
    );

    // rate 0 disables sampling entirely
    let core = EngineCore::builder(TableSource::materialized(datasets::oecd())).freeze();
    let mut h = core.handle();
    h.set_trace_sampling(0.0, 7);
    h.query(&InsightQuery::class("skew").top_k(2)).unwrap();
    assert!(core.tracer().recent(8).is_empty());
}

#[test]
fn trace_ring_keeps_newest_and_evicts_in_arrival_order() {
    let core = EngineCore::builder(TableSource::materialized(datasets::oecd())).freeze();
    let mut h = core.handle();
    let total = TRACE_RING_CAPACITY + 5;
    for i in 0..total {
        h.explain(&InsightQuery::class("skew").top_k(1 + i % 3))
            .unwrap();
    }
    let recent = core.tracer().recent(total + 10);
    if !TRACE_ON {
        assert!(recent.is_empty());
        return;
    }
    assert_eq!(
        recent.len(),
        TRACE_RING_CAPACITY,
        "ring holds exactly N traces"
    );
    let ids: Vec<u64> = recent.iter().map(|t| t.query_id).collect();
    assert_eq!(ids[0], total as u64, "newest first");
    assert!(
        ids.windows(2).all(|w| w[0] == w[1] + 1),
        "strictly descending ids — eviction in arrival order: {ids:?}"
    );
    assert_eq!(
        *ids.last().unwrap(),
        (total - TRACE_RING_CAPACITY + 1) as u64,
        "the oldest 5 traces were evicted"
    );
    assert_eq!(core.tracer().last().unwrap().query_id, total as u64);
    core.tracer().clear();
    assert!(core.tracer().recent(4).is_empty());
}

#[test]
fn slow_log_is_threshold_gated_and_bounded() {
    let core = EngineCore::builder(TableSource::materialized(datasets::oecd())).freeze();
    let mut h = core.handle();
    let q = InsightQuery::class("skew").top_k(2);

    // disarmed (the default): nothing is captured
    h.query(&q).unwrap();
    assert!(core.tracer().slow_queries().is_empty());

    // a 1 ns threshold captures every query — even untraced ones
    core.tracer().set_slow_threshold_ns(1);
    h.query(&q).unwrap();
    let slow = core.tracer().slow_queries();
    if !TRACE_ON {
        assert!(slow.is_empty(), "slow log is inert without the feature");
        return;
    }
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].class_id, "skew");
    assert_eq!(slow[0].mode, "exact");
    assert_eq!(slow[0].results, 2);
    assert!(slow[0].query_id.is_none(), "untraced slow query has no id");
    assert!(slow[0].trace.is_none());
    assert!(slow[0].total_ns >= 1);

    // an explained slow query carries its full trace
    h.explain(&q).unwrap();
    let slow = core.tracer().slow_queries();
    assert_eq!(slow.len(), 2);
    let traced = slow.last().unwrap();
    assert!(traced.query_id.is_some());
    assert_eq!(
        traced.trace.as_ref().map(|t| t.query_id),
        traced.query_id,
        "the attached trace is the slow query's own"
    );

    // an unreachable threshold captures nothing more
    core.tracer().set_slow_threshold_ns(u64::MAX);
    h.query(&q).unwrap();
    assert_eq!(core.tracer().slow_queries().len(), 2);

    // the log is bounded: oldest entries fall off at capacity
    core.tracer().set_slow_threshold_ns(1);
    for k in 0..(SLOW_LOG_CAPACITY + 10) {
        h.query(&InsightQuery::class("skew").top_k(1 + k % 5))
            .unwrap();
    }
    assert_eq!(core.tracer().slow_queries().len(), SLOW_LOG_CAPACITY);

    // disarming stops capture immediately
    core.tracer().set_slow_threshold_ns(0);
    h.query(&q).unwrap();
    assert_eq!(core.tracer().slow_queries().len(), SLOW_LOG_CAPACITY);
}

#[test]
fn chrome_export_is_loadable_trace_event_json() {
    let mut fs = Foresight::new(datasets::oecd());
    let Some(trace) = fs.explain(&oecd_corr_query()).unwrap().trace else {
        assert!(!TRACE_ON, "trace must exist with the feature on");
        return;
    };
    let parsed: Value =
        serde_json::from_str(&trace.to_chrome_json()).expect("chrome export is valid JSON");
    let events = parsed.as_array().expect("trace-event format: a JSON array");
    // one complete event per span: root + 4 stages
    assert_eq!(events.len(), 5);
    let mut last_ts = f64::MIN;
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(ev.get("cat").and_then(Value::as_str), Some("foresight"));
        assert_eq!(ev.get("pid").and_then(Value::as_u64), Some(1));
        assert_eq!(
            ev.get("tid").and_then(Value::as_u64),
            Some(trace.query_id),
            "all events share the query's tid"
        );
        assert!(ev.get("name").and_then(Value::as_str).is_some());
        let ts = ev.get("ts").and_then(Value::as_f64).expect("ts in µs");
        let dur = ev.get("dur").and_then(Value::as_f64).expect("dur in µs");
        assert!(dur >= 0.0);
        assert!(ts >= last_ts, "pre-order emission keeps ts monotonic");
        last_ts = ts;
    }
    // span attributes ride along as event args
    let score_ev = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("score"))
        .expect("score span exported");
    assert!(score_ev
        .get("args")
        .and_then(|a| a.get("cache_misses"))
        .is_some());
}

#[test]
fn json_export_round_trips_and_structure_is_deterministic() {
    let q = oecd_corr_query();
    let run = || Foresight::new(datasets::oecd()).explain(&q).unwrap().trace;
    let (Some(a), Some(b)) = (run(), run()) else {
        assert!(!TRACE_ON);
        return;
    };
    // the JSON export parses back into an identical trace
    let back: foresight::engine::QueryTrace =
        serde_json::from_str(&a.to_json()).expect("trace JSON parses back");
    assert_eq!(&back, a.as_ref());
    // identical executions differ only in ids and timings: same tree
    // shape, same results, same cache traffic
    let shape = |t: &foresight::engine::QueryTrace| {
        (
            t.root
                .children
                .iter()
                .map(|c| c.name.clone())
                .collect::<Vec<_>>(),
            t.results.clone(),
            (t.cache_hits, t.cache_misses, t.cache_stored),
            t.candidates_generated,
        )
    };
    assert_eq!(shape(&a), shape(&b));
}
