//! The paper's §3 composability claim, end to end: sketches built on
//! disjoint data partitions merge into sketches of the whole, so insight
//! metrics can be maintained across distributed or streaming ingests.

use foresight::data::datasets::{synth, SynthConfig};
use foresight::sketch::hyperplane::{HyperplaneConfig, SharedHyperplanes};
use foresight::sketch::{
    EntropySketch, HyperLogLog, KllSketch, Mergeable, MisraGries, SpaceSaving,
};
use foresight::stats::Moments;

fn partitions(values: &[f64], parts: usize) -> Vec<(&[f64], u64)> {
    let size = values.len().div_ceil(parts);
    values
        .chunks(size)
        .enumerate()
        .map(|(i, c)| (c, (i * size) as u64))
        .collect()
}

fn column() -> Vec<f64> {
    let (table, _) = synth(&SynthConfig {
        rows: 8_000,
        numeric_cols: 2,
        categorical_cols: 0,
        seed: 404,
        ..Default::default()
    });
    table.numeric(0).unwrap().values().to_vec()
}

#[test]
fn hyperplane_partition_merge_is_exact() {
    let x = column();
    let y: Vec<f64> = x
        .iter()
        .enumerate()
        .map(|(i, v)| v * 0.8 + (i % 7) as f64 * 0.1)
        .collect();
    let hp = SharedHyperplanes::new(HyperplaneConfig::default());
    let whole = hp.sketch_columns(&[&x, &y]);

    for data in [&x, &y] {
        let mut merged = hp.accumulator();
        for (chunk, offset) in partitions(data, 4) {
            let mut part = hp.accumulator();
            part.update_rows(chunk, offset);
            merged.merge(&part).unwrap();
        }
        let idx = if std::ptr::eq(data, &x) { 0 } else { 1 };
        assert_eq!(merged.finalize(), whole[idx], "partition merge drifted");
    }

    // and the correlation estimate from merged sketches works
    let mut ax = hp.accumulator();
    let mut ay = hp.accumulator();
    for (chunk, offset) in partitions(&x, 3) {
        ax.update_rows(chunk, offset);
    }
    for (chunk, offset) in partitions(&y, 5) {
        ay.update_rows(chunk, offset);
    }
    let est = ax.finalize().correlation(&ay.finalize()).unwrap();
    let exact = foresight::stats::correlation::pearson(&x, &y);
    assert!((est - exact).abs() < 0.12, "est {est} exact {exact}");
}

#[test]
fn moments_partition_merge_matches_whole() {
    let x = column();
    let whole = Moments::from_slice(&x);
    let mut merged = Moments::new();
    for (chunk, _) in partitions(&x, 7) {
        merged.merge(&Moments::from_slice(chunk));
    }
    assert_eq!(merged.count(), whole.count());
    assert!((merged.mean() - whole.mean()).abs() < 1e-10);
    assert!((merged.skewness() - whole.skewness()).abs() < 1e-8);
    assert!((merged.kurtosis() - whole.kurtosis()).abs() < 1e-8);
}

#[test]
fn kll_partition_merge_keeps_rank_error() {
    let x = column();
    let mut merged = KllSketch::new(200);
    for (chunk, _) in partitions(&x, 6) {
        let mut part = KllSketch::new(200);
        for &v in chunk {
            part.insert(v);
        }
        merged.merge(&part).unwrap();
    }
    let mut sorted = x.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for q in [0.1, 0.5, 0.9] {
        let est = merged.quantile(q).unwrap();
        let rank = sorted.iter().filter(|&&v| v <= est).count() as f64 / sorted.len() as f64;
        assert!((rank - q).abs() < 0.04, "q={q} rank={rank}");
    }
}

#[test]
fn categorical_sketches_merge_across_partitions() {
    let labels: Vec<String> = (0..30_000)
        .map(|i| format!("v{}", (i * i + 13 * i) % 500))
        .collect();
    let halves: Vec<&[String]> = labels.chunks(15_000).collect();

    // frequency: merged Misra-Gries and SpaceSaving keep their bounds
    let mut mg = MisraGries::new(48);
    let mut ss = SpaceSaving::new(48);
    let mut hll = HyperLogLog::new(12, 3);
    let mut ent = EntropySketch::new(512, 9);
    for half in &halves {
        let mut mg_p = MisraGries::new(48);
        let mut ss_p = SpaceSaving::new(48);
        let mut hll_p = HyperLogLog::new(12, 3);
        let mut ent_p = EntropySketch::new(512, 9);
        for l in half.iter() {
            mg_p.insert(l);
            ss_p.insert(l);
            hll_p.insert(l);
            ent_p.insert(l);
        }
        mg.merge(&mg_p).unwrap();
        ss.merge(&ss_p).unwrap();
        hll.merge(&hll_p).unwrap();
        ent.merge(&ent_p).unwrap();
    }

    // ground truth
    let mut counts = std::collections::HashMap::new();
    for l in &labels {
        *counts.entry(l.clone()).or_insert(0u64) += 1;
    }
    let distinct = counts.len() as f64;
    let n = labels.len() as f64;
    let true_entropy: f64 = counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum();

    assert!(
        (hll.estimate() - distinct).abs() / distinct < 0.05,
        "hll {}",
        hll.estimate()
    );
    assert!(
        (ent.estimate() - true_entropy).abs() < 0.3,
        "entropy {} vs {}",
        ent.estimate(),
        true_entropy
    );
    for (label, &c) in counts.iter() {
        assert!(mg.estimate(label) <= c, "MG overcounted after merge");
        let ss_est = ss.estimate(label);
        assert!(ss_est == 0 || ss_est >= c, "SS undercounted a tracked item");
    }
}

/// The engine-level guarantee the sketch merges exist for: approximate-mode
/// insight queries answer the same whether the rows arrive as one
/// materialized table or as disjoint shards whose per-shard catalogs are
/// merged — across several split patterns, including an empty shard.
#[test]
fn engine_queries_agree_between_materialized_and_sharded() {
    use foresight::prelude::*;

    let (table, _) = synth(&SynthConfig {
        rows: 3_000,
        numeric_cols: 4,
        categorical_cols: 1,
        correlated_fraction: 0.5,
        seed: 99,
        ..Default::default()
    });
    let config = CatalogConfig {
        hyperplane_k: Some(1024),
        ..Default::default()
    };

    let mut mono = Foresight::new(table.clone());
    mono.preprocess(&config).unwrap();

    let n = table.n_rows();
    // uneven thirds; a run of tiny shards; a split with an empty shard
    let split_patterns: Vec<Vec<usize>> = vec![
        vec![0, 700, 1_900, n],
        vec![0, 100, 200, 300, 400, n],
        vec![0, 1_500, 1_500, n],
    ];

    for edges in split_patterns {
        let shards: Vec<Table> = edges
            .windows(2)
            .map(|w| table.filter_rows(|r| r >= w[0] && r < w[1]))
            .collect();
        let mut sharded = Foresight::from_source(TableSource::sharded(shards).unwrap());
        sharded.preprocess(&config).unwrap();

        for class in ["linear-relationship", "skew", "heavy-tails"] {
            let query = InsightQuery::class(class).top_k(3);
            let from_mono = mono.query(&query).unwrap();
            let from_shards = sharded.query(&query).unwrap();
            assert!(!from_mono.is_empty(), "{class}: no results to compare");
            assert_eq!(
                from_mono.len(),
                from_shards.len(),
                "{class}: result count diverged for edges {edges:?}"
            );
            for (a, b) in from_mono.iter().zip(&from_shards) {
                assert_eq!(a.attrs, b.attrs, "{class}: ranking diverged");
                assert!(
                    (a.score - b.score).abs() <= 1e-6,
                    "{class}: score {} vs {}",
                    a.score,
                    b.score
                );
            }
        }
        assert_eq!(
            mono.carousels(2).unwrap().len(),
            sharded.carousels(2).unwrap().len()
        );
    }
}
