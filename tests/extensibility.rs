//! The paper's §2.2 extensibility claim, end to end: a data scientist can
//! plug a new insight class — with its own ranking metric and chart — into
//! a running engine, and it participates in queries and carousels.

use foresight::prelude::*;
use foresight::viz::{ChartKind, HistogramSpec};
use std::sync::Arc;

/// A toy 13th class: "negativity" — fraction of negative values.
struct Negativity;

impl InsightClass for Negativity {
    fn id(&self) -> &'static str {
        "negativity"
    }
    fn name(&self) -> &'static str {
        "Negativity"
    }
    fn description(&self) -> &'static str {
        "Most values are below zero"
    }
    fn metric(&self) -> &'static str {
        "negative fraction"
    }
    fn candidates(&self, table: &Table) -> Vec<AttrTuple> {
        table
            .numeric_indices()
            .into_iter()
            .map(AttrTuple::One)
            .collect()
    }
    fn score(&self, table: &Table, attrs: &AttrTuple) -> Option<f64> {
        let AttrTuple::One(idx) = attrs else {
            return None;
        };
        let col = table.numeric(*idx).ok()?;
        let present: Vec<f64> = col.present().collect();
        if present.is_empty() {
            return None;
        }
        Some(present.iter().filter(|&&v| v < 0.0).count() as f64 / present.len() as f64)
    }
    fn chart(&self, _table: &Table, _attrs: &AttrTuple) -> Option<foresight::viz::ChartSpec> {
        Some(foresight::viz::ChartSpec {
            title: "negativity".into(),
            x_label: String::new(),
            y_label: String::new(),
            kind: ChartKind::Histogram(HistogramSpec {
                min: 0.0,
                max: 1.0,
                counts: vec![1],
            }),
        })
    }
}

fn table() -> Table {
    TableBuilder::new("t")
        .numeric(
            "mostly_negative",
            (0..100).map(|i| -(i as f64) + 5.0).collect(),
        )
        .numeric("positive", (0..100).map(|i| i as f64 + 1.0).collect())
        .build()
        .unwrap()
}

#[test]
fn custom_class_participates_in_queries() {
    let mut fs = Foresight::new(table());
    fs.register_class(Arc::new(Negativity));
    let out = fs
        .query(&InsightQuery::class("negativity").top_k(2))
        .unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].attrs, AttrTuple::One(0));
    assert!((out[0].score - 0.94).abs() < 1e-9);
    assert_eq!(out[1].score, 0.0);
}

#[test]
fn custom_class_appears_in_carousels() {
    let mut fs = Foresight::new(table());
    fs.register_class(Arc::new(Negativity));
    let carousels = fs.carousels(2).unwrap();
    assert_eq!(carousels.len(), 13);
    let neg = carousels
        .iter()
        .find(|c| c.class_id == "negativity")
        .unwrap();
    assert_eq!(neg.class_name, "Negativity");
    assert!(!neg.instances.is_empty());
}

#[test]
fn custom_class_charts_render_everywhere() {
    let mut fs = Foresight::new(table());
    fs.register_class(Arc::new(Negativity));
    let out = fs
        .query(&InsightQuery::class("negativity").top_k(1))
        .unwrap();
    let spec = fs.chart(&out[0]).unwrap().unwrap();
    assert!(render_svg(&spec, SvgOptions::default()).starts_with("<svg"));
    assert!(!render_text(&spec, 40).is_empty());
    assert!(to_vega_lite(&spec)["$schema"].is_string());
}

#[test]
fn custom_registry_from_scratch() {
    let mut registry = InsightRegistry::empty();
    registry.register(Arc::new(Negativity));
    let mut fs = Foresight::with_registry(table(), registry);
    assert_eq!(fs.registry().len(), 1);
    assert!(fs.query(&InsightQuery::class("skew")).is_err());
    assert!(fs.query(&InsightQuery::class("negativity")).is_ok());
}
