//! Robustness under degenerate inputs: empty tables, single rows, constant
//! and all-missing columns. The engine must degrade to empty results —
//! never panic — so a malformed upload can't take the system down.

use foresight::prelude::*;

fn explore_everything(mut fs: Foresight) {
    let class_ids: Vec<String> = fs
        .registry()
        .classes()
        .iter()
        .map(|c| c.id().to_owned())
        .collect();
    for id in class_ids {
        let out = fs
            .query(&InsightQuery::class(&id).top_k(5))
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        for inst in &out {
            assert!(inst.score.is_finite(), "{id} produced non-finite score");
            let _ = fs.chart(&inst.clone()).expect("chart never errors");
        }
        let _ = fs.overview(&id).expect("overview never errors");
    }
    let carousels = fs.carousels(3).expect("carousels never error");
    assert_eq!(carousels.len(), 12);
    let _ = fs.profile().expect("profile never errors");
}

#[test]
fn empty_table() {
    let table = TableBuilder::new("empty").build().unwrap();
    explore_everything(Foresight::new(table));
}

#[test]
fn zero_rows_with_columns() {
    let table = TableBuilder::new("no-rows")
        .numeric("x", vec![])
        .categorical("c", Vec::<&str>::new())
        .build()
        .unwrap();
    explore_everything(Foresight::new(table));
}

#[test]
fn single_row() {
    let table = TableBuilder::new("one")
        .numeric("x", vec![1.0])
        .numeric("y", vec![2.0])
        .categorical("c", ["a"])
        .build()
        .unwrap();
    explore_everything(Foresight::new(table));
}

#[test]
fn constant_and_all_missing_columns() {
    let table = TableBuilder::new("degenerate")
        .numeric("constant", vec![7.0; 50])
        .numeric("all_missing", vec![f64::NAN; 50])
        .numeric(
            "half_missing",
            (0..50)
                .map(|i| if i % 2 == 0 { i as f64 } else { f64::NAN })
                .collect(),
        )
        .numeric("normal", (0..50).map(|i| i as f64).collect())
        .categorical("single_label", (0..50).map(|_| "only"))
        .categorical("all_null", (0..50).map(|_| ""))
        .build()
        .unwrap();
    explore_everything(Foresight::new(table));
}

#[test]
fn degenerate_tables_survive_preprocessing() {
    for table in [
        TableBuilder::new("empty").build().unwrap(),
        TableBuilder::new("tiny")
            .numeric("x", vec![1.0, 2.0])
            .build()
            .unwrap(),
        TableBuilder::new("weird")
            .numeric("constant", vec![3.0; 20])
            .numeric("missing", vec![f64::NAN; 20])
            .categorical("c", (0..20).map(|_| "x"))
            .build()
            .unwrap(),
    ] {
        let mut fs = Foresight::new(table);
        fs.preprocess(&CatalogConfig::default()).unwrap();
        fs.build_index().unwrap();
        explore_everything(fs);
    }
}

#[test]
fn extreme_values_do_not_poison_charts() {
    let table = TableBuilder::new("extreme")
        .numeric("huge", (0..100).map(|i| i as f64 * 1e300).collect())
        .numeric("tiny", (0..100).map(|i| i as f64 * 1e-300).collect())
        .numeric(
            "mixed",
            (0..100)
                .map(|i| if i == 50 { 1e12 } else { i as f64 })
                .collect(),
        )
        .build()
        .unwrap();
    let mut fs = Foresight::new(table);
    for id in ["dispersion", "skew", "outliers", "heavy-tails"] {
        let out = fs.query(&InsightQuery::class(id).top_k(3)).unwrap();
        for inst in out {
            if let Some(spec) = fs.chart(&inst).unwrap() {
                let svg = render_svg(&spec, SvgOptions::default());
                assert!(!svg.contains("NaN"), "{id} chart leaked NaN");
                let _ = render_text(&spec, 40);
            }
        }
    }
}

/// A table mixing healthy columns with every degenerate shape the scorers
/// must skip: zero variance, all-NaN, mostly-NaN, single-label, all-null.
fn degenerate_mix() -> Table {
    TableBuilder::new("degenerate-mix")
        .numeric("constant", vec![7.0; 60])
        .numeric("all_missing", vec![f64::NAN; 60])
        .numeric(
            "one_present",
            (0..60)
                .map(|i| if i == 17 { 3.0 } else { f64::NAN })
                .collect(),
        )
        .numeric(
            "normal_a",
            (0..60).map(|i| (i as f64).sin() * 10.0).collect(),
        )
        .numeric("normal_b", (0..60).map(|i| i as f64).collect())
        .categorical("single_label", (0..60).map(|_| "only"))
        .categorical("all_null", (0..60).map(|_| ""))
        .categorical("mixed", (0..60).map(|i| if i % 3 == 0 { "x" } else { "y" }))
        .build()
        .unwrap()
}

/// Degenerate columns must be skipped with a **typed `None`**, never scored
/// `Some(NaN)`: a NaN that reaches the ranker has no defined sort order and
/// silently scrambles top-k. This pins the contract at the scorer level,
/// for every registered class, for both the scalar and the batch path.
#[test]
fn degenerate_columns_skip_typed_not_nan() {
    let table = degenerate_mix();
    let registry = InsightRegistry::default();
    for class in registry.classes() {
        for attrs in class.candidates(&table) {
            let scalar = class.score(&table, &attrs);
            if let Some(s) = scalar {
                assert!(
                    s.is_finite(),
                    "{} scored {attrs:?} as Some({s}) — degenerate columns \
                     must skip with None, not a non-finite score",
                    class.id()
                );
            }
            // the batch path must make the same skip decision, or the
            // cached/batched executors would disagree with the scalar one
            let batch = class.score_batch(&table, &[attrs]);
            match (scalar, batch[0]) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "{}: batch score {b} != scalar score {a} on {attrs:?}",
                    class.id()
                ),
                (a, b) => panic!(
                    "{}: scalar={a:?} but batch={b:?} on {attrs:?} — skip \
                     decisions must agree",
                    class.id()
                ),
            }
        }
    }
}

/// The same typed-skip contract on the sketch path: approximate mode
/// queries over a catalog built from degenerate columns must never surface
/// a non-finite score either.
#[test]
fn degenerate_columns_skip_typed_in_approximate_mode() {
    let mut fs = Foresight::new(degenerate_mix());
    fs.preprocess(&CatalogConfig::default()).unwrap();
    fs.set_mode(Mode::Approximate).unwrap();
    explore_everything(fs);
}

/// NaN never enters the ranking order: with degenerate and healthy columns
/// side by side, every class's ranking is finite and sorted descending —
/// the healthy columns still surface, the degenerate ones are absent or
/// score a legitimate finite value (e.g. dispersion 0 for a constant).
#[test]
fn rankings_stay_sorted_with_degenerate_columns_present() {
    let mut fs = Foresight::new(degenerate_mix());
    let class_ids: Vec<String> = fs
        .registry()
        .classes()
        .iter()
        .map(|c| c.id().to_owned())
        .collect();
    for id in &class_ids {
        let out = fs.query(&InsightQuery::class(id).top_k(50)).unwrap();
        for pair in out.windows(2) {
            assert!(
                pair[0].score >= pair[1].score,
                "{id}: ranking not descending ({} then {})",
                pair[0].score,
                pair[1].score
            );
        }
        for inst in &out {
            assert!(inst.score.is_finite(), "{id}: non-finite score ranked");
        }
    }
    // the healthy numeric pair must still win linear-relationship: the
    // degenerate columns may be skipped but must not suppress real work
    let top = fs
        .query(&InsightQuery::class("linear-relationship").top_k(1))
        .unwrap();
    assert!(!top.is_empty(), "healthy columns produced no correlation");
    assert!(top[0].score.is_finite());
}

#[test]
fn duplicate_heavy_table() {
    // every value identical across two columns: correlations are undefined,
    // frequencies are trivially concentrated — nothing should panic
    let table = TableBuilder::new("dups")
        .numeric("a", vec![5.0; 300])
        .numeric("b", vec![5.0; 300])
        .categorical("c", (0..300).map(|_| "same"))
        .build()
        .unwrap();
    explore_everything(Foresight::new(table));
}

/// LSH candidate generation under degenerate inputs. The index plans its
/// band width from the signature, so a signature narrower than one
/// default band (k < K) must clamp to a single full-signature band —
/// never panic, never produce an empty plan. Constant and all-NaN columns
/// become *typed* skips (`constant_column` / `all_missing`), and an exact
/// duplicate pair must always collide: identical values mean identical
/// signatures, so the self-pair can never go missing at any probe count.
#[test]
fn lsh_degenerate_widths_and_typed_skips() {
    use foresight::sketch::{LshIndex, SketchCatalog};
    let noise = |r: usize, c: u64| {
        let x = (r as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(c * 1013);
        (x >> 33) as f64 / 1e9
    };
    let dup: Vec<f64> = (0..200).map(|r| r as f64 + noise(r, 0)).collect();
    let mut b = TableBuilder::new("degenerate-lsh")
        .numeric("dup_a", dup.clone())
        .numeric("dup_b", dup)
        .numeric("constant", vec![42.0; 200])
        .numeric("all_nan", vec![f64::NAN; 200]);
    for c in 0..4 {
        b = b.numeric(
            format!("noise{c}"),
            (0..200).map(|r| noise(r, c + 10)).collect(),
        );
    }
    let table = b.build().unwrap();

    // k = 8 signature bits < the default 16-bit band: plan must clamp to
    // one band of 8 bits, one table
    for k in [8usize, 16, 64] {
        let catalog = SketchCatalog::build(
            &table,
            &CatalogConfig {
                hyperplane_k: Some(k),
                ..Default::default()
            },
        );
        let index = LshIndex::build(&catalog).expect("numeric columns present");
        let config = index.config();
        assert!(config.band_bits <= k.min(16), "band wider than signature");
        assert!(config.tables >= 1);
        // typed skips, by name — never a panic, never silently indexed
        assert_eq!(
            index.skips().get(&2).map(|s| s.name()),
            Some("constant_column")
        );
        assert_eq!(index.skips().get(&3).map(|s| s.name()), Some("all_missing"));
        // the duplicate pair collides at every probe depth
        for probes in 1..=config.tables {
            let (pairs, _) = index.candidate_pairs(probes);
            assert!(
                pairs.contains(&(0, 1)),
                "duplicate self-pair missing at k={k}, probes={probes}"
            );
        }
    }
}

/// Forcing the LSH strategy on degenerate tables never panics and never
/// breaks the facade contract: narrow tables, tables with no catalog
/// (nothing to index — the strategy falls back to the scan), and tables
/// made entirely of skip-typed columns all degrade to ordinary answers.
#[test]
fn lsh_strategy_degrades_gracefully() {
    // no catalog at all: Lsh falls back to the class scan in exact mode
    let mut bare = Foresight::new(degenerate_mix());
    bare.set_candidate_strategy(CandidateStrategy::parse("lsh").unwrap());
    explore_everything(bare);

    // catalog + index present, but every column is constant or missing:
    // the collision set is empty or trivial — queries stay finite
    let all_degenerate = TableBuilder::new("all-degenerate")
        .numeric("c1", vec![1.0; 64])
        .numeric("c2", vec![2.0; 64])
        .numeric("n1", vec![f64::NAN; 64])
        .build()
        .unwrap();
    let mut fs = Foresight::new(all_degenerate);
    fs.preprocess(&CatalogConfig::default()).unwrap();
    fs.set_candidate_strategy(CandidateStrategy::Lsh { probes: Some(3) });
    explore_everything(fs);

    // a healthy wide-ish table under an absurd probe count: clamped to L,
    // answers equal the all-tables probe
    let mut wide = TableBuilder::new("wide");
    for c in 0..70u64 {
        wide = wide.numeric(
            format!("w{c}"),
            (0..128)
                .map(|r: usize| {
                    let x = (r as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(c * 977);
                    (x >> 33) as f64 / 1e9
                })
                .collect(),
        );
    }
    let table = wide.build().unwrap();
    let mut fs = Foresight::new(table);
    fs.preprocess(&CatalogConfig::default()).unwrap();
    let q = InsightQuery::class("linear-relationship").top_k(5);
    fs.set_candidate_strategy(CandidateStrategy::Lsh {
        probes: Some(usize::MAX),
    });
    let clamped = fs.query(&q).unwrap();
    fs.set_candidate_strategy(CandidateStrategy::Lsh { probes: None });
    let all = fs.query(&q).unwrap();
    assert_eq!(clamped, all);
}
