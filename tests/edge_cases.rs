//! Robustness under degenerate inputs: empty tables, single rows, constant
//! and all-missing columns. The engine must degrade to empty results —
//! never panic — so a malformed upload can't take the system down.

use foresight::prelude::*;

fn explore_everything(mut fs: Foresight) {
    let class_ids: Vec<String> = fs
        .registry()
        .classes()
        .iter()
        .map(|c| c.id().to_owned())
        .collect();
    for id in class_ids {
        let out = fs
            .query(&InsightQuery::class(&id).top_k(5))
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        for inst in &out {
            assert!(inst.score.is_finite(), "{id} produced non-finite score");
            let _ = fs.chart(&inst.clone()).expect("chart never errors");
        }
        let _ = fs.overview(&id).expect("overview never errors");
    }
    let carousels = fs.carousels(3).expect("carousels never error");
    assert_eq!(carousels.len(), 12);
    let _ = fs.profile().expect("profile never errors");
}

#[test]
fn empty_table() {
    let table = TableBuilder::new("empty").build().unwrap();
    explore_everything(Foresight::new(table));
}

#[test]
fn zero_rows_with_columns() {
    let table = TableBuilder::new("no-rows")
        .numeric("x", vec![])
        .categorical("c", Vec::<&str>::new())
        .build()
        .unwrap();
    explore_everything(Foresight::new(table));
}

#[test]
fn single_row() {
    let table = TableBuilder::new("one")
        .numeric("x", vec![1.0])
        .numeric("y", vec![2.0])
        .categorical("c", ["a"])
        .build()
        .unwrap();
    explore_everything(Foresight::new(table));
}

#[test]
fn constant_and_all_missing_columns() {
    let table = TableBuilder::new("degenerate")
        .numeric("constant", vec![7.0; 50])
        .numeric("all_missing", vec![f64::NAN; 50])
        .numeric(
            "half_missing",
            (0..50)
                .map(|i| if i % 2 == 0 { i as f64 } else { f64::NAN })
                .collect(),
        )
        .numeric("normal", (0..50).map(|i| i as f64).collect())
        .categorical("single_label", (0..50).map(|_| "only"))
        .categorical("all_null", (0..50).map(|_| ""))
        .build()
        .unwrap();
    explore_everything(Foresight::new(table));
}

#[test]
fn degenerate_tables_survive_preprocessing() {
    for table in [
        TableBuilder::new("empty").build().unwrap(),
        TableBuilder::new("tiny")
            .numeric("x", vec![1.0, 2.0])
            .build()
            .unwrap(),
        TableBuilder::new("weird")
            .numeric("constant", vec![3.0; 20])
            .numeric("missing", vec![f64::NAN; 20])
            .categorical("c", (0..20).map(|_| "x"))
            .build()
            .unwrap(),
    ] {
        let mut fs = Foresight::new(table);
        fs.preprocess(&CatalogConfig::default()).unwrap();
        fs.build_index().unwrap();
        explore_everything(fs);
    }
}

#[test]
fn extreme_values_do_not_poison_charts() {
    let table = TableBuilder::new("extreme")
        .numeric("huge", (0..100).map(|i| i as f64 * 1e300).collect())
        .numeric("tiny", (0..100).map(|i| i as f64 * 1e-300).collect())
        .numeric(
            "mixed",
            (0..100)
                .map(|i| if i == 50 { 1e12 } else { i as f64 })
                .collect(),
        )
        .build()
        .unwrap();
    let mut fs = Foresight::new(table);
    for id in ["dispersion", "skew", "outliers", "heavy-tails"] {
        let out = fs.query(&InsightQuery::class(id).top_k(3)).unwrap();
        for inst in out {
            if let Some(spec) = fs.chart(&inst).unwrap() {
                let svg = render_svg(&spec, SvgOptions::default());
                assert!(!svg.contains("NaN"), "{id} chart leaked NaN");
                let _ = render_text(&spec, 40);
            }
        }
    }
}

#[test]
fn duplicate_heavy_table() {
    // every value identical across two columns: correlations are undefined,
    // frequencies are trivially concentrated — nothing should panic
    let table = TableBuilder::new("dups")
        .numeric("a", vec![5.0; 300])
        .numeric("b", vec![5.0; 300])
        .categorical("c", (0..300).map(|_| "same"))
        .build()
        .unwrap();
    explore_everything(Foresight::new(table));
}
