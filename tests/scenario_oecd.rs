//! End-to-end replication of the paper's §4.1 usage scenario (experiment
//! S1 in DESIGN.md): every distributional fact the narrative relies on must
//! be discoverable through the public engine API.

use foresight::prelude::*;

fn engine() -> Foresight {
    Foresight::new(datasets::oecd())
}

#[test]
fn headline_insight_is_long_hours_vs_leisure() {
    let mut fs = engine();
    let top = fs
        .query(&InsightQuery::class("linear-relationship").top_k(1))
        .unwrap();
    let d = &top[0].detail;
    assert!(
        d.contains("Employees Working Very Long Hours") && d.contains("Time Devoted To Leisure"),
        "got: {d}"
    );
    assert!(d.contains("negative"), "got: {d}");
    assert!(top[0].score > 0.75, "|rho| = {}", top[0].score);
}

#[test]
fn leisure_is_uncorrelated_with_health() {
    let fs = engine();
    let leisure = fs.table().index_of("Time Devoted To Leisure").unwrap();
    let health = fs.table().index_of("Self Reported Health").unwrap();
    let rho = foresight::stats::correlation::pearson(
        fs.table().numeric(leisure).unwrap().values(),
        fs.table().numeric(health).unwrap().values(),
    );
    assert!(rho.abs() < 0.3, "rho = {rho}");
}

#[test]
fn leisure_ranks_among_most_normal_attributes() {
    let mut fs = engine();
    let normal = fs
        .query(&InsightQuery::class("normality").top_k(8))
        .unwrap();
    assert!(
        normal
            .iter()
            .any(|i| i.detail.contains("Time Devoted To Leisure")),
        "normality top-8: {:?}",
        normal.iter().map(|i| &i.detail).collect::<Vec<_>>()
    );
}

#[test]
fn health_is_left_skewed() {
    let mut fs = engine();
    let health = fs.table().index_of("Self Reported Health").unwrap();
    let skews = fs.query(&InsightQuery::class("skew").top_k(24)).unwrap();
    let h = skews
        .iter()
        .find(|i| i.attrs.contains(health))
        .expect("health scored");
    assert!(h.detail.contains("left-skewed"), "got: {}", h.detail);
}

#[test]
fn life_satisfaction_correlates_with_health() {
    let mut fs = engine();
    let health = fs.table().index_of("Self Reported Health").unwrap();
    let top = fs
        .query(
            &InsightQuery::class("linear-relationship")
                .top_k(1)
                .fix_attr(health),
        )
        .unwrap();
    assert!(
        top[0].detail.contains("Life Satisfaction"),
        "got: {}",
        top[0].detail
    );
    assert!(top[0].score > 0.5);
}

#[test]
fn focusing_steers_recommendations_toward_neighborhood() {
    let mut fs = engine();
    fs.set_weights(NeighborhoodWeights { similarity: 0.9 });
    let top = fs
        .query(&InsightQuery::class("linear-relationship").top_k(1))
        .unwrap();
    let focused_attrs = top[0].attrs;
    fs.focus(top[0].clone());
    let carousels = fs.carousels(5).unwrap();
    let linear = carousels
        .iter()
        .find(|c| c.class_id == "linear-relationship")
        .unwrap();
    // the carousel should now lead with insights overlapping the focus
    let lead_overlap = linear.instances[0].attrs.overlap(&focused_attrs);
    assert!(
        lead_overlap >= 1,
        "lead {:?} shares no attribute with focus {:?}",
        linear.instances[0].attrs,
        focused_attrs
    );
}

#[test]
fn full_scenario_session_replay() {
    // the whole §4.1 walk-through as one session, then save/restore
    let mut fs = engine();
    let top = fs
        .query(&InsightQuery::class("linear-relationship").top_k(1))
        .unwrap();
    fs.focus(top[0].clone());

    let spearman = fs
        .query(
            &InsightQuery::class("linear-relationship")
                .top_k(5)
                .metric("|spearman|"),
        )
        .unwrap();
    assert!(!spearman.is_empty());

    let health = fs.table().index_of("Self Reported Health").unwrap();
    let skews = fs.query(&InsightQuery::class("skew").top_k(24)).unwrap();
    let health_skew = skews.iter().find(|i| i.attrs.contains(health)).unwrap();
    fs.focus(health_skew.clone());

    let correlates = fs
        .query(
            &InsightQuery::class("linear-relationship")
                .top_k(3)
                .fix_attr(health),
        )
        .unwrap();
    assert!(correlates[0].detail.contains("Life Satisfaction"));

    let json = fs.session().to_json().unwrap();
    let restored = Session::from_json(&json).unwrap();
    assert_eq!(restored.focus.len(), 2);
    assert_eq!(restored.dataset, "oecd");
    assert!(restored.history.len() >= 5);
}

#[test]
fn restored_session_replays_identically() {
    // the §4.1 ending: the analyst shares her session; a colleague replays
    // the same exploration on their own copy of the data
    let mut original = engine();
    let q1 = InsightQuery::class("linear-relationship").top_k(3);
    let q2 = InsightQuery::class("skew").top_k(5).score_range(0.5, 10.0);
    let r1 = original.query(&q1).unwrap();
    let r2 = original.query(&q2).unwrap();
    let json = original.session().to_json().unwrap();

    let mut colleague = engine();
    colleague.restore_session(Session::from_json(&json).unwrap());
    let replayed = colleague.replay_session().unwrap();
    assert_eq!(replayed.len(), 2);
    assert_eq!(replayed[0], r1);
    assert_eq!(replayed[1], r2);
}

#[test]
fn overview_heatmap_matches_figure_two_shape() {
    let fs = engine();
    let fig2 = fs.overview("linear-relationship").unwrap().unwrap();
    match fig2.kind {
        foresight::viz::ChartKind::CorrelationHeatmap(h) => {
            assert_eq!(h.labels.len(), 24); // 24 numeric indicators
            assert_eq!(h.values.len(), 24);
            for i in 0..24 {
                assert_eq!(h.values[i][i], 1.0);
                for j in 0..24 {
                    assert_eq!(h.values[i][j], h.values[j][i]);
                    assert!(h.values[i][j] >= -1.0 && h.values[i][j] <= 1.0);
                }
            }
        }
        _ => panic!("expected heatmap"),
    }
}
