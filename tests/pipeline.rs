//! Full-pipeline integration tests: CSV in → engine → charts out through
//! every renderer, across all three demo datasets.

use foresight::data::csv::{read_csv_str, write_csv_string};
use foresight::data::infer::InferOptions;
use foresight::prelude::*;

#[test]
fn csv_to_insights_to_charts() {
    // build a CSV by hand, read it back with type inference, and explore it
    let mut csv = String::from("height,weight,city\n");
    for i in 0..200 {
        let h = 150.0 + (i % 50) as f64;
        let w = 0.9 * h - 80.0 + (i % 7) as f64;
        let city = ["Oslo", "Lima", "Pune"][i % 3];
        csv.push_str(&format!("{h},{w},{city}\n"));
    }
    let table = read_csv_str(&csv, "people", &InferOptions::default()).unwrap();
    assert_eq!(table.n_rows(), 200);

    let mut fs = Foresight::new(table);
    let top = fs
        .query(&InsightQuery::class("linear-relationship").top_k(1))
        .unwrap();
    assert!(top[0].score > 0.9, "height~weight rho {}", top[0].score);

    let spec = fs.chart(&top[0]).unwrap().unwrap();
    let svg = render_svg(&spec, SvgOptions::default());
    assert!(svg.contains("circle") && svg.ends_with("</svg>"));
    let text = render_text(&spec, 40);
    assert!(text.lines().count() > 3);
    let vega = to_vega_lite(&spec);
    assert!(vega["layer"].is_array());
}

#[test]
fn csv_round_trip_preserves_insights() {
    let table = datasets::oecd();
    let csv = write_csv_string(&table).unwrap();
    let back = read_csv_str(&csv, "oecd", &InferOptions::default()).unwrap();
    assert_eq!(back.n_rows(), table.n_rows());
    assert_eq!(back.n_cols(), table.n_cols());

    // the headline insight survives serialization
    let mut fs = Foresight::new(back);
    let top = fs
        .query(&InsightQuery::class("linear-relationship").top_k(1))
        .unwrap();
    assert!(top[0].detail.contains("Time Devoted To Leisure"));
}

#[test]
fn all_demo_datasets_explore_cleanly() {
    for table in [datasets::oecd(), datasets::parkinson(), datasets::imdb()] {
        let name = table.name().to_owned();
        let fs = Foresight::new(table);
        let carousels = fs.carousels(2).unwrap();
        assert_eq!(carousels.len(), 12, "{name}");
        // every non-empty carousel instance must chart in every renderer
        let mut charted = 0;
        for c in &carousels {
            for inst in &c.instances {
                if let Some(spec) = fs.chart(inst).unwrap() {
                    let svg = render_svg(&spec, SvgOptions::default());
                    assert!(svg.starts_with("<svg"), "{name}/{}", c.class_id);
                    assert!(!svg.contains("NaN"), "{name}/{} has NaN", c.class_id);
                    charted += 1;
                }
            }
        }
        assert!(charted >= 15, "{name}: only {charted} charts rendered");
    }
}

#[test]
fn every_class_overview_renders_when_present() {
    let fs = Foresight::new(datasets::oecd());
    let mut overviews = 0;
    for class in fs.registry().classes() {
        if let Some(spec) = fs.overview(class.id()).unwrap() {
            let svg = render_svg(&spec, SvgOptions::default());
            assert!(svg.starts_with("<svg"), "{}", class.id());
            overviews += 1;
        }
    }
    assert!(overviews >= 10, "only {overviews} overviews");
}

#[test]
fn html_report_renders_for_all_datasets() {
    for table in [datasets::oecd(), datasets::imdb()] {
        let name = table.name().to_owned();
        let fs = Foresight::new(table);
        let html = fs.report(2).unwrap().to_html();
        assert!(html.starts_with("<!DOCTYPE html>"), "{name}");
        // at least 8 class sections plus the correlation overview
        assert!(html.matches("<section>").count() >= 9, "{name}");
        assert!(html.matches("<svg").count() >= 12, "{name}");
        assert!(!html.contains("NaN"), "{name}: NaN leaked into report");
    }
}

#[test]
fn approximate_mode_full_pipeline_on_parkinson() {
    let mut fs = Foresight::new(datasets::parkinson());
    fs.preprocess(&CatalogConfig::default()).unwrap();
    fs.set_parallel(true);
    let carousels = fs.carousels(3).unwrap();
    let non_empty = carousels.iter().filter(|c| !c.instances.is_empty()).count();
    assert!(non_empty >= 10, "only {non_empty} non-empty carousels");
    // the outlier carousel must produce sensible ranked scores in approx mode
    let outliers = fs.query(&InsightQuery::class("outliers").top_k(8)).unwrap();
    assert!(outliers.len() == 8);
    assert!(outliers.iter().all(|i| i.score > 1.5));
    // the planted tau lab errors are extreme under a z-score detector even
    // if the IQR mean-distance metric dilutes them among lognormal tails
    let tau = fs.table().index_of("CSF Total Tau").unwrap();
    let strength = foresight::stats::outlier::outlier_strength(
        fs.table().numeric(tau).unwrap().values(),
        &foresight::stats::outlier::ZScoreDetector { threshold: 6.0 },
    );
    assert!(strength > 8.0, "tau z-score strength {strength}");
}
