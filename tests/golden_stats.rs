//! Statistical ground truth for the ranking metrics on the OECD dataset.
//!
//! The OECD demo table is fully deterministic (seeded generator), so the
//! paper's ranking metrics — variance, standardized skewness γ₁, kurtosis,
//! `RelFreq(k)`, |ρ| — have exact expected values. The golden constants
//! below were computed *independently* of the library code, with naive
//! textbook two-pass formulas (plain sums of centered powers, no Welford/
//! Pébay updates, no centering tricks), and are checked into this file.
//!
//! Three layers are pinned against them:
//!
//! 1. the `foresight-stats` implementations (single-pass Pébay moments,
//!    centered-product Pearson) agree with the naive formulas;
//! 2. the partition-merge path (`Moments::merge` over a 3-way shard split)
//!    reproduces the same values;
//! 3. the end-to-end engine ranking surfaces those exact scores.
//!
//! A drift in any numeric path — a reformulated update, a lost Bessel
//! correction, a reordered reduction beyond f64 round-off — fails here.

use foresight::prelude::*;
use foresight::stats::correlation::{self, pearson};
use foresight::stats::frequency::FrequencyTable;
use foresight::stats::Moments;

/// Relative-error tolerance for cross-implementation agreement: the naive
/// and single-pass formulas differ only in f64 rounding.
const REL_TOL: f64 = 1e-9;

fn assert_close(actual: f64, golden: f64, what: &str) {
    let rel = (actual - golden).abs() / golden.abs().max(1e-300);
    assert!(
        rel <= REL_TOL,
        "{what}: got {actual:.15e}, golden {golden:.15e} (rel err {rel:.2e})"
    );
}

/// (column, population variance, γ₁ skewness, kurtosis) — naive two-pass
/// values on `datasets::oecd()` (seed 2017, 35 rows).
const GOLDEN_MOMENTS: [(&str, f64, f64, f64); 4] = [
    (
        "Time Devoted To Leisure",
        2.882847275745589e-1,
        6.304754912151003e-1,
        2.869279745250223e0,
    ),
    (
        "Self Reported Health",
        4.302071698663386e1,
        -1.365092195186025e0,
        4.477819121424863e0,
    ),
    (
        "Life Satisfaction",
        4.328740812729458e-1,
        -1.613842355740667e-1,
        2.897466325677692e0,
    ),
    (
        "Household Net Financial Wealth",
        3.862755106705805e8,
        3.052634453417152e0,
        1.456529569655138e1,
    ),
];

/// (column a, column b, Pearson ρ) — naive centered-sum values.
const GOLDEN_RHO: [(&str, &str, f64); 3] = [
    (
        "Employees Working Very Long Hours",
        "Time Devoted To Leisure",
        -9.13501452407399e-1,
    ),
    (
        "Life Satisfaction",
        "Self Reported Health",
        8.413242006466816e-1,
    ),
    ("Air Pollution", "Water Quality", -2.463946629359805e-1),
];

fn column<'t>(table: &'t Table, name: &str) -> &'t [f64] {
    table
        .numeric(table.index_of(name).expect("known column"))
        .expect("numeric column")
        .values()
}

/// The independent reference implementation, kept in the test so the
/// goldens stay auditable: plain two-pass sums of centered powers.
fn naive_moments(values: &[f64]) -> (f64, f64, f64) {
    let vals: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let central = |p: i32| vals.iter().map(|x| (x - mean).powi(p)).sum::<f64>() / n;
    let (m2, m3, m4) = (central(2), central(3), central(4));
    (m2, m3 / m2.powf(1.5), m4 / (m2 * m2))
}

#[test]
fn single_pass_moments_match_goldens() {
    let table = datasets::oecd();
    assert_eq!((table.n_rows(), table.n_cols()), (35, 25));
    for (name, var, skew, kurt) in GOLDEN_MOMENTS {
        let m = Moments::from_slice(column(&table, name));
        assert_close(m.population_variance(), var, &format!("{name} variance"));
        assert_close(m.skewness(), skew, &format!("{name} skewness"));
        assert_close(m.kurtosis(), kurt, &format!("{name} kurtosis"));
        // and the in-test naive reference reproduces the same goldens,
        // so the constants themselves stay auditable
        let (nvar, nskew, nkurt) = naive_moments(column(&table, name));
        assert_close(nvar, var, &format!("{name} naive variance"));
        assert_close(nskew, skew, &format!("{name} naive skewness"));
        assert_close(nkurt, kurt, &format!("{name} naive kurtosis"));
    }
}

#[test]
fn merged_shard_moments_match_goldens() {
    let table = datasets::oecd();
    for (name, var, skew, kurt) in GOLDEN_MOMENTS {
        let values = column(&table, name);
        // uneven 3-way split: merge must not care about shard boundaries
        let mut merged = Moments::from_slice(&values[..7]);
        merged.merge(&Moments::from_slice(&values[7..20]));
        merged.merge(&Moments::from_slice(&values[20..]));
        assert_close(
            merged.population_variance(),
            var,
            &format!("{name} merged variance"),
        );
        assert_close(merged.skewness(), skew, &format!("{name} merged skewness"));
        assert_close(merged.kurtosis(), kurt, &format!("{name} merged kurtosis"));
    }
}

#[test]
fn pearson_matches_goldens() {
    let table = datasets::oecd();
    for (a, b, rho) in GOLDEN_RHO {
        let (xs, ys) = (column(&table, a), column(&table, b));
        assert_close(pearson(xs, ys), rho, &format!("pearson({a}, {b})"));
        // symmetric by definition
        assert_close(pearson(ys, xs), rho, &format!("pearson({b}, {a})"));
        // the batch (pre-centered) path is contractually bit-identical
        let (cx, cy) = (
            correlation::center(xs).expect("non-constant"),
            correlation::center(ys).expect("non-constant"),
        );
        let centered = correlation::pearson_centered(&cx, &cy);
        assert_eq!(
            centered.to_bits(),
            pearson(xs, ys).to_bits(),
            "pearson_centered({a}, {b}) must be bit-identical to pearson"
        );
    }
}

#[test]
fn country_relative_frequencies_are_analytic() {
    let table = datasets::oecd();
    let countries = table
        .categorical(table.index_of("Country").expect("country column"))
        .expect("categorical column");
    let freq = FrequencyTable::from_column(countries);
    // 35 distinct countries, one row each: RelFreq(k) = k/35 exactly
    assert_eq!(freq.cardinality(), 35);
    assert_eq!(freq.rel_freq(3), 3.0 / 35.0);
    assert_eq!(freq.rel_freq(35), 1.0);
    assert_eq!(freq.rel_freq(0), 0.0);
    // uniform distribution ⇒ maximal (normalized) entropy
    assert_close(freq.entropy(), (35.0f64).ln(), "country entropy");
    assert_close(freq.normalized_entropy(), 1.0, "country normalized entropy");
}

/// The engine's end-to-end ranking surfaces exactly the golden metrics:
/// what the carousel shows *is* the statistic, untransformed.
#[test]
fn engine_ranking_scores_are_the_golden_metrics() {
    let table = datasets::oecd();
    let mut fs = Foresight::new(table);

    // §4.1 headline: the strongest correlation is long-hours ↔ leisure,
    // scored |ρ|
    let top = fs
        .query(&InsightQuery::class("linear-relationship").top_k(1))
        .unwrap();
    assert_close(top[0].score, 9.13501452407399e-1, "top |pearson| score");

    // skew class scores |γ₁|; find the health column's instance
    let health = fs.table().index_of("Self Reported Health").unwrap();
    let skews = fs.query(&InsightQuery::class("skew").top_k(24)).unwrap();
    let health_skew = skews.iter().find(|i| i.attrs.contains(health)).unwrap();
    assert_close(
        health_skew.score,
        1.365092195186025e0,
        "health |skew| score",
    );

    // heavy-tails scores kurtosis; wealth is the fattest tail
    let wealth = fs
        .table()
        .index_of("Household Net Financial Wealth")
        .unwrap();
    let tails = fs
        .query(&InsightQuery::class("heavy-tails").top_k(24))
        .unwrap();
    let wealth_tail = tails.iter().find(|i| i.attrs.contains(wealth)).unwrap();
    assert_close(
        wealth_tail.score,
        1.456529569655138e1,
        "wealth kurtosis score",
    );

    // dispersion scores population variance, untransformed
    let disp = fs
        .query(&InsightQuery::class("dispersion").top_k(24))
        .unwrap();
    let wealth_disp = disp.iter().find(|i| i.attrs.contains(wealth)).unwrap();
    assert_close(
        wealth_disp.score,
        3.862755106705805e8,
        "wealth variance score",
    );

    // heterogeneous-frequencies scores RelFreq(3); Country is uniform
    let country = fs.table().index_of("Country").unwrap();
    let freqs = fs
        .query(&InsightQuery::class("heterogeneous-frequencies").top_k(24))
        .unwrap();
    if let Some(country_freq) = freqs.iter().find(|i| i.attrs.contains(country)) {
        assert_close(country_freq.score, 3.0 / 35.0, "country RelFreq(3) score");
    }
}
