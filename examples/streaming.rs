//! Streaming ingest: rows keep arriving while readers keep querying.
//!
//! A `StreamWriter` owns the write path: it absorbs row batches on a
//! background thread, maintains the index incrementally (only columns a
//! batch actually touches are rescored), and republishes an immutable
//! `EngineCore` snapshot at a bounded cadence. Readers bind their
//! `SessionHandle` to the published slot and adopt fresh snapshots
//! between queries — no reader ever blocks on ingest, and every snapshot
//! answers exactly like a cold batch build over the rows it covers.
//!
//! The stream here is a drifting "sensor" feed: halfway through, the
//! signal shifts. A bounded tail window (windowed sketches) tracks the
//! shifted regime while the full-history snapshot still profiles
//! everything seen.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use foresight::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED_ROWS: usize = 400;
const BATCH_ROWS: usize = 200;
const BATCHES: usize = 20;
const READERS: usize = 4;

/// One batch of the sensor feed. The later half of the stream shifts
/// `temp` up by 40 and decouples `load` from it.
fn sensor_batch(offset: usize, rows: usize, shifted: bool) -> Table {
    let noise = |r: usize, c: u64| {
        let x = (r as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(c.wrapping_mul(0x9e3779b97f4a7c15));
        ((x >> 33) as f64 / 2_147_483_648.0) - 0.5
    };
    let temp: Vec<f64> = (offset..offset + rows)
        .map(|r| {
            let base = 20.0 + 6.0 * ((r as f64) / 150.0).sin() + 2.0 * noise(r, 0);
            if shifted {
                base + 40.0
            } else {
                base
            }
        })
        .collect();
    let load: Vec<f64> = (offset..offset + rows)
        .map(|r| {
            if shifted {
                50.0 + 20.0 * noise(r, 1)
            } else {
                temp[r - offset] * 3.0 + 5.0 * noise(r, 1)
            }
        })
        .collect();
    let status: Vec<&str> = (offset..offset + rows)
        .map(|r| if (r / 7) % 5 == 0 { "alert" } else { "ok" })
        .collect();
    TableBuilder::new("sensors")
        .numeric("temp", temp)
        .numeric("load", load)
        .categorical("status", status)
        .build()
        .expect("well-formed batch")
}

fn main() {
    // Seed the core from the first chunk of history, then hand the write
    // path to the stream writer.
    let mut builder = CoreBuilder::new(
        TableSource::sharded(vec![sensor_batch(0, SEED_ROWS, false)]).expect("seed shard"),
    );
    builder
        .preprocess(&CatalogConfig::default())
        .expect("sketch seed rows");
    builder.build_index().expect("index seed rows");
    let core = builder.freeze();
    println!(
        "seed snapshot: {} rows, epoch {}",
        core.snapshot_rows(),
        core.epoch()
    );

    let writer = StreamWriter::spawn(
        core,
        StreamConfig {
            policy: RepublishPolicy {
                max_rows: 500, // republish at least every 500 ingested rows
                max_interval: Duration::from_millis(50),
                ..RepublishPolicy::default()
            },
            window_rows: Some(1_000), // and keep a 1 000-row tail window
            ..StreamConfig::default()
        },
    );
    let published = writer.published();

    // Readers query continuously while rows pour in. Each handle adopts
    // the freshest published snapshot before every query.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|i| {
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut handle = published.latest().handle();
                handle.bind_stream(published);
                handle.set_adopt_policy(AdoptPolicy::EveryQuery);
                let classes = ["linear-relationship", "skew", "outliers", "dispersion"];
                let mut queries = 0u64;
                let mut max_behind = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let class = classes[(i + queries as usize) % classes.len()];
                    handle
                        .query(&InsightQuery::class(class).top_k(3))
                        .expect("query under ingest");
                    max_behind = max_behind.max(handle.staleness().rows_behind);
                    queries += 1;
                }
                (queries, max_behind)
            })
        })
        .collect();

    // Feed the stream: stable regime first, shifted regime second.
    for b in 0..BATCHES {
        let shifted = b >= BATCHES / 2;
        writer
            .send(sensor_batch(
                SEED_ROWS + b * BATCH_ROWS,
                BATCH_ROWS,
                shifted,
            ))
            .expect("writer alive");
    }
    writer.flush().expect("drain the ingest queue");
    stop.store(true, Ordering::Relaxed);

    let mut total_queries = 0;
    let mut worst_staleness = 0;
    for reader in readers {
        let (queries, max_behind) = reader.join().expect("reader thread");
        total_queries += queries;
        worst_staleness = worst_staleness.max(max_behind);
    }
    println!(
        "served {total_queries} queries across {READERS} readers while ingesting; \
         worst observed staleness {worst_staleness} rows"
    );

    // The tail window sees only the shifted regime; the full snapshot
    // averages both.
    let window = writer.window().expect("window configured").latest();
    let median = |core: &EngineCore, col: &str| -> Option<f64> {
        core.profile().ok()?.columns.iter().find_map(|c| match c {
            ColumnProfile::Numeric { name, summary } if name == col => {
                summary.as_ref().map(|s| s.median)
            }
            _ => None,
        })
    };
    let tail_median = median(&window, "temp").expect("windowed temp profile");
    println!(
        "tail window: {} rows, temp median {:.1} (shifted regime)",
        window.snapshot_rows(),
        tail_median
    );

    let last = writer.finish().expect("writer drained");
    let full_median = median(&last, "temp").expect("full-history temp profile");
    println!(
        "full history: {} rows, temp median {:.1}, {} rows behind",
        last.snapshot_rows(),
        full_median,
        last.rows_behind()
    );
    assert_eq!(
        last.snapshot_rows() as usize,
        SEED_ROWS + BATCHES * BATCH_ROWS
    );
    assert_eq!(last.rows_behind(), 0, "finish() drains everything");
    assert!(
        tail_median > full_median + 20.0,
        "the window must track the shifted tail, not the whole stream"
    );

    let snap = last.metrics_snapshot();
    if snap.ingest.batches > 0 {
        println!(
            "ingest: {} batches / {} rows, {} incremental + {} full republishes, \
             {} tuples rescored, {} reused",
            snap.ingest.batches,
            snap.ingest.rows,
            snap.ingest.republishes_incremental,
            snap.ingest.republishes_full,
            snap.ingest.rescored_tuples,
            snap.ingest.reused_tuples,
        );
    }
}
