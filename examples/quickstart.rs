//! Quickstart: load a dataset, preprocess sketches, and print the top
//! insights from every class as a terminal carousel (the paper's Figure 1
//! experience in a CLI).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use foresight::prelude::*;

fn main() {
    // 1. Load data. Any CSV works via foresight::data::csv::read_csv;
    //    here we use the bundled OECD wellbeing generator (35 × 25).
    let table = datasets::oecd();
    println!(
        "dataset `{}`: {} rows × {} columns\n",
        table.name(),
        table.n_rows(),
        table.n_cols()
    );

    let mut fs = Foresight::new(table);

    // 2. Preprocess: build the sketch catalog (hyperplane correlation bits,
    //    KLL quantiles, heavy hitters, entropy registers…) and switch to
    //    interactive approximate mode.
    fs.preprocess(&CatalogConfig::default())
        .expect("raw table present");

    // 3. First stage of exploration: every class's strongest insights.
    let carousels = fs.carousels(3).expect("default classes never fail");
    for c in &carousels {
        if c.instances.is_empty() {
            continue;
        }
        println!("── {} (ranked by {}) ──", c.class_name, c.metric);
        let blocks: Vec<String> = c
            .instances
            .iter()
            .filter_map(|inst| fs.chart(inst).ok().flatten())
            .map(|spec| render_text(&spec, 36))
            .collect();
        print!("{}", carousel(&blocks, 1));
        println!();
    }

    // 4. Dive deeper: an insight query with a fixed attribute and a score
    //    filter (find what correlates with Life Satisfaction, excluding
    //    trivially-perfect pairs).
    let ls = fs.table().index_of("Life Satisfaction").unwrap();
    let related = fs
        .query(
            &InsightQuery::class("linear-relationship")
                .top_k(5)
                .fix_attr(ls)
                .score_range(0.3, 0.95),
        )
        .unwrap();
    println!("most correlated with Life Satisfaction (0.3 ≤ |ρ| ≤ 0.95):");
    for inst in &related {
        println!("  {:.2}  {}", inst.score, inst.detail);
    }
}
