//! Sketch composability across data partitions (paper §3): build sketches
//! on four disjoint shards of a dataset — as a distributed ingest would —
//! merge them, and answer the same insight questions as a single-pass
//! build, without ever holding the raw shards together.
//!
//! ```sh
//! cargo run --release --example partitioned
//! ```

use foresight::data::datasets::{synth, SynthConfig};
use foresight::sketch::hyperplane::{HyperplaneConfig, SharedHyperplanes};
use foresight::sketch::{HyperLogLog, KllSketch, Mergeable};
use foresight::stats::Moments;

fn main() {
    let (table, truth) = synth(&SynthConfig {
        rows: 40_000,
        numeric_cols: 6,
        categorical_cols: 1,
        correlated_fraction: 0.67,
        seed: 7,
        ..Default::default()
    });
    let (i, j, planted_rho) = truth
        .correlated_pairs
        .iter()
        .copied()
        .max_by(|a, b| a.2.abs().partial_cmp(&b.2.abs()).unwrap())
        .expect("pairs planted");
    let x = table.numeric(i).unwrap().values();
    let y = table.numeric(j).unwrap().values();
    let parts = 4;
    let shard = x.len().div_ceil(parts);
    println!(
        "dataset: {} rows split into {parts} shards of {shard}; planted ρ(num_{i:03}, num_{j:03}) = {planted_rho:.2}\n",
        x.len()
    );

    // each shard builds its own sketches — no shard ever sees another
    let hp = SharedHyperplanes::new(HyperplaneConfig {
        k: 1024,
        ..Default::default()
    });
    let mut acc_x = hp.accumulator();
    let mut acc_y = hp.accumulator();
    let mut moments = Moments::new();
    let mut quantiles = KllSketch::new(200);
    let mut distinct = HyperLogLog::new(12, 1);
    let cat = table.categorical(table.categorical_indices()[0]).unwrap();

    for p in 0..parts {
        let lo = p * shard;
        let hi = ((p + 1) * shard).min(x.len());
        // hyperplane accumulators carry their global row offsets, so the
        // row-keyed random components line up across shards
        let mut ax = hp.accumulator();
        ax.update_rows(&x[lo..hi], lo as u64);
        acc_x.merge(&ax).unwrap();
        let mut ay = hp.accumulator();
        ay.update_rows(&y[lo..hi], lo as u64);
        acc_y.merge(&ay).unwrap();

        moments.merge(&Moments::from_slice(&x[lo..hi]));

        let mut kll = KllSketch::new(200);
        let mut hll = HyperLogLog::new(12, 1);
        for (r, &v) in x.iter().enumerate().take(hi).skip(lo) {
            kll.insert(v);
            if let Some(label) = cat.get(r) {
                hll.insert(label);
            }
        }
        quantiles.merge(&kll).unwrap();
        distinct.merge(&hll).unwrap();
        println!("  shard {p}: rows {lo}..{hi} sketched and merged");
    }

    // merged sketches answer the questions
    let est_rho = acc_x
        .finalize()
        .correlation(&acc_y.finalize())
        .expect("same config");
    let exact_rho = foresight::stats::correlation::pearson(x, y);
    println!("\ncorrelation:  merged-sketch {est_rho:.3}  vs exact {exact_rho:.3}");

    let exact_m = Moments::from_slice(x);
    println!(
        "moments:      merged mean {:.4} / skew {:.4}  vs exact {:.4} / {:.4}",
        moments.mean(),
        moments.skewness(),
        exact_m.mean(),
        exact_m.skewness()
    );

    let exact_median = foresight::stats::quantile::median(x).unwrap();
    println!(
        "median:       merged KLL {:.4}  vs exact {:.4}",
        quantiles.quantile(0.5).unwrap(),
        exact_median
    );

    println!(
        "distinct:     merged HLL {:.0}  vs exact {}",
        distinct.estimate(),
        cat.cardinality()
    );

    // the exact-merge guarantee: the merged hyperplane bits equal a
    // single-pass build over the whole column
    let single_pass = hp.sketch_column(x);
    assert_eq!(acc_x.finalize(), single_pass);
    println!("\nmerged hyperplane sketch is bit-identical to the single-pass build ✓");
}
