//! Sketch composability across data partitions (paper §3): build a full
//! sketch catalog on each of four disjoint shards of a dataset — as a
//! distributed ingest would — merge the catalogs, and answer the same
//! insight questions as a single-pass build, without ever holding the raw
//! shards together.
//!
//! ```sh
//! cargo run --release --example partitioned
//! ```

use foresight::data::datasets::{synth, SynthConfig};
use foresight::data::Table;
use foresight::sketch::{CatalogConfig, Mergeable, SketchCatalog};
use foresight::stats::Moments;

fn main() {
    let (table, truth) = synth(&SynthConfig {
        rows: 40_000,
        numeric_cols: 6,
        categorical_cols: 1,
        correlated_fraction: 0.67,
        seed: 7,
        ..Default::default()
    });
    let (i, j, planted_rho) = truth
        .correlated_pairs
        .iter()
        .copied()
        .max_by(|a, b| a.2.abs().partial_cmp(&b.2.abs()).unwrap())
        .expect("pairs planted");
    let x = table.numeric(i).unwrap().values();
    let y = table.numeric(j).unwrap().values();
    let parts = 4;
    let per = table.n_rows().div_ceil(parts);
    println!(
        "dataset: {} rows split into {parts} shards of {per}; planted ρ(num_{i:03}, num_{j:03}) = {planted_rho:.2}\n",
        table.n_rows()
    );

    let shards: Vec<Table> = (0..parts)
        .map(|p| table.filter_rows(|r| r / per == p))
        .collect();

    // one config — same seed, same hyperplane family — resolved against the
    // TOTAL row count: the invariant that makes per-shard catalogs mergeable
    let config = CatalogConfig {
        hyperplane_k: Some(1024),
        ..Default::default()
    }
    .resolved_for_rows(table.n_rows());

    // each shard builds a complete catalog at its global row offset — no
    // shard ever sees another — then the catalogs merge field by field
    let mut merged: Option<SketchCatalog> = None;
    let mut offset = 0u64;
    for (p, shard) in shards.iter().enumerate() {
        let catalog = SketchCatalog::build_shard(shard, &config, offset);
        println!(
            "  shard {p}: rows {offset}..{} sketched and merged",
            offset + shard.n_rows() as u64
        );
        offset += shard.n_rows() as u64;
        match merged.as_mut() {
            None => merged = Some(catalog),
            Some(m) => m.merge(&catalog).expect("same config"),
        }
    }
    let merged = merged.expect("at least one shard");

    // the same questions, answered by the merged catalog vs exact passes
    let est_rho = merged.correlation(i, j).expect("both columns sketched");
    let exact_rho = foresight::stats::correlation::pearson(x, y);
    println!("\ncorrelation:  merged-catalog {est_rho:.3}  vs exact {exact_rho:.3}");

    let sketches = merged.numeric(i).expect("column sketched");
    let exact_m = Moments::from_slice(x);
    println!(
        "moments:      merged mean {:.4} / skew {:.4}  vs exact {:.4} / {:.4}",
        sketches.moments.mean(),
        sketches.moments.skewness(),
        exact_m.mean(),
        exact_m.skewness()
    );

    let exact_median = foresight::stats::quantile::median(x).unwrap();
    println!(
        "median:       merged KLL {:.4}  vs exact {:.4}",
        sketches.quantiles.quantile(0.5).unwrap(),
        exact_median
    );

    let cat_idx = table.categorical_indices()[0];
    let cat = table.categorical(cat_idx).unwrap();
    let cat_sketches = merged.categorical(cat_idx).expect("column sketched");
    println!(
        "distinct:     merged HLL {:.0}  vs exact {}",
        cat_sketches.distinct.estimate(),
        cat.cardinality()
    );

    // the composability guarantee: the shard-merged catalog answers exactly
    // like one built in a single pass over the whole table — bit-identical
    // hyperplane sketches and moments, not merely close
    let single_pass = SketchCatalog::build(&table, &config);
    assert_eq!(
        sketches.hyperplane,
        single_pass.numeric(i).unwrap().hyperplane
    );
    assert_eq!(sketches.moments, single_pass.numeric(i).unwrap().moments);
    assert_eq!(merged.rows(), single_pass.rows());
    println!("\nmerged catalog is bit-identical to the single-pass build (hyperplanes, moments) ✓");
}
