//! The IMDB demo questions (paper §4.2): *what factors correlate highly
//! with a film's profitability?* and *how are critical responses and
//! commercial success interrelated?* — answered with insight queries, then
//! rendered as SVG charts in `target/imdb_charts/`.
//!
//! ```sh
//! cargo run --release --example imdb_profit
//! ```

use foresight::prelude::*;
use foresight::viz::SvgOptions;
use std::fs;
use std::path::Path;

fn main() {
    let table = datasets::imdb();
    println!(
        "IMDB: {} movies × {} features",
        table.n_rows(),
        table.n_cols()
    );
    let profit = table.index_of("Profit").unwrap();
    let score = table.index_of("IMDB Score").unwrap();
    let gross = table.index_of("Gross").unwrap();

    let mut engine = Foresight::new(table);
    engine
        .preprocess(&CatalogConfig::default())
        .expect("raw table present");

    // Q1: what correlates with profitability? Monotonic (Spearman) handles
    // the heavy-tailed dollar scales better than Pearson.
    let correlates = engine
        .query(
            &InsightQuery::class("monotonic-relationship")
                .top_k(6)
                .fix_attr(profit),
        )
        .unwrap();
    println!("\nwhat moves with Profit (Spearman):");
    for c in &correlates {
        println!("  {:.2}  {}", c.score, c.detail);
    }

    // Q2: critical response vs commercial success.
    let critic_vs_gross = engine
        .query(
            &InsightQuery::class("monotonic-relationship")
                .top_k(1)
                .fix_attr(score)
                .fix_attr(gross),
        )
        .unwrap();
    println!("\ncritical response vs commercial success:");
    println!("  {}", critic_vs_gross[0].detail);

    // Bonus: the movie-business distributions are wild — show the
    // heavy-tails carousel.
    let heavy = engine
        .query(&InsightQuery::class("heavy-tails").top_k(4))
        .unwrap();
    println!("\nheaviest-tailed features:");
    for h in &heavy {
        println!("  kurt = {:.0}  {}", h.score, h.detail);
    }

    // Render the headline charts to SVG.
    let out_dir = Path::new("target/imdb_charts");
    fs::create_dir_all(out_dir).expect("create output dir");
    let mut rendered = 0;
    for inst in correlates.iter().take(2).chain(&critic_vs_gross) {
        if let Ok(Some(spec)) = engine.chart(inst) {
            let svg = render_svg(&spec, SvgOptions::default());
            let path = out_dir.join(format!("{}_{rendered}.svg", spec.kind_name()));
            fs::write(&path, svg).expect("write svg");
            rendered += 1;
        }
    }
    // and the Figure-2-style overview for the whole dataset
    if let Ok(Some(fig2)) = engine.overview("linear-relationship") {
        fs::write(
            out_dir.join("correlation_overview.svg"),
            render_svg(
                &fig2,
                SvgOptions {
                    width: 760.0,
                    height: 760.0,
                    margin: 40.0,
                },
            ),
        )
        .expect("write svg");
        rendered += 1;
    }
    println!("\nwrote {rendered} SVG charts to {}", out_dir.display());

    // and a self-contained HTML report of every carousel
    let report = engine.report(3).expect("default classes");
    let report_path = out_dir.join("report.html");
    fs::write(&report_path, report.to_html()).expect("write report");
    println!("wrote {}", report_path.display());
}
