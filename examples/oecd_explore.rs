//! Replays the paper's §4.1 usage scenario programmatically on the OECD
//! wellbeing dataset:
//!
//! 1. the top correlation insight is Working-Long-Hours ↔ Leisure (negative);
//! 2. focusing it re-ranks recommendations to its neighborhood;
//! 3. Spearman re-ranking works as an alternative metric;
//! 4. Leisure turns out uncorrelated with Self-Reported Health;
//! 5. the univariate carousels show Leisure ≈ Normal, Health left-skewed;
//! 6. focusing Health surfaces Life-Satisfaction ↔ Health;
//! 7. the session is saved (and could be shared);
//! 8. the preprocessing phase switches to interactive (sketch-backed) mode,
//!    a diversified query and the full carousel set run, and the engine's
//!    telemetry snapshot shows where every stage spent its time (build with
//!    `--features telemetry` to see non-zero samples).
//!
//! ```sh
//! cargo run --release --example oecd_explore
//! ```

use foresight::prelude::*;

fn main() {
    let table = datasets::oecd();
    let mut fs = Foresight::new(table);

    // Step 1: eyeball the correlation carousel.
    let top = fs
        .query(&InsightQuery::class("linear-relationship").top_k(5))
        .unwrap();
    println!("top correlation insights:");
    for t in &top {
        println!("  {:.2}  {}", t.score, t.detail);
    }
    let headline = top[0].clone();
    assert!(
        headline
            .detail
            .contains("Employees Working Very Long Hours")
            && headline.detail.contains("Time Devoted To Leisure"),
        "expected the long-hours/leisure insight first, got: {}",
        headline.detail
    );

    // Step 2: bring it into focus; recommendations shift to its neighborhood.
    fs.focus(headline.clone());
    println!("\nfocused: {}", headline.detail);

    // Step 3: explore the same class under Spearman.
    let spearman_top = fs
        .query(
            &InsightQuery::class("linear-relationship")
                .top_k(5)
                .metric("|spearman|"),
        )
        .unwrap();
    println!("\ntop rank correlations (Spearman):");
    for t in &spearman_top {
        println!("  {:.2}  {}", t.score, t.detail);
    }

    // Step 4: the surprise — leisure is NOT correlated with health.
    let leisure = fs.table().index_of("Time Devoted To Leisure").unwrap();
    let health = fs.table().index_of("Self Reported Health").unwrap();
    let rho = foresight::stats::correlation::pearson(
        fs.table().numeric(leisure).unwrap().values(),
        fs.table().numeric(health).unwrap().values(),
    );
    println!("\nρ(Leisure, Self Reported Health) = {rho:.2}  — no correlation!");

    // Step 5: check the univariate distribution insights.
    let normality = fs
        .query(&InsightQuery::class("normality").top_k(3))
        .unwrap();
    println!("\nmost normal attributes:");
    for t in &normality {
        println!("  p = {:.2}  {}", t.score, t.detail);
    }
    let skews = fs.query(&InsightQuery::class("skew").top_k(24)).unwrap();
    let health_skew = skews
        .iter()
        .find(|i| i.attrs.contains(health))
        .expect("health has a skew score");
    println!("\n{}", health_skew.detail);
    assert!(health_skew.detail.contains("left-skewed"));

    // Step 6: focus health's distribution; find its correlates.
    fs.focus(health_skew.clone());
    let correlates = fs
        .query(
            &InsightQuery::class("linear-relationship")
                .top_k(3)
                .fix_attr(health),
        )
        .unwrap();
    println!("\nmost correlated with Self Reported Health:");
    for t in &correlates {
        println!("  {:.2}  {}", t.score, t.detail);
    }
    assert!(
        correlates[0].detail.contains("Life Satisfaction"),
        "expected Life Satisfaction first: {}",
        correlates[0].detail
    );

    // Step 7: save the session for later / for colleagues.
    let json = fs.session().to_json().unwrap();
    let restored = Session::from_json(&json).unwrap();
    assert_eq!(restored.focus.len(), 2);
    println!(
        "\nsession saved: {} focused insights, {} history events, {} bytes of JSON",
        restored.focus.len(),
        restored.history.len(),
        json.len()
    );

    // Step 8: the preprocessing phase — sketch the table, go interactive,
    // and run the remaining query shapes (diversified top-k, carousels) so
    // the telemetry snapshot covers the whole query path.
    fs.preprocess(&CatalogConfig::default()).unwrap();
    let diverse = fs
        .query(
            &InsightQuery::class("linear-relationship")
                .top_k(3)
                .diversify(0.5),
        )
        .unwrap();
    println!("\ndiversified correlation picks (sketch-backed):");
    for t in &diverse {
        println!("  {:.2}  {}", t.score, t.detail);
    }
    let carousels = fs.carousels(3).unwrap();
    println!(
        "assembled {} carousels ({} insights)",
        carousels.len(),
        carousels.iter().map(|c| c.instances.len()).sum::<usize>()
    );

    let snap = fs.metrics();
    println!("\nengine telemetry:\n{}", snap.to_text());
    if snap.telemetry_compiled {
        // every stage of the query path must have samples by now
        for stage in [
            "preprocess",
            "sketch_build",
            "score",
            "rank",
            "diversify",
            "describe",
            "carousel",
            "freeze",
        ] {
            assert!(
                snap.stage(stage).expect("known stage").count > 0,
                "stage {stage} recorded no samples"
            );
        }
        assert!(snap.queries.total >= 6, "all scenario queries counted");
    }
}
