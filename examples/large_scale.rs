//! Exercises Foresight at the paper's target scale — "data items of the
//! order of 100K and attributes that number in the hundreds" (§4.1) —
//! and prints the preprocessing/query timings that make the case for
//! sketching.
//!
//! ```sh
//! cargo run --release --example large_scale [rows] [numeric_cols]
//! ```

use foresight::data::datasets::{synth, SynthConfig};
use foresight::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let cols: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);

    println!("generating {rows} × {cols} synthetic table with planted structure…");
    let t0 = Instant::now();
    let (table, truth) = synth(&SynthConfig::benchmark(rows, cols, 42));
    println!(
        "  generated in {:.1?} ({} planted correlated pairs)",
        t0.elapsed(),
        truth.correlated_pairs.len()
    );

    let mut engine = Foresight::new(table);
    engine.set_parallel(true);

    // Preprocessing: one pass building every sketch.
    let t0 = Instant::now();
    let catalog = engine
        .preprocess(&CatalogConfig {
            parallel: true,
            ..Default::default()
        })
        .expect("raw table present");
    let k = catalog.hyperplane_config().k;
    let bytes = catalog.hyperplane_bytes();
    println!(
        "  sketch catalog built in {:.1?} (hyperplane k = {k}, correlation bits = {bytes} bytes total)",
        t0.elapsed()
    );

    // Interactive queries over the catalog.
    for (name, query) in [
        (
            "top-5 correlations",
            InsightQuery::class("linear-relationship").top_k(5),
        ),
        (
            "correlations with col 0 in [0.3, 0.9]",
            InsightQuery::class("linear-relationship")
                .top_k(5)
                .fix_attr(0)
                .score_range(0.3, 0.9),
        ),
        ("top-5 skews", InsightQuery::class("skew").top_k(5)),
        (
            "top-5 heavy tails",
            InsightQuery::class("heavy-tails").top_k(5),
        ),
        (
            "top-5 monotonic",
            InsightQuery::class("monotonic-relationship").top_k(5),
        ),
    ] {
        let t0 = Instant::now();
        let out = engine.query(&query).unwrap();
        println!("  {name}: {:.1?} → {} results", t0.elapsed(), out.len());
        if let Some(first) = out.first() {
            println!("      #1: {}", first.detail);
        }
    }

    // Sanity: the strongest sketch-ranked correlation should be a planted
    // pair (or its equal); report the agreement.
    let top = engine
        .query(&InsightQuery::class("linear-relationship").top_k(10))
        .unwrap();
    let planted: Vec<AttrTuple> = truth
        .correlated_pairs
        .iter()
        .map(|&(i, j, _)| AttrTuple::Two(i, j))
        .collect();
    let hits = top.iter().filter(|t| planted.contains(&t.attrs)).count();
    println!("\n  {hits}/10 of the sketch-ranked top-10 pairs are planted ground truth");
}
