//! Concurrent serving: one shared engine core, eight user sessions.
//!
//! Builds a single immutable `EngineCore` snapshot (preprocessed into
//! approximate mode), then spawns 8 threads. Each thread owns an
//! independent `SessionHandle` and mixes insight queries, focus-driven
//! carousel re-ranks, and a session save/restore round trip — all against
//! the same `Arc`'d core, sharing one score cache. The main thread then
//! verifies every session stayed isolated and that the shared cache did
//! its job.
//!
//! ```sh
//! cargo run --release --example concurrent
//! ```

use foresight::prelude::*;
use std::sync::Arc;

const USERS: usize = 8;

fn main() {
    // One writer builds the core: load, preprocess, publish a snapshot.
    let table = datasets::oecd();
    println!(
        "dataset `{}`: {} rows × {} columns",
        table.name(),
        table.n_rows(),
        table.n_cols()
    );
    let mut builder = CoreBuilder::new(TableSource::materialized(table));
    builder
        .preprocess(&CatalogConfig::default())
        .expect("raw table present");
    let core = builder.freeze();
    println!(
        "core published: mode={:?}, epoch={}, registry={} classes\n",
        core.mode(),
        core.epoch(),
        core.registry().len()
    );

    // Fan out: each user explores on their own handle. The classes are
    // staggered so sessions genuinely diverge.
    let classes: Vec<String> = core
        .registry()
        .classes()
        .iter()
        .map(|c| c.id().to_owned())
        .collect();
    let workers: Vec<_> = (0..USERS)
        .map(|user| {
            let core = Arc::clone(&core);
            let class = classes[user % classes.len()].clone();
            std::thread::spawn(move || {
                let mut session = core.handle();

                // 1. each user asks their own question…
                let top = session
                    .query(&InsightQuery::class(&class).top_k(3))
                    .expect("query on shared core");

                // 2. …focuses their strongest hit and re-ranks carousels
                //    toward its neighborhood…
                if let Some(best) = top.first() {
                    session.focus(best.clone());
                }
                let carousels = session.carousels(2).expect("carousels on shared core");

                // 3. …and round-trips the session state, as if sharing it
                //    with a colleague.
                let mut saved = Vec::new();
                session.save_session(&mut saved).expect("serialize session");
                let mut restored = core.handle();
                restored
                    .load_session(saved.as_slice())
                    .expect("restore session");
                let replayed = restored.replay_session().expect("replay history");

                assert_eq!(restored.session().focus, session.session().focus);
                assert_eq!(replayed[0], top, "replay reproduces the results");
                (user, class, top, carousels.len(), saved.len())
            })
        })
        .collect();

    for worker in workers {
        let (user, class, top, n_carousels, saved_bytes) =
            worker.join().expect("no worker panicked");
        let best = top
            .first()
            .map(|i| format!("{} (score {:.3})", i.detail, i.score))
            .unwrap_or_else(|| "no instances".to_owned());
        println!(
            "user {user}: {class:<24} → {best}; {n_carousels} carousels, session {saved_bytes} B"
        );
    }

    // The cache is shared across all sessions: overlapping carousel work
    // hits scores some other thread already computed.
    let stats = core.cache_stats();
    println!(
        "\nshared score cache: {} hits / {} misses ({} entries, {} purged)",
        stats.hits, stats.misses, stats.entries, stats.purges
    );
    assert!(stats.hits > 0, "concurrent sessions share computed scores");
}
