//! An interactive terminal explorer — the CLI stand-in for the paper's demo
//! UI. Load a dataset (bundled generator or any CSV), browse ranked insight
//! carousels, run constrained insight queries, focus insights to steer the
//! recommendations, inspect overview charts, and save/restore sessions.
//!
//! ```sh
//! cargo run --release --example explorer                # OECD
//! cargo run --release --example explorer -- imdb        # bundled dataset
//! cargo run --release --example explorer -- data.csv    # your data
//! echo -e "top linear-relationship 3\nquit" | cargo run --example explorer
//! ```

use foresight::data::csv::read_csv;
use foresight::data::infer::InferOptions;
use foresight::prelude::*;
use std::io::{self, BufRead, Write};

const HELP: &str = "\
commands:
  classes                      list the registered insight classes
  top <class> [k]              top-k insights of a class (respects fix/range)
  fix <column name>            constrain queries to tuples containing a column
  range <lo> <hi>              constrain the metric score range
  semantic <tag>               require a semantic tag (currency, year, ...)
  clear                        drop all query constraints
  show <idx>                   render the chart of result #idx from the last query
  focus <idx>                  focus result #idx (steers recommendations)
  unfocus                      clear the focus set
  carousels [k]                one ranked strip per class (Figure 1)
  profile                      dataset profile: column summaries + headline insights
  overview <class>             the class overview chart (Figure 2 for linear)
  mode exact|approx            switch scoring mode (approx builds sketches once)
  stats                        score-cache counters (hits, misses, purges, shards)
  metrics [json|reset]         engine telemetry: per-stage latencies + query counters
  explain <class> [k]          run a query with a forced trace and show the full
                               span tree, per-candidate cache/path provenance,
                               skip reasons, and rank deltas (needs --features trace)
  trace last [json|chrome]     re-render the most recent trace (chrome = Perfetto)
  slowlog [ms|off]             show the slow-query log, or arm/disarm its threshold
  save <path> / load <path>    persist / restore the session
  help / quit";

struct Repl {
    engine: Foresight,
    fixed: Vec<usize>,
    range: Option<(f64, f64)>,
    semantic: Option<String>,
    last: Vec<InsightInstance>,
}

impl Repl {
    fn build_query(&self, class: &str, k: usize) -> InsightQuery {
        let mut q = InsightQuery::class(class).top_k(k);
        for &f in &self.fixed {
            q = q.fix_attr(f);
        }
        if let Some((lo, hi)) = self.range {
            q = q.score_range(lo, hi);
        }
        if let Some(tag) = &self.semantic {
            q = q.require_semantic(tag.clone());
        }
        q
    }

    fn command(&mut self, line: &str) -> bool {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return true;
        };
        let rest: Vec<&str> = parts.collect();
        match cmd {
            "quit" | "exit" => return false,
            "help" => println!("{HELP}"),
            "classes" => {
                for c in self.engine.registry().classes() {
                    println!("  {:<28} {:<32} {}", c.id(), c.metric(), c.description());
                }
            }
            "top" => {
                let Some(class) = rest.first() else {
                    println!("usage: top <class> [k]");
                    return true;
                };
                let k = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
                match self.engine.query(&self.build_query(class, k)) {
                    Ok(out) => {
                        self.last = out;
                        if self.last.is_empty() {
                            println!("(no insights match the current constraints)");
                        }
                        for (i, inst) in self.last.iter().enumerate() {
                            println!("  [{i}] {:.3}  {}", inst.score, inst.detail);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "fix" => {
                let name = rest.join(" ");
                match self.engine.table().index_of(&name) {
                    Ok(idx) => {
                        self.fixed.push(idx);
                        println!("fixed attribute: {name} (#{idx})");
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "range" => {
                match (
                    rest.first().and_then(|s| s.parse().ok()),
                    rest.get(1).and_then(|s| s.parse().ok()),
                ) {
                    (Some(lo), Some(hi)) => {
                        self.range = Some((lo, hi));
                        println!("score range: [{lo}, {hi}]");
                    }
                    _ => println!("usage: range <lo> <hi>"),
                }
            }
            "semantic" => match rest.first() {
                Some(tag) => {
                    self.semantic = Some(tag.to_string());
                    println!("requiring semantic tag: {tag}");
                }
                None => println!("usage: semantic <tag>"),
            },
            "clear" => {
                self.fixed.clear();
                self.range = None;
                self.semantic = None;
                println!("constraints cleared");
            }
            "show" => {
                let Some(idx) = rest.first().and_then(|s| s.parse::<usize>().ok()) else {
                    println!("usage: show <idx>");
                    return true;
                };
                match self.last.get(idx) {
                    Some(inst) => match self.engine.chart(inst) {
                        Ok(Some(spec)) => println!("{}", render_text(&spec, 72)),
                        Ok(None) => println!("(no chart for this insight)"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("no result #{idx}; run `top` first"),
                }
            }
            "focus" => {
                let Some(idx) = rest.first().and_then(|s| s.parse::<usize>().ok()) else {
                    println!("usage: focus <idx>");
                    return true;
                };
                match self.last.get(idx) {
                    Some(inst) => {
                        println!("focused: {}", inst.detail);
                        self.engine.focus(inst.clone());
                    }
                    None => println!("no result #{idx}; run `top` first"),
                }
            }
            "unfocus" => {
                let attrs: Vec<_> = self
                    .engine
                    .session()
                    .focus
                    .iter()
                    .map(|f| f.attrs)
                    .collect();
                for a in attrs {
                    self.engine.unfocus(&a);
                }
                println!("focus cleared");
            }
            "profile" => match self.engine.profile() {
                Ok(p) => println!("{}", p.to_text()),
                Err(e) => println!("error: {e}"),
            },
            "carousels" => {
                let k = rest.first().and_then(|s| s.parse().ok()).unwrap_or(3);
                match self.engine.carousels(k) {
                    Ok(cs) => {
                        for c in cs.iter().filter(|c| !c.instances.is_empty()) {
                            println!("── {} ──", c.class_name);
                            for inst in &c.instances {
                                println!("    {:.3}  {}", inst.score, inst.detail);
                            }
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "overview" => {
                let Some(class) = rest.first() else {
                    println!("usage: overview <class>");
                    return true;
                };
                match self.engine.overview(class) {
                    Ok(Some(spec)) => println!("{}", render_text(&spec, 100)),
                    Ok(None) => println!("(this class has no overview chart)"),
                    Err(e) => println!("error: {e}"),
                }
            }
            "mode" => match rest.first() {
                Some(&"approx") => {
                    if self.engine.catalog().is_none() {
                        println!("building sketch catalog…");
                        self.engine
                            .preprocess(&CatalogConfig::default())
                            .expect("raw table present");
                    } else {
                        self.engine
                            .set_mode(Mode::Approximate)
                            .expect("catalog built");
                    }
                    println!("mode: approximate (sketch-backed)");
                }
                Some(&"exact") => {
                    self.engine
                        .set_mode(Mode::Exact)
                        .expect("exact always works");
                    println!("mode: exact");
                }
                _ => println!("usage: mode exact|approx"),
            },
            "stats" => {
                let stats = self.engine.cache_stats();
                let total = stats.hits + stats.misses;
                let rate = if total > 0 {
                    100.0 * stats.hits as f64 / total as f64
                } else {
                    0.0
                };
                println!(
                    "score cache: {} hits / {} misses ({rate:.1}% hit rate), {} entries, {} purged by epoch bumps",
                    stats.hits, stats.misses, stats.entries, stats.purges
                );
                let occupied = stats.shard_entries.iter().filter(|&&n| n > 0).count();
                let busiest = stats.shard_entries.iter().max().copied().unwrap_or(0);
                println!(
                    "shards: {occupied}/{} occupied, busiest holds {busiest} entries",
                    stats.shard_entries.len()
                );
                println!("  per-shard: {:?}", stats.shard_entries);
            }
            "metrics" => match rest.first() {
                Some(&"json") => println!("{}", self.engine.metrics().to_json()),
                Some(&"reset") => {
                    self.engine.core().metrics().reset();
                    println!("telemetry counters reset");
                }
                None => print!("{}", self.engine.metrics().to_text()),
                Some(other) => println!("unknown metrics subcommand `{other}` (usage: metrics [json|reset])"),
            },
            "explain" => {
                let Some(class) = rest.first() else {
                    println!("usage: explain <class> [k]");
                    return true;
                };
                let k = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
                match self.engine.explain(&self.build_query(class, k)) {
                    Ok(explained) => {
                        self.last = explained.results;
                        match explained.trace {
                            Some(trace) => print!("{}", trace.to_text()),
                            None => println!(
                                "(no trace captured — rebuild with `--features trace`)"
                            ),
                        }
                        for (i, inst) in self.last.iter().enumerate() {
                            println!("  [{i}] {:.3}  {}", inst.score, inst.detail);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "trace" => match (rest.first(), rest.get(1)) {
                (Some(&"last"), fmt) => match self.engine.tracer().last() {
                    Some(trace) => match fmt {
                        None => print!("{}", trace.to_text()),
                        Some(&"json") => println!("{}", trace.to_json()),
                        Some(&"chrome") => println!("{}", trace.to_chrome_json()),
                        Some(other) => {
                            println!("unknown trace format `{other}` (usage: trace last [json|chrome])")
                        }
                    },
                    None => println!(
                        "(no traces captured yet — run `explain`, or rebuild with `--features trace`)"
                    ),
                },
                _ => println!("usage: trace last [json|chrome]"),
            },
            "slowlog" => match rest.first() {
                Some(&"off") => {
                    self.engine.tracer().set_slow_threshold_ns(0);
                    println!("slow-query log disarmed");
                }
                Some(ms) => match ms.parse::<f64>() {
                    Ok(ms) if ms >= 0.0 => {
                        // 0 ns disarms the tracer, so "slowlog 0" arms at
                        // 1 ns instead: log every query
                        self.engine
                            .tracer()
                            .set_slow_threshold_ns(((ms * 1e6) as u64).max(1));
                        println!("slow-query log armed at {ms} ms");
                    }
                    _ => println!("usage: slowlog [ms|off]"),
                },
                None => {
                    let entries = self.engine.tracer().slow_queries();
                    if entries.is_empty() {
                        println!(
                            "(slow-query log empty — arm it with `slowlog <ms>`, threshold now {} ms)",
                            self.engine.tracer().slow_threshold_ns() as f64 / 1e6
                        );
                    }
                    for entry in entries {
                        println!("  {}", entry.to_line());
                    }
                }
            },
            "save" => match rest.first() {
                Some(path) => match std::fs::File::create(path)
                    .map_err(foresight::engine::EngineError::from)
                    .and_then(|f| self.engine.session().save(f))
                {
                    Ok(()) => println!("session saved to {path}"),
                    Err(e) => println!("error: {e}"),
                },
                None => println!("usage: save <path>"),
            },
            "load" => match rest.first() {
                Some(path) => match std::fs::File::open(path)
                    .map_err(foresight::engine::EngineError::from)
                    .and_then(Session::load)
                {
                    Ok(s) => {
                        println!(
                            "restored session: {} focused insights, {} events",
                            s.focus.len(),
                            s.history.len()
                        );
                        self.engine.restore_session(s);
                    }
                    Err(e) => println!("error: {e}"),
                },
                None => println!("usage: load <path>"),
            },
            other => println!("unknown command `{other}` (try `help`)"),
        }
        true
    }
}

fn load_table(arg: Option<&str>) -> Table {
    match arg {
        None | Some("oecd") => datasets::oecd(),
        Some("imdb") => datasets::imdb(),
        Some("parkinson") => datasets::parkinson(),
        Some(path) => read_csv(path, &InferOptions::default())
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}")),
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let table = load_table(arg.as_deref());
    println!(
        "Foresight explorer — `{}`: {} rows × {} columns (type `help`)",
        table.name(),
        table.n_rows(),
        table.n_cols()
    );
    let mut repl = Repl {
        engine: Foresight::new(table),
        fixed: Vec::new(),
        range: None,
        semantic: None,
        last: Vec::new(),
    };
    let stdin = io::stdin();
    loop {
        print!("foresight> ");
        io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if !repl.command(line.trim()) {
                    break;
                }
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}
