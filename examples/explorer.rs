//! An interactive terminal explorer — the CLI stand-in for the paper's demo
//! UI. Load a dataset (bundled generator or any CSV), browse ranked insight
//! carousels, run constrained insight queries, focus insights to steer the
//! recommendations, inspect overview charts, and save/restore sessions.
//!
//! ```sh
//! cargo run --release --example explorer                # OECD
//! cargo run --release --example explorer -- imdb        # bundled dataset
//! cargo run --release --example explorer -- data.csv    # your data
//! echo -e "top linear-relationship 3\nquit" | cargo run --example explorer
//! ```
//!
//! With `connect <host:port>` the explorer speaks the `foresight-serve`
//! wire protocol instead of running the engine in-process — same
//! exploration loop, with the session living on the server:
//!
//! ```sh
//! cargo run --release --bin foresight-serve -- oecd &
//! cargo run --release --example explorer -- connect 127.0.0.1:4547
//! ```

use foresight::data::csv::read_csv;
use foresight::data::infer::InferOptions;
use foresight::prelude::*;
use foresight::serve::{Client, ClientError};
use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

const HELP: &str = "\
commands:
  classes                      list the registered insight classes
  top <class> [k]              top-k insights of a class (respects fix/range)
  fix <column name>            constrain queries to tuples containing a column
  range <lo> <hi>              constrain the metric score range
  semantic <tag>               require a semantic tag (currency, year, ...)
  clear                        drop all query constraints
  show <idx>                   render the chart of result #idx from the last query
  focus <idx>                  focus result #idx (steers recommendations)
  unfocus                      clear the focus set
  carousels [k]                one ranked strip per class (Figure 1)
  profile                      dataset profile: column summaries + headline insights
  overview <class>             the class overview chart (Figure 2 for linear)
  mode exact|approx            switch scoring mode (approx builds sketches once)
  candidates <strategy>        auto | exhaustive | lsh | lsh:<probes> — how
                               pairwise classes generate candidates (LSH needs
                               the sketch catalog; try `mode approx` first)
  stats                        score-cache counters (hits, misses, purges, shards)
  metrics [json|reset]         engine telemetry: per-stage latencies + query counters
  health                       health verdict from the continuous monitor
  alerts                       the watchdog's fired/resolved alert log
  watch [secs]                 live rates from the monitor ring (default 5 s)
  explain <class> [k]          run a query with a forced trace and show the full
                               span tree, per-candidate cache/path provenance,
                               skip reasons, and rank deltas (needs --features trace)
  trace last [json|chrome]     re-render the most recent trace (chrome = Perfetto)
  slowlog [ms|off]             show the slow-query log, or arm/disarm its threshold
  save <path> / load <path>    persist / restore the session
  help / quit";

struct Repl {
    engine: Foresight,
    fixed: Vec<usize>,
    range: Option<(f64, f64)>,
    semantic: Option<String>,
    last: Vec<InsightInstance>,
    /// Lazily started continuous monitor, keyed by the core it watches
    /// (preprocess swaps the core, which would leave a stale sampler).
    monitor: Option<(Arc<EngineCore>, Monitor)>,
}

/// Prints a health verdict with its typed reasons.
fn print_health(state: &HealthState) {
    println!("health: {}", state.name());
    for reason in state.reasons() {
        println!("  - {}", reason.describe());
    }
}

/// One monitor ring sample as a fixed-width watch line.
fn sample_line(s: &MonitorSample) -> String {
    format!(
        "[{:>4}] t+{:8.1}s  req/s {:8.1}  shed/s {:6.1}  q/s {:8.1}  hit {:5.1}%  behind {:>7}{}",
        s.seq,
        s.uptime_secs,
        s.request_rate,
        s.shed_rate,
        s.query_rate,
        s.cache_hit_rate * 100.0,
        s.rows_behind,
        if s.discontinuity {
            "  (discontinuity)"
        } else {
            ""
        },
    )
}

/// One watchdog transition as a log line.
fn alert_line(a: &AlertEvent) -> String {
    format!(
        "t+{:8.1}s  {}  {:<18}  value {:.2} vs bound {:.2} (sample {})",
        a.uptime_secs,
        if a.fired { "FIRED   " } else { "resolved" },
        a.kind.name(),
        a.value,
        a.bound,
        a.seq,
    )
}

fn print_alerts(events: &[AlertEvent]) {
    if events.is_empty() {
        println!("(no alerts recorded — the watchdog has nothing to report)");
    }
    for event in events {
        println!("  {}", alert_line(event));
    }
}

impl Repl {
    /// The monitor over the *current* core, (re)spawned on first use or
    /// after `mode approx` rebuilt the core underneath it.
    fn monitor(&mut self) -> &Monitor {
        let core = Arc::clone(self.engine.core());
        let stale = match &self.monitor {
            Some((held, _)) => !Arc::ptr_eq(held, &core),
            None => true,
        };
        if stale {
            // 250 ms cadence: interactive `watch` should not wait a full
            // second per line
            let config = MonitorConfig {
                cadence_ms: 250,
                ..MonitorConfig::default()
            };
            let monitor = Monitor::spawn(MonitorTarget::Static(Arc::clone(&core)), config);
            self.monitor = Some((core, monitor));
        }
        &self.monitor.as_ref().expect("monitor just ensured").1
    }

    fn build_query(&self, class: &str, k: usize) -> InsightQuery {
        let mut q = InsightQuery::class(class).top_k(k);
        for &f in &self.fixed {
            q = q.fix_attr(f);
        }
        if let Some((lo, hi)) = self.range {
            q = q.score_range(lo, hi);
        }
        if let Some(tag) = &self.semantic {
            q = q.require_semantic(tag.clone());
        }
        q
    }

    fn command(&mut self, line: &str) -> bool {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return true;
        };
        let rest: Vec<&str> = parts.collect();
        match cmd {
            "quit" | "exit" => return false,
            "help" => println!("{HELP}"),
            "classes" => {
                for c in self.engine.registry().classes() {
                    println!("  {:<28} {:<32} {}", c.id(), c.metric(), c.description());
                }
            }
            "top" => {
                let Some(class) = rest.first() else {
                    println!("usage: top <class> [k]");
                    return true;
                };
                let k = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
                match self.engine.query(&self.build_query(class, k)) {
                    Ok(out) => {
                        self.last = out;
                        if self.last.is_empty() {
                            println!("(no insights match the current constraints)");
                        }
                        for (i, inst) in self.last.iter().enumerate() {
                            println!("  [{i}] {:.3}  {}", inst.score, inst.detail);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "fix" => {
                let name = rest.join(" ");
                match self.engine.table().index_of(&name) {
                    Ok(idx) => {
                        self.fixed.push(idx);
                        println!("fixed attribute: {name} (#{idx})");
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "range" => {
                match (
                    rest.first().and_then(|s| s.parse().ok()),
                    rest.get(1).and_then(|s| s.parse().ok()),
                ) {
                    (Some(lo), Some(hi)) => {
                        self.range = Some((lo, hi));
                        println!("score range: [{lo}, {hi}]");
                    }
                    _ => println!("usage: range <lo> <hi>"),
                }
            }
            "semantic" => match rest.first() {
                Some(tag) => {
                    self.semantic = Some(tag.to_string());
                    println!("requiring semantic tag: {tag}");
                }
                None => println!("usage: semantic <tag>"),
            },
            "clear" => {
                self.fixed.clear();
                self.range = None;
                self.semantic = None;
                println!("constraints cleared");
            }
            "show" => {
                let Some(idx) = rest.first().and_then(|s| s.parse::<usize>().ok()) else {
                    println!("usage: show <idx>");
                    return true;
                };
                match self.last.get(idx) {
                    Some(inst) => match self.engine.chart(inst) {
                        Ok(Some(spec)) => println!("{}", render_text(&spec, 72)),
                        Ok(None) => println!("(no chart for this insight)"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("no result #{idx}; run `top` first"),
                }
            }
            "focus" => {
                let Some(idx) = rest.first().and_then(|s| s.parse::<usize>().ok()) else {
                    println!("usage: focus <idx>");
                    return true;
                };
                match self.last.get(idx) {
                    Some(inst) => {
                        println!("focused: {}", inst.detail);
                        self.engine.focus(inst.clone());
                    }
                    None => println!("no result #{idx}; run `top` first"),
                }
            }
            "unfocus" => {
                let attrs: Vec<_> = self
                    .engine
                    .session()
                    .focus
                    .iter()
                    .map(|f| f.attrs)
                    .collect();
                for a in attrs {
                    self.engine.unfocus(&a);
                }
                println!("focus cleared");
            }
            "profile" => match self.engine.profile() {
                Ok(p) => println!("{}", p.to_text()),
                Err(e) => println!("error: {e}"),
            },
            "carousels" => {
                let k = rest.first().and_then(|s| s.parse().ok()).unwrap_or(3);
                match self.engine.carousels(k) {
                    Ok(cs) => {
                        for c in cs.iter().filter(|c| !c.instances.is_empty()) {
                            println!("── {} ──", c.class_name);
                            for inst in &c.instances {
                                println!("    {:.3}  {}", inst.score, inst.detail);
                            }
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "overview" => {
                let Some(class) = rest.first() else {
                    println!("usage: overview <class>");
                    return true;
                };
                match self.engine.overview(class) {
                    Ok(Some(spec)) => println!("{}", render_text(&spec, 100)),
                    Ok(None) => println!("(this class has no overview chart)"),
                    Err(e) => println!("error: {e}"),
                }
            }
            "mode" => match rest.first() {
                Some(&"approx") => {
                    if self.engine.catalog().is_none() {
                        println!("building sketch catalog…");
                        self.engine
                            .preprocess(&CatalogConfig::default())
                            .expect("raw table present");
                    } else {
                        self.engine
                            .set_mode(Mode::Approximate)
                            .expect("catalog built");
                    }
                    println!("mode: approximate (sketch-backed)");
                }
                Some(&"exact") => {
                    self.engine
                        .set_mode(Mode::Exact)
                        .expect("exact always works");
                    println!("mode: exact");
                }
                _ => println!("usage: mode exact|approx"),
            },
            "candidates" => match rest.first().copied().and_then(CandidateStrategy::parse) {
                Some(strategy) => {
                    self.engine.set_candidate_strategy(strategy);
                    let note = match (strategy, self.engine.core().lsh_index()) {
                        (CandidateStrategy::Exhaustive, _) | (_, Some(_)) => String::new(),
                        _ => " (no LSH index yet — build sketches with `mode approx`)".to_owned(),
                    };
                    println!("candidates: {}{note}", strategy.name());
                }
                None => println!("usage: candidates auto|exhaustive|lsh|lsh:<probes>"),
            },
            "stats" => {
                let stats = self.engine.cache_stats();
                let total = stats.hits + stats.misses;
                let rate = if total > 0 {
                    100.0 * stats.hits as f64 / total as f64
                } else {
                    0.0
                };
                println!(
                    "score cache: {} hits / {} misses ({rate:.1}% hit rate), {} entries, {} purged by epoch bumps",
                    stats.hits, stats.misses, stats.entries, stats.purges
                );
                let occupied = stats.shard_entries.iter().filter(|&&n| n > 0).count();
                let busiest = stats.shard_entries.iter().max().copied().unwrap_or(0);
                println!(
                    "shards: {occupied}/{} occupied, busiest holds {busiest} entries",
                    stats.shard_entries.len()
                );
                println!("  per-shard: {:?}", stats.shard_entries);
            }
            "metrics" => match rest.first() {
                Some(&"json") => println!("{}", self.engine.metrics().to_json()),
                Some(&"reset") => {
                    self.engine.core().metrics().reset();
                    if let Some((_, monitor)) = &self.monitor {
                        monitor.mark_discontinuity();
                    }
                    println!("telemetry counters reset");
                }
                None => print!("{}", self.engine.metrics().to_text()),
                Some(other) => println!("unknown metrics subcommand `{other}` (usage: metrics [json|reset])"),
            },
            "health" => {
                let state = self.monitor().health();
                print_health(&state);
            }
            "alerts" => {
                let events = self.monitor().alerts();
                print_alerts(&events);
            }
            "watch" => {
                let secs: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(5);
                let monitor = self.monitor();
                println!("watching for {secs} s ({} ms cadence)…", monitor.config().cadence_ms);
                let deadline = Instant::now() + Duration::from_secs(secs);
                let mut last_seq = monitor.latest_sample().map_or(0, |s| s.seq);
                while Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(100));
                    if let Some(sample) = monitor.latest_sample() {
                        if sample.seq != last_seq {
                            last_seq = sample.seq;
                            println!("{}", sample_line(&sample));
                        }
                    }
                }
            }
            "explain" => {
                let Some(class) = rest.first() else {
                    println!("usage: explain <class> [k]");
                    return true;
                };
                let k = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
                match self.engine.explain(&self.build_query(class, k)) {
                    Ok(explained) => {
                        self.last = explained.results;
                        match explained.trace {
                            Some(trace) => print!("{}", trace.to_text()),
                            None => println!(
                                "(no trace captured — rebuild with `--features trace`)"
                            ),
                        }
                        for (i, inst) in self.last.iter().enumerate() {
                            println!("  [{i}] {:.3}  {}", inst.score, inst.detail);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "trace" => match (rest.first(), rest.get(1)) {
                (Some(&"last"), fmt) => match self.engine.tracer().last() {
                    Some(trace) => match fmt {
                        None => print!("{}", trace.to_text()),
                        Some(&"json") => println!("{}", trace.to_json()),
                        Some(&"chrome") => println!("{}", trace.to_chrome_json()),
                        Some(other) => {
                            println!("unknown trace format `{other}` (usage: trace last [json|chrome])")
                        }
                    },
                    None => println!(
                        "(no traces captured yet — run `explain`, or rebuild with `--features trace`)"
                    ),
                },
                _ => println!("usage: trace last [json|chrome]"),
            },
            "slowlog" => match rest.first() {
                Some(&"off") => {
                    self.engine.tracer().set_slow_threshold_ns(0);
                    println!("slow-query log disarmed");
                }
                Some(ms) => match ms.parse::<f64>() {
                    Ok(ms) if ms >= 0.0 => {
                        // 0 ns disarms the tracer, so "slowlog 0" arms at
                        // 1 ns instead: log every query
                        self.engine
                            .tracer()
                            .set_slow_threshold_ns(((ms * 1e6) as u64).max(1));
                        println!("slow-query log armed at {ms} ms");
                    }
                    _ => println!("usage: slowlog [ms|off]"),
                },
                None => {
                    let entries = self.engine.tracer().slow_queries();
                    if entries.is_empty() {
                        println!(
                            "(slow-query log empty — arm it with `slowlog <ms>`, threshold now {} ms)",
                            self.engine.tracer().slow_threshold_ns() as f64 / 1e6
                        );
                    }
                    for entry in entries {
                        println!("  {}", entry.to_line());
                    }
                }
            },
            "save" => match rest.first() {
                Some(path) => match std::fs::File::create(path)
                    .map_err(foresight::engine::EngineError::from)
                    .and_then(|f| self.engine.session().save(f))
                {
                    Ok(()) => println!("session saved to {path}"),
                    Err(e) => println!("error: {e}"),
                },
                None => println!("usage: save <path>"),
            },
            "load" => match rest.first() {
                Some(path) => match std::fs::File::open(path)
                    .map_err(foresight::engine::EngineError::from)
                    .and_then(Session::load)
                {
                    Ok(s) => {
                        println!(
                            "restored session: {} focused insights, {} events",
                            s.focus.len(),
                            s.history.len()
                        );
                        self.engine.restore_session(s);
                    }
                    Err(e) => println!("error: {e}"),
                },
                None => println!("usage: load <path>"),
            },
            other => println!("unknown command `{other}` (try `help`)"),
        }
        true
    }
}

const REMOTE_HELP: &str = "\
remote commands (session lives on the server):
  columns                      list the served dataset's columns
  top <class> [k]              top-k insights of a class (respects fix/range)
  fix <column name>            constrain queries to tuples containing a column
  range <lo> <hi>              constrain the metric score range
  semantic <tag>               require a semantic tag (currency, year, ...)
  clear                        drop all query constraints
  focus <idx>                  focus result #idx from the last query
  unfocus                      clear the focus set
  carousels [k]                one ranked strip per class (Figure 1)
  profile                      dataset profile (computed server-side)
  mode exact|approx            switch the session's scoring mode
  candidates <strategy>        auto | exhaustive | lsh | lsh:<probes> — the
                               session's candidate-generation knob
  metrics [json|reset]         server metrics: admission control + engine telemetry
  health / alerts              server health verdict / watchdog alert log
  watch [secs]                 stream the server monitor's per-sample rates
  explain <class> [k]          traced query (server needs --features trace)
  slowlog                      the server's slow-query log
  staleness / refresh          stream lag of this session's snapshot / adopt head
  save <path> / load <path>    persist / restore the server-side session locally
  help / quit";

/// The same exploration loop, but every command is a wire request to a
/// `foresight-serve` front end; this process holds no engine at all.
struct RemoteRepl {
    client: Client,
    session: u64,
    columns: Vec<String>,
    fixed: Vec<usize>,
    range: Option<(f64, f64)>,
    semantic: Option<String>,
    last: Vec<InsightInstance>,
}

/// Typed server errors print as one line; transport errors end the REPL.
fn report(err: ClientError) -> bool {
    match err {
        ClientError::Server(wire) => {
            println!("server error: {wire}");
            true
        }
        other => {
            eprintln!("connection lost: {other}");
            false
        }
    }
}

impl RemoteRepl {
    fn build_query(&self, class: &str, k: usize) -> InsightQuery {
        let mut q = InsightQuery::class(class).top_k(k);
        for &f in &self.fixed {
            q = q.fix_attr(f);
        }
        if let Some((lo, hi)) = self.range {
            q = q.score_range(lo, hi);
        }
        if let Some(tag) = &self.semantic {
            q = q.require_semantic(tag.clone());
        }
        q
    }

    fn show_results(&self) {
        if self.last.is_empty() {
            println!("(no insights match the current constraints)");
        }
        for (i, inst) in self.last.iter().enumerate() {
            println!("  [{i}] {:.3}  {}", inst.score, inst.detail);
        }
    }

    fn command(&mut self, line: &str) -> bool {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return true;
        };
        let rest: Vec<&str> = parts.collect();
        match cmd {
            "quit" | "exit" => {
                let _ = self.client.close(self.session);
                return false;
            }
            "help" => println!("{REMOTE_HELP}"),
            "columns" => {
                for (i, name) in self.columns.iter().enumerate() {
                    println!("  #{i:<3} {name}");
                }
            }
            "top" => {
                let Some(class) = rest.first() else {
                    println!("usage: top <class> [k]");
                    return true;
                };
                let k = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
                match self.client.query(self.session, self.build_query(class, k)) {
                    Ok(out) => {
                        self.last = out;
                        self.show_results();
                    }
                    Err(e) => return report(e),
                }
            }
            "fix" => {
                let name = rest.join(" ");
                match self.columns.iter().position(|c| *c == name) {
                    Some(idx) => {
                        self.fixed.push(idx);
                        println!("fixed attribute: {name} (#{idx})");
                    }
                    None => println!("no column named `{name}` (see `columns`)"),
                }
            }
            "range" => {
                match (
                    rest.first().and_then(|s| s.parse().ok()),
                    rest.get(1).and_then(|s| s.parse().ok()),
                ) {
                    (Some(lo), Some(hi)) => {
                        self.range = Some((lo, hi));
                        println!("score range: [{lo}, {hi}]");
                    }
                    _ => println!("usage: range <lo> <hi>"),
                }
            }
            "semantic" => match rest.first() {
                Some(tag) => {
                    self.semantic = Some(tag.to_string());
                    println!("requiring semantic tag: {tag}");
                }
                None => println!("usage: semantic <tag>"),
            },
            "clear" => {
                self.fixed.clear();
                self.range = None;
                self.semantic = None;
                println!("constraints cleared");
            }
            "focus" => {
                let Some(idx) = rest.first().and_then(|s| s.parse::<usize>().ok()) else {
                    println!("usage: focus <idx>");
                    return true;
                };
                match self.last.get(idx).cloned() {
                    Some(inst) => match self.client.focus(self.session, inst.clone()) {
                        Ok(()) => println!("focused: {}", inst.detail),
                        Err(e) => return report(e),
                    },
                    None => println!("no result #{idx}; run `top` first"),
                }
            }
            "unfocus" => match self.client.clear_focus(self.session) {
                Ok(()) => println!("focus cleared"),
                Err(e) => return report(e),
            },
            "carousels" => {
                let k = rest.first().and_then(|s| s.parse().ok()).unwrap_or(3);
                match self.client.carousels(self.session, k) {
                    Ok(cs) => {
                        for c in cs.iter().filter(|c| !c.instances.is_empty()) {
                            println!("── {} ──", c.class_name);
                            for inst in &c.instances {
                                println!("    {:.3}  {}", inst.score, inst.detail);
                            }
                        }
                    }
                    Err(e) => return report(e),
                }
            }
            "profile" => match self.client.profile(self.session) {
                Ok(p) => println!("{}", p.to_text()),
                Err(e) => return report(e),
            },
            "mode" => match rest.first() {
                Some(&"approx") => match self.client.set_mode(self.session, "approximate") {
                    Ok(()) => println!("mode: approximate (sketch-backed)"),
                    Err(e) => return report(e),
                },
                Some(&"exact") => match self.client.set_mode(self.session, "exact") {
                    Ok(()) => println!("mode: exact"),
                    Err(e) => return report(e),
                },
                _ => println!("usage: mode exact|approx"),
            },
            "candidates" => match rest.first() {
                Some(&strategy) => match self.client.set_candidates(self.session, strategy) {
                    Ok(applied) => println!("candidates: {applied}"),
                    Err(e) => return report(e),
                },
                None => println!("usage: candidates auto|exhaustive|lsh|lsh:<probes>"),
            },
            "metrics" => match rest.first() {
                Some(&"json") => match self.client.metrics() {
                    Ok(snapshot) => println!("{}", snapshot.to_json()),
                    Err(e) => return report(e),
                },
                Some(&"reset") => match self.client.reset_metrics() {
                    Ok(()) => {
                        println!("server telemetry counters reset (monitor marked a discontinuity)")
                    }
                    Err(e) => return report(e),
                },
                None => match self.client.metrics() {
                    Ok(snapshot) => print!("{}", snapshot.to_text()),
                    Err(e) => return report(e),
                },
                Some(other) => {
                    println!("unknown metrics subcommand `{other}` (usage: metrics [json|reset])")
                }
            },
            "health" => match self.client.health() {
                Ok(state) => print_health(&state),
                Err(e) => return report(e),
            },
            "alerts" => match self.client.alerts() {
                Ok(events) => print_alerts(&events),
                Err(e) => return report(e),
            },
            "watch" => {
                let secs: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(5);
                println!("watching the server monitor for {secs} s…");
                let deadline = Instant::now() + Duration::from_secs(secs);
                let mut last_seq = 0u64;
                while Instant::now() < deadline {
                    match self.client.metrics_history(1) {
                        Ok(samples) => {
                            if let Some(sample) = samples.last() {
                                if sample.seq != last_seq {
                                    last_seq = sample.seq;
                                    println!("{}", sample_line(sample));
                                }
                            }
                        }
                        Err(e) => return report(e),
                    }
                    std::thread::sleep(Duration::from_millis(250));
                }
            }
            "explain" => {
                let Some(class) = rest.first() else {
                    println!("usage: explain <class> [k]");
                    return true;
                };
                let k = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
                match self
                    .client
                    .explain(self.session, self.build_query(class, k))
                {
                    Ok((results, trace)) => {
                        self.last = results;
                        match trace {
                            Some(trace) => print!("{}", trace.to_text()),
                            None => println!(
                                "(no trace captured — server built without `--features trace`)"
                            ),
                        }
                        self.show_results();
                    }
                    Err(e) => return report(e),
                }
            }
            "slowlog" => match self.client.slowlog() {
                Ok(lines) if lines.is_empty() => {
                    println!("(server slow-query log is empty)")
                }
                Ok(lines) => {
                    for entry in lines {
                        println!("  {entry}");
                    }
                }
                Err(e) => return report(e),
            },
            "staleness" => match self.client.staleness(self.session) {
                Ok(s) => println!(
                    "snapshot: epoch {}, {} rows; ingest head {} rows ({} behind), age {:.1}s",
                    s.epoch,
                    s.snapshot_rows,
                    s.head_rows,
                    s.rows_behind,
                    s.age_ns as f64 / 1e9
                ),
                Err(e) => return report(e),
            },
            "refresh" => match self.client.refresh(self.session) {
                Ok(true) => println!("adopted the newest published snapshot"),
                Ok(false) => println!("already at the newest snapshot"),
                Err(e) => return report(e),
            },
            "save" => match rest.first() {
                Some(path) => match self.client.save(self.session) {
                    Ok(state) => match std::fs::write(path, state) {
                        Ok(()) => println!("server session saved to {path}"),
                        Err(e) => println!("error: {e}"),
                    },
                    Err(e) => return report(e),
                },
                None => println!("usage: save <path>"),
            },
            "load" => match rest.first() {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(state) => match self.client.restore(self.session, state) {
                        Ok(()) => println!("session restored into the server"),
                        Err(e) => return report(e),
                    },
                    Err(e) => println!("error: {e}"),
                },
                None => println!("usage: load <path>"),
            },
            other => println!("unknown command `{other}` (try `help`)"),
        }
        true
    }
}

/// Connects to a `foresight-serve` front end and runs the remote REPL.
fn run_remote(addr: &str) {
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let hello = client.hello().expect("hello");
    println!(
        "Foresight explorer — connected to {} at {addr} (protocol v{})",
        hello.server, hello.protocol
    );
    println!(
        "serving `{}`: {} rows × {} columns, {} mode{} (type `help`)",
        hello.dataset,
        hello.rows,
        hello.cols,
        hello.mode,
        if hello.streaming { ", streaming" } else { "" }
    );
    println!(
        "server build v{}, {} kernel, features: {}",
        hello.version,
        hello.kernel,
        if hello.features.is_empty() {
            "none".to_owned()
        } else {
            hello.features.join("+")
        }
    );
    let session = client.open().expect("open session");
    let mut repl = RemoteRepl {
        client,
        session,
        columns: hello.columns,
        fixed: Vec::new(),
        range: None,
        semantic: None,
        last: Vec::new(),
    };
    let stdin = io::stdin();
    loop {
        print!("foresight:{}> ", hello.dataset);
        io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if !repl.command(line.trim()) {
                    break;
                }
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}

fn load_table(arg: Option<&str>) -> Table {
    match arg {
        None | Some("oecd") => datasets::oecd(),
        Some("imdb") => datasets::imdb(),
        Some("parkinson") => datasets::parkinson(),
        Some(path) => read_csv(path, &InferOptions::default())
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}")),
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("connect") {
        let Some(addr) = std::env::args().nth(2) else {
            eprintln!("usage: explorer connect <host:port>");
            std::process::exit(2);
        };
        run_remote(&addr);
        return;
    }
    let table = load_table(arg.as_deref());
    println!(
        "Foresight explorer — `{}`: {} rows × {} columns (type `help`)",
        table.name(),
        table.n_rows(),
        table.n_cols()
    );
    let mut repl = Repl {
        engine: Foresight::new(table),
        fixed: Vec::new(),
        range: None,
        semantic: None,
        last: Vec::new(),
        monitor: None,
    };
    let stdin = io::stdin();
    loop {
        print!("foresight> ");
        io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if !repl.command(line.trim()) {
                    break;
                }
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}
