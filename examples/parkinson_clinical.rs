//! Clinical exploration of the Parkinson (PPMI-shaped) dataset (paper
//! §4.2): segmentation by cohort, outliers in lab measurements, bimodal
//! non-motor scores, and the custom-detector plug-in point.
//!
//! ```sh
//! cargo run --release --example parkinson_clinical
//! ```

use foresight::insight::classes::Outliers;
use foresight::prelude::*;
use foresight::stats::outlier::MadDetector;
use std::sync::Arc;

fn main() {
    let table = datasets::parkinson();
    println!(
        "Parkinson: {} patients × {} descriptors",
        table.n_rows(),
        table.n_cols()
    );
    let mut engine = Foresight::new(table);

    // Outliers with the default (IQR) detector…
    let outliers = engine
        .query(&InsightQuery::class("outliers").top_k(3))
        .unwrap();
    println!("\nstrongest outlier columns (IQR fences):");
    for o in &outliers {
        println!("  {:.1}σ  {}", o.score, o.detail);
    }

    // …and with a plugged-in robust MAD detector (the paper's
    // "user-configurable outlier-detection algorithm").
    engine.register_class(Arc::new(Outliers::with_detector(Arc::new(
        MadDetector::default(),
    ))));
    let robust = engine
        .query(&InsightQuery::class("outliers").top_k(3))
        .unwrap();
    println!("\nsame class, MAD detector:");
    for o in &robust {
        println!("  {:.1}σ  {}", o.score, o.detail);
    }

    // Bimodal clinical scores (the sleep scale is planted bimodal).
    let multimodal = engine
        .query(&InsightQuery::class("multimodality").top_k(3))
        .unwrap();
    println!("\nmost multimodal descriptors:");
    for m in &multimodal {
        println!("  dip = {:.3}  {}", m.score, m.detail);
    }

    // Segmentation: which categorical attribute separates which numeric
    // pair most cleanly?
    let segments = engine
        .query(&InsightQuery::class("segmentation").top_k(3))
        .unwrap();
    println!("\nstrongest segmentations:");
    for s in &segments {
        println!("  silhouette = {:.2}  {}", s.score, s.detail);
    }

    // Dependence between the clinical stage and motor scores.
    let stage = engine.table().index_of("Hoehn-Yahr Stage").unwrap();
    let dependence = engine
        .query(
            &InsightQuery::class("statistical-dependence")
                .top_k(3)
                .fix_attr(stage),
        )
        .unwrap();
    println!("\nwhat the Hoehn-Yahr stage depends on:");
    for d in &dependence {
        println!("  {:.2}  {}", d.score, d.detail);
    }
}
