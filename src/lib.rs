//! # Foresight
//!
//! A Rust implementation of **"Foresight: Recommending Visual Insights"**
//! (Demiralp, Haas, Parthasarathy, Pedapati — VLDB 2017): a system that
//! recommends *visual insights* — strong manifestations of distributional
//! properties — over large, high-dimensional tables, and lets the user
//! explore the space of insights directly through insight queries,
//! focus-driven neighborhoods, and class-level overview visualizations,
//! with sketch-based approximation for interactive speed.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`data`] | column-oriented tables, CSV, type inference, demo datasets |
//! | [`stats`] | exact ranking metrics (moments, correlation, dip, …) |
//! | [`sketch`] | hyperplane/KLL/GK/SpaceSaving/entropy/… sketches + catalog |
//! | [`viz`] | chart specs + SVG / terminal / Vega-Lite renderers |
//! | [`insight`] | the 12 insight classes and the plug-in registry |
//! | [`engine`] | insight queries, neighborhoods, sessions, carousels |
//! | [`serve`] | network front end: wire protocol, admission control, sessions |
//!
//! ## Quick start
//! ```
//! use foresight::prelude::*;
//!
//! // load a demo dataset and ask for the strongest correlations
//! let mut fs = Foresight::new(datasets::oecd());
//! let top = fs
//!     .query(&InsightQuery::class("linear-relationship").top_k(3))
//!     .unwrap();
//! assert_eq!(top.len(), 3);
//!
//! // switch to interactive (sketch-backed) mode
//! fs.preprocess(&CatalogConfig::default()).unwrap();
//! let carousels = fs.carousels(3).unwrap();
//! assert_eq!(carousels.len(), 12);
//! ```
//!
//! ## Partitioned ingest
//! ```
//! use foresight::prelude::*;
//!
//! // rows arrive as disjoint shards; they are sketched per-shard and the
//! // catalogs merged — the shards are never concatenated
//! let whole = datasets::oecd();
//! let shards: Vec<Table> = vec![
//!     whole.filter_rows(|r| r < 20),
//!     whole.filter_rows(|r| r >= 20),
//! ];
//! let mut fs = Foresight::from_source(TableSource::sharded(shards).unwrap());
//! fs.preprocess(&CatalogConfig::default()).unwrap();
//! let top = fs
//!     .query(&InsightQuery::class("skew").top_k(1))
//!     .unwrap();
//! assert_eq!(top.len(), 1);
//! ```
//!
//! ## Concurrent serving
//! ```
//! use foresight::prelude::*;
//! use std::sync::Arc;
//!
//! // one immutable core snapshot, any number of per-user sessions
//! let core = EngineCore::builder(TableSource::materialized(datasets::oecd())).freeze();
//! let handles: Vec<_> = (0..4)
//!     .map(|_| {
//!         let mut h = core.handle();
//!         std::thread::spawn(move || {
//!             h.query(&InsightQuery::class("skew").top_k(2)).unwrap()
//!         })
//!     })
//!     .collect();
//! let results: Vec<_> = handles.into_iter().map(|t| t.join().unwrap()).collect();
//! assert!(results.windows(2).all(|w| w[0] == w[1]));
//! # let _ = Arc::strong_count(&core);
//! ```

pub use foresight_data as data;
pub use foresight_engine as engine;
pub use foresight_insight as insight;
pub use foresight_serve as serve;
pub use foresight_sketch as sketch;
pub use foresight_stats as stats;
pub use foresight_viz as viz;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use foresight_data::datasets;
    pub use foresight_data::{Table, TableBuilder, TableSource};
    pub use foresight_engine::{
        profile, AdoptPolicy, AlertEvent, CandidateStrategy, Carousel, ColumnProfile, CoreBuilder,
        DatasetProfile, EngineCore, EngineError, Executor, Explained, Foresight, HealthPolicy,
        HealthState, InsightQuery, Metrics, MetricsSnapshot, Mode, Monitor, MonitorConfig,
        MonitorSample, MonitorTarget, NeighborhoodWeights, PublishedCore, QueryTrace,
        RepublishPolicy, Session, SessionHandle, SlowQuery, Staleness, StreamConfig, StreamWriter,
        Tracer,
    };
    pub use foresight_insight::{AttrTuple, InsightClass, InsightInstance, InsightRegistry};
    pub use foresight_sketch::{CatalogConfig, SketchCatalog};
    pub use foresight_viz::{
        carousel, render_svg, render_text, to_vega_lite, ChartSpec, Report, SvgOptions,
    };
}
